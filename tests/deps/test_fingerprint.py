"""Subsystem partition + per-subsystem content hashing (repro.deps)."""

import subprocess

import pytest

from repro.deps import (
    SUBSYSTEMS,
    DepsError,
    changed_subsystems_since,
    code_version,
    deps_token,
    package_root,
    subsystem_for_module,
    subsystem_for_path,
    subsystem_hashes,
    subsystem_hashes_at_rev,
)


def _in_git_checkout() -> bool:
    try:
        subprocess.run(
            ["git", "rev-parse", "--verify", "HEAD"],
            cwd=package_root(),
            capture_output=True,
            check=True,
        )
        return True
    except (OSError, subprocess.CalledProcessError):
        return False


class TestPartition:
    @pytest.mark.parametrize(
        "relpath, subsystem",
        [
            ("arch/system.py", "arch"),
            ("ir/module.py", "compiler"),
            ("compiler/pipeline.py", "compiler"),
            ("sweep/engine.py", "eval"),
            ("eval/figures.py", "eval"),
            ("isa/machine.py", "core"),
            ("deps/probe.py", "core"),
            ("api.py", "core"),
            ("jsonout.py", "eval"),
            ("check/checker.py", "check"),
            ("fault/campaign.py", "fault"),
            ("trace/codec.py", "trace"),
            ("workloads/registry.py", "workloads"),
            ("service/daemon.py", "service"),
        ],
    )
    def test_path_mapping(self, relpath, subsystem):
        assert subsystem_for_path(relpath) == subsystem

    def test_unknown_top_level_falls_back_to_core(self):
        assert subsystem_for_path("new_layer/thing.py") == "core"

    @pytest.mark.parametrize(
        "module, subsystem",
        [
            ("repro", "core"),
            ("repro.api", "core"),
            ("repro.jsonout", "eval"),
            ("repro.ir.module", "compiler"),
            ("repro.arch.persistence", "arch"),
            ("repro.sweep.cache", "eval"),
            ("os.path", None),
            ("reprotastic", None),
        ],
    )
    def test_module_mapping(self, module, subsystem):
        assert subsystem_for_module(module) == subsystem

    def test_every_source_file_lands_in_a_declared_subsystem(self):
        root = package_root()
        for path in root.rglob("*.py"):
            rel = path.relative_to(root).as_posix()
            assert subsystem_for_path(rel) in SUBSYSTEMS, rel


class TestHashes:
    def test_covers_every_subsystem(self):
        hashes = subsystem_hashes()
        assert set(hashes) == set(SUBSYSTEMS)
        assert all(len(h) == 16 for h in hashes.values())

    def test_deterministic(self):
        assert subsystem_hashes() == subsystem_hashes()

    def test_single_subsystem_edit_moves_only_its_hash(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "arch").mkdir(parents=True)
        (pkg / "eval").mkdir()
        (pkg / "arch" / "a.py").write_text("x = 1\n")
        (pkg / "eval" / "b.py").write_text("y = 2\n")
        before = subsystem_hashes(package=pkg)
        (pkg / "arch" / "a.py").write_text("x = 3\n")
        after = subsystem_hashes(package=pkg)
        assert before["arch"] != after["arch"]
        assert before["eval"] == after["eval"]
        assert before["core"] == after["core"]  # both empty

    def test_env_version_derives_all_hashes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "vA")
        a = subsystem_hashes()
        monkeypatch.setenv("REPRO_CODE_VERSION", "vB")
        b = subsystem_hashes()
        assert all(a[name] != b[name] for name in SUBSYSTEMS)
        assert code_version() == "vB"

    def test_salt_perturbs_named_subsystems_only(self, monkeypatch):
        base = subsystem_hashes()
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "arch=zap")
        salted = subsystem_hashes()
        assert salted["arch"] != base["arch"]
        for name in SUBSYSTEMS:
            if name != "arch":
                assert salted[name] == base[name]

    def test_deps_token_filters_unknown_names(self):
        token = deps_token(["arch", "core", "no-such-layer"])
        assert set(token) == {"arch", "core"}
        hashes = subsystem_hashes()
        assert token["arch"] == hashes["arch"]


@pytest.mark.skipif(
    not _in_git_checkout(), reason="needs the repository's git history"
)
class TestGitRev:
    def test_head_hashes_match_clean_working_tree_scan(self):
        # Any difference between HEAD and the working tree is exactly the
        # uncommitted edits — changed_subsystems_since reports those.
        at_head = subsystem_hashes_at_rev("HEAD")
        assert set(at_head) == set(SUBSYSTEMS)
        changed = changed_subsystems_since("HEAD")
        current = subsystem_hashes()
        for name in SUBSYSTEMS:
            if name in changed:
                assert at_head[name] != current[name]
            else:
                assert at_head[name] == current[name]

    def test_bad_rev_raises_deps_error(self):
        with pytest.raises(DepsError):
            subsystem_hashes_at_rev("no-such-rev-xyzzy")
