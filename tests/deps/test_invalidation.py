"""Dependency-recorded cache invalidation: the tentpole acceptance story.

A warm cache plus an edit in one subsystem must invalidate exactly the
entries whose runs exercised that subsystem.  Edits are simulated with
``REPRO_SUBSYSTEM_SALT`` (perturbs one subsystem's hash without touching
files), so these tests exercise the same validation path a real source
edit would.
"""

import pytest

from repro.api import ResultCache, RunSpec, code_version
from repro.compiler import OptConfig
from repro.deps import deps_token
from repro.sweep.engine import run_specs

TINY = 0.05


def spec(**kw) -> RunSpec:
    base = dict(workload="ssca2", scale=TINY, config=OptConfig.licm(64))
    base.update(kw)
    return RunSpec(**base)


class TestCacheValidation:
    def test_entry_valid_while_deps_unchanged(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("fp", {"metrics": {}, "deps": deps_token(["arch", "core"])})
        assert store.get("fp") is not None
        assert store.stale == 0

    def test_dependent_subsystem_edit_invalidates(self, tmp_path, monkeypatch):
        store = ResultCache(tmp_path)
        store.put("fp", {"metrics": {}, "deps": deps_token(["arch", "core"])})
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "arch=edited")
        assert store.get("fp") is None
        assert store.stale == 1
        assert store.stale_log[("runs", "fp")]["subsystems"] == ["arch"]

    def test_non_dependent_edit_leaves_entry_warm(self, tmp_path, monkeypatch):
        store = ResultCache(tmp_path)
        store.put("fp", {"metrics": {}, "deps": deps_token(["arch", "core"])})
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "eval=edited")
        assert store.get("fp") is not None
        assert store.stale == 0

    def test_legacy_code_version_entry_falls_back(self, tmp_path, monkeypatch):
        store = ResultCache(tmp_path)
        store.put("fp", {"metrics": {}, "code_version": code_version()})
        assert store.get("fp") is not None
        monkeypatch.setenv("REPRO_CODE_VERSION", "bumped")
        assert store.get("fp") is None
        assert store.stale_log[("runs", "fp")]["subsystems"] == [
            "<code-version>"
        ]

    def test_entry_without_any_token_is_trusted(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("fp", {"metrics": {"exec_cycles": 1.0}})
        assert store.get("fp") is not None

    def test_deps_take_precedence_over_code_version(
        self, tmp_path, monkeypatch
    ):
        # A matching deps token keeps the entry valid even when the
        # legacy whole-tree version moved underneath it.
        store = ResultCache(tmp_path)
        token = deps_token(["eval"])
        store.put(
            "fp",
            {"metrics": {}, "deps": token, "code_version": "something-old"},
        )
        assert store.get("fp") is not None


class TestSweepInvalidation:
    def _warm(self, tmp_path):
        specs = [spec(), spec(threshold=256), spec().baseline()]
        report = run_specs(specs, cache=tmp_path)
        assert report.failures == 0
        return specs

    def test_eval_edit_keeps_simulations_warm(self, tmp_path, monkeypatch):
        specs = self._warm(tmp_path)
        # Simulated eval/-only edit: zero re-simulations, 100% warm.
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "eval=post-pr-edit")
        report = run_specs(specs, cache=tmp_path)
        assert report.simulations == 0
        assert report.cache_hits == len(specs)

    def test_arch_edit_invalidates_every_simulation(
        self, tmp_path, monkeypatch
    ):
        specs = self._warm(tmp_path)
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "arch=post-pr-edit")
        report = run_specs(specs, cache=tmp_path)
        # Every run simulates on the architecture, so all re-run.
        assert report.cache_hits == 0
        assert report.simulations == len(specs)

    def test_compiler_edit_spares_the_baseline(self, tmp_path, monkeypatch):
        specs = self._warm(tmp_path)
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "compiler=post-pr-edit")
        report = run_specs(specs, cache=tmp_path)
        # The two instrumented runs recompiled; the volatile baseline
        # never touched the compiler and stays warm.
        assert report.simulations == 2
        assert report.cache_hits == 1

    def test_stored_payload_carries_deps_token(self, tmp_path):
        specs = self._warm(tmp_path)
        store = ResultCache(tmp_path)
        payload = store.get(specs[0].fingerprint())
        assert payload is not None
        deps = payload["deps"]
        assert {"arch", "compiler", "core", "workloads"} <= set(deps)
        assert all(len(h) == 16 for h in deps.values())


@pytest.mark.parametrize("salt", ["check=x", "fault=x", "service=x"])
def test_unexercised_subsystems_never_invalidate(tmp_path, monkeypatch, salt):
    specs = [spec()]
    assert run_specs(specs, cache=tmp_path).failures == 0
    monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", salt)
    report = run_specs(specs, cache=tmp_path)
    # The run and its derived baseline both stay warm.
    assert report.simulations == 0 and report.cache_hits == 2
