"""Delta sweeps: ``run_specs(..., since=rev)`` / ``repro sweep --since``."""

import pytest

from repro.api import RunSpec
from repro.compiler import OptConfig
from repro.deps import DepsError
from repro.deps import fingerprint as fingerprint_mod
from repro.sweep.engine import run_specs

TINY = 0.05


def spec(**kw) -> RunSpec:
    base = dict(workload="ssca2", scale=TINY, config=OptConfig.licm(64))
    base.update(kw)
    return RunSpec(**base)


@pytest.fixture
def fake_rev(monkeypatch):
    """Pin the rev diff so these tests need no git history."""

    def set_changed(names):
        monkeypatch.setattr(
            fingerprint_mod,
            "changed_subsystems_since",
            lambda rev, repo_root=None, package=None: list(names),
        )

    return set_changed


class TestDeltaReport:
    def test_no_delta_without_since(self, tmp_path):
        report = run_specs([spec()], cache=tmp_path)
        assert report.delta is None

    def test_cold_sweep_reports_new(self, tmp_path, fake_rev):
        fake_rev([])
        report = run_specs(
            [spec()], cache=tmp_path, since="HEAD~1"
        )
        delta = report.delta
        assert delta is not None and delta.since == "HEAD~1"
        assert {e.outcome for e in delta.entries} == {"new"}
        assert not delta.changed_figures
        assert "new" in delta.summary()

    def test_warm_unchanged_sweep_is_all_warm(self, tmp_path, fake_rev):
        specs = [spec(), spec(threshold=256)]
        run_specs(specs, cache=tmp_path)
        fake_rev([])
        report = run_specs(
            specs, cache=tmp_path, since="HEAD"
        )
        assert report.simulations == 0
        assert {e.outcome for e in report.delta.entries} == {"warm"}
        assert "figures unchanged" in report.delta.summary()

    def test_dependent_edit_resimulates_and_explains(
        self, tmp_path, fake_rev, monkeypatch
    ):
        specs = [spec()]
        run_specs(specs, cache=tmp_path)
        # Simulate an arch/ edit: hash moves, entries depending on arch
        # go stale, and the rev diff names the same subsystem.
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "arch=edited")
        fake_rev(["arch"])
        report = run_specs(
            specs, cache=tmp_path, since="HEAD~1"
        )
        delta = report.delta
        assert delta.changed_subsystems == ["arch"]
        resim = delta.by_outcome("resimulated")
        # The run and its derived baseline both exercised arch.
        assert len(resim) == len(delta.entries) == 2
        for entry in resim:
            assert "arch" in entry.stale_subsystems
            assert entry.old_exec_cycles is not None
            assert entry.new_exec_cycles is not None
            # A salt is not a real code change: the re-run reproduces
            # the old figure exactly, and the report says so.
            assert entry.value_changed is False
        assert "re-runs reproduced old values" in delta.summary()

    def test_non_dependent_edit_reruns_nothing(
        self, tmp_path, fake_rev, monkeypatch
    ):
        specs = [spec()]
        run_specs(specs, cache=tmp_path)
        monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "service=edited")
        fake_rev(["service"])
        report = run_specs(
            specs, cache=tmp_path, since="HEAD~1"
        )
        assert report.simulations == 0
        assert {e.outcome for e in report.delta.entries} == {"warm"}

    def test_to_dict_round_trips_outcomes(self, tmp_path, fake_rev):
        fake_rev(["eval"])
        report = run_specs(
            [spec()], cache=tmp_path, since="HEAD~1"
        )
        doc = report.delta.to_dict()
        assert doc["since"] == "HEAD~1"
        assert doc["changed_subsystems"] == ["eval"]
        assert all(
            set(e) >= {"spec", "outcome", "stale_subsystems", "value_changed"}
            for e in doc["entries"]
        )

    def test_bad_rev_surfaces_deps_error(self, tmp_path):
        with pytest.raises(DepsError):
            run_specs(
                [spec()],
                cache=tmp_path,
                since="no-such-rev-xyzzy",
            )


class TestDeltaCLI:
    def test_since_flag_prints_delta_summary(
        self, tmp_path, fake_rev, capsys
    ):
        from repro.sweep.cli import main as sweep_main

        args = [
            "--benchmarks",
            "ssca2",
            "--thresholds",
            "64",
            "--scale",
            str(TINY),
            "--cache-dir",
            str(tmp_path),
            "--quiet",
        ]
        assert sweep_main(args) == 0
        capsys.readouterr()
        fake_rev([])
        assert sweep_main([*args, "--since", "HEAD"]) == 0
        out = capsys.readouterr().out
        assert "delta since HEAD" in out
        assert "warm" in out

    def test_since_bad_rev_is_a_usage_error(self, tmp_path, capsys):
        from repro.sweep.cli import main as sweep_main

        with pytest.raises(SystemExit) as exc:
            sweep_main(
                [
                    "--benchmarks",
                    "ssca2",
                    "--thresholds",
                    "64",
                    "--scale",
                    str(TINY),
                    "--cache-dir",
                    str(tmp_path),
                    "--quiet",
                    "--since",
                    "no-such-rev-xyzzy",
                ]
            )
        assert exc.value.code == 2
        capsys.readouterr()

    def test_json_envelope_carries_delta(self, tmp_path, fake_rev, capsys):
        import json

        from repro.sweep.cli import main as sweep_main

        out_path = tmp_path / "sweep.json"
        fake_rev(["eval"])
        rc = sweep_main(
            [
                "--benchmarks",
                "ssca2",
                "--thresholds",
                "64",
                "--scale",
                str(TINY),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--quiet",
                "--since",
                "HEAD~1",
                "--json",
                str(out_path),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["command"] == "sweep"
        assert payload["data"]["delta"]["changed_subsystems"] == ["eval"]
