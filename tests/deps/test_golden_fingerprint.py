"""Golden fingerprints: schema drift must fail loudly.

These pin the *exact* fingerprint digests of known RunSpecs.  If any of
them moves, you changed the fingerprint schema — every cached result,
trace, and campaign golden in every user's cache directory silently
misses.  That can be the right call, but it must be deliberate:

1. bump ``_FINGERPRINT_SCHEMA`` in ``repro.api`` (and/or
   ``_TRACE_FINGERPRINT_SCHEMA`` in ``repro.trace.record``),
2. re-pin the digests below,
3. note the schema change in DESIGN.md.

Fingerprints are pure parameter addresses (schema v2): pinned digests
must be identical on every machine and under any ``REPRO_CODE_VERSION``
/ ``REPRO_SUBSYSTEM_SALT`` environment, so these tests set both.
"""

import pytest

from repro.api import RunSpec, _FINGERPRINT_SCHEMA
from repro.compiler import OptConfig
from repro.trace.record import _TRACE_FINGERPRINT_SCHEMA, trace_fingerprint

GOLDEN_SPEC = RunSpec(workload="ssca2", scale=0.05, config=OptConfig.licm(64))

GOLDEN = "16b5f30dedfbe5cee6bd44c63ca40693c47d90230d7da61e8a051886b267ef23"
GOLDEN_SEEDED = (
    "1146ec3ad6da8f69c0bd463cbafe5ef18b99e50bfa08812e936589a07486fa92"
)
GOLDEN_BASELINE = (
    "2efb52c85972b4c3a4585d9a83b9c95f0f88775024b9f9eab4b035438769d38d"
)
GOLDEN_TRACE = (
    "0d49c902554a98f2960fbd36b7f1ad8d1f33a4152b01f851f4a4f448eb4ecf0e"
)


@pytest.fixture(autouse=True)
def hostile_environment(monkeypatch):
    """Fingerprints must ignore every code-version knob."""
    monkeypatch.setenv("REPRO_CODE_VERSION", "golden-test-noise")
    monkeypatch.setenv("REPRO_SUBSYSTEM_SALT", "arch=noise,eval=noise")


class TestGoldenFingerprints:
    def test_schema_version_pinned(self):
        assert _FINGERPRINT_SCHEMA == 2
        assert _TRACE_FINGERPRINT_SCHEMA == 2

    def test_run_fingerprint(self):
        assert GOLDEN_SPEC.fingerprint() == GOLDEN

    def test_seeded_quantum_fingerprint(self):
        s = RunSpec(
            workload="genome",
            scale=0.25,
            config=OptConfig.licm(32),
            quantum=16,
            seed=7,
        )
        assert s.fingerprint() == GOLDEN_SEEDED

    def test_baseline_fingerprint(self):
        assert GOLDEN_SPEC.baseline().fingerprint() == GOLDEN_BASELINE

    def test_trace_fingerprint(self):
        assert trace_fingerprint(GOLDEN_SPEC) == GOLDEN_TRACE

    def test_all_four_distinct(self):
        assert (
            len({GOLDEN, GOLDEN_SEEDED, GOLDEN_BASELINE, GOLDEN_TRACE}) == 4
        )
