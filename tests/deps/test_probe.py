"""Usage-probe semantics: touch broadcast, import diff, nesting."""

from repro.deps import UsageProbe, touch
from repro.deps import probe as probe_mod


class TestTouch:
    def test_noop_without_active_probe(self):
        assert not probe_mod.active()
        touch("arch", "trace")  # must not raise or leak state
        with UsageProbe() as probe:
            pass
        assert probe.subsystems() == ("core",)

    def test_touch_records_into_active_probe(self):
        with UsageProbe() as probe:
            touch("arch")
            touch("check", "fault")
        assert set(probe.subsystems()) == {"arch", "check", "core", "fault"}

    def test_unknown_names_ignored(self):
        with UsageProbe() as probe:
            touch("not-a-subsystem")
        assert probe.subsystems() == ("core",)

    def test_core_always_included(self):
        with UsageProbe() as probe:
            pass
        assert "core" in probe.subsystems()


class TestNesting:
    def test_touch_broadcasts_to_all_active_probes(self):
        with UsageProbe() as outer:
            with UsageProbe() as inner:
                touch("trace")
            touch("arch")
        assert "trace" in outer.subsystems()
        assert "arch" in outer.subsystems()
        assert "trace" in inner.subsystems()
        assert "arch" not in inner.subsystems()

    def test_stack_unwinds_cleanly_on_error(self):
        try:
            with UsageProbe():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not probe_mod.active()


class TestImportDiff:
    def test_fresh_repro_import_is_attributed(self, monkeypatch):
        import sys

        victim = "repro.deps._probe_import_victim"
        monkeypatch.delitem(sys.modules, victim, raising=False)
        monkeypatch.setattr(
            probe_mod, "subsystem_for_module",
            lambda name: "workloads" if name == victim else None,
        )
        with UsageProbe() as probe:
            sys.modules[victim] = object()  # simulate an import
        del sys.modules[victim]
        assert "workloads" in probe.subsystems()


class TestExecuteSpecIntegration:
    def test_execute_spec_records_exercised_subsystems(self):
        from repro.api import RunSpec, execute_spec
        from repro.compiler import OptConfig

        result = execute_spec(
            RunSpec(workload="ssca2", scale=0.05, config=OptConfig.licm(64))
        )
        deps = set(result.deps)
        # An instrumented run builds the workload, compiles it with
        # Capri, and simulates on the architecture.
        assert {"core", "workloads", "compiler", "arch"} <= deps
        assert "fault" not in deps

    def test_baseline_skips_compiler(self):
        from repro.api import RunSpec, execute_spec
        from repro.compiler import OptConfig
        from repro.workloads import get_workload

        # Warm the builder's imports outside any probe so the import
        # diff can't attribute repro.ir to this cold process's run.
        get_workload("ssca2").build(0.05)
        result = execute_spec(
            RunSpec(
                workload="ssca2", scale=0.05, config=OptConfig.volatile()
            )
        )
        deps = set(result.deps)
        assert {"core", "workloads", "arch"} <= deps
        assert "compiler" not in deps
