"""The unified ``--json`` envelope and its deprecated ``--stats-json`` alias."""

import argparse
import json

import pytest

from repro.jsonout import (
    ENVELOPE_SCHEMA,
    add_json_arg,
    envelope,
    resolved_json_out,
    write_envelope,
)


class TestEnvelope:
    def test_shape(self):
        doc = envelope("sweep", {"x": 1})
        assert doc == {
            "schema": ENVELOPE_SCHEMA,
            "command": "sweep",
            "data": {"x": 1},
        }

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "out.json"
        write_envelope(str(path), "fault", {"ok": True})
        payload = json.loads(path.read_text())
        assert payload["schema"] == ENVELOPE_SCHEMA
        assert payload["command"] == "fault"
        assert payload["data"] == {"ok": True}

    def test_write_to_stdout(self, capsys):
        write_envelope("-", "check", {"runs": []})
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "check"


class TestFlagResolution:
    def _parser(self, legacy=None):
        parser = argparse.ArgumentParser(prog="t")
        add_json_arg(parser, legacy=legacy)
        return parser

    def test_json_flag(self):
        args = self._parser().parse_args(["--json", "out.json"])
        assert resolved_json_out(args, prog="t") == "out.json"

    def test_default_is_none(self):
        args = self._parser().parse_args([])
        assert resolved_json_out(args, prog="t") is None

    def test_legacy_alias_still_works_and_warns(self, capsys):
        import repro.jsonout as jsonout

        jsonout._warned.discard("t-legacy")
        parser = self._parser(legacy="--stats-json")
        args = parser.parse_args(["--stats-json", "stats.json"])
        assert resolved_json_out(args, prog="t-legacy") == "stats.json"
        err = capsys.readouterr().err
        assert "deprecated" in err and "--json" in err

    def test_legacy_warns_only_once_per_prog(self, capsys):
        import repro.jsonout as jsonout

        jsonout._warned.discard("t-once")
        parser = self._parser(legacy="--stats-json")
        args = parser.parse_args(["--stats-json", "a.json"])
        resolved_json_out(args, prog="t-once")
        resolved_json_out(args, prog="t-once")
        assert capsys.readouterr().err.count("deprecated") == 1

    def test_new_flag_wins_over_legacy(self):
        parser = self._parser(legacy="--stats-json")
        args = parser.parse_args(
            ["--stats-json", "old.json", "--json", "new.json"]
        )
        assert resolved_json_out(args, prog="t") == "new.json"


class TestCommandIntegration:
    """Every repro subcommand speaks the same envelope."""

    def test_fault_json(self, tmp_path, capsys, monkeypatch):
        from repro.fault.__main__ import main as fault_main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "fault.json"
        rc = fault_main(
            [
                "--workload",
                "stream-write",
                "--scale",
                "0.05",
                "--sample",
                "3",
                "--no-minimize",
                "--json",
                str(out),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == ENVELOPE_SCHEMA
        assert payload["command"] == "fault"
        assert payload["data"]["counts"]["ok"] >= 1

    def test_fault_legacy_stats_json_alias(self, tmp_path, capsys, monkeypatch):
        from repro.fault.__main__ import main as fault_main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "fault.json"
        rc = fault_main(
            [
                "--workload",
                "stream-write",
                "--scale",
                "0.05",
                "--sample",
                "3",
                "--no-minimize",
                "--stats-json",
                str(out),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        assert json.loads(out.read_text())["command"] == "fault"

    def test_check_json_stdout(self, capsys):
        from repro.check.__main__ import main as check_main

        rc = check_main(
            ["--workload", "stream-write", "--scale", "0.3", "--json", "-"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["command"] == "check"
        assert payload["data"]["mode"] == "sanitized"
        assert payload["data"]["failures"] == 0

    def test_litmus_run_json(self, tmp_path, capsys, monkeypatch):
        from repro.litmus.cli import main as litmus_main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "litmus.json"
        rc = litmus_main(["run", "--seeds", "1", "--json", str(out)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == ENVELOPE_SCHEMA
        assert payload["command"] == "litmus"
        assert payload["data"]["mode"] == "run"
        assert payload["data"]["forbidden"] == 0
        assert payload["data"]["verdicts"][0]["crash_points"] > 0

    def test_litmus_generate_json_stdout(self, capsys):
        from repro.litmus.cli import main as litmus_main

        rc = litmus_main(["generate", "--seeds", "0,1", "--json", "-"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["command"] == "litmus"
        assert payload["data"]["mode"] == "generate"
        assert len(payload["data"]["programs"]) == 2

    def test_trace_capture_json(self, tmp_path, capsys, monkeypatch):
        from repro.trace.cli import main as trace_main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "trace.json"
        rc = trace_main(
            [
                "capture",
                "--workload",
                "stream-write",
                "--scale",
                "0.05",
                "--json",
                str(out),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["command"] == "trace"
        assert payload["data"]["mode"] == "capture"
        assert payload["data"]["events"] > 0
        assert "trace" in payload["data"]["deps"]
