"""Loadgen campaigns: the durability contract, end to end."""

import asyncio

from repro.service.loadgen import (
    LoadgenConfig,
    _expected_table,
    _make_ops,
    run_loadgen,
)
from repro.service.tenant import Reply, Request


def _run(config):
    return asyncio.run(run_loadgen(config))


def test_small_campaign_holds_the_contract():
    report = _run(LoadgenConfig(
        tenants=2, clients_per_tenant=2, requests=80, crashes=2, seed=11,
        snapshot_every=0,
    ))
    assert report.ok
    assert report.silent_drops == 0
    assert not report.acked_losses
    assert report.verified_tenants == 2
    assert report.stats["acked"] > 0
    d = report.to_dict()
    assert d["latency"]["p50_ms"] > 0
    assert "recovery_latency" in d


def test_campaign_with_crashes_replays():
    report = _run(LoadgenConfig(
        tenants=2, clients_per_tenant=1, requests=60, crashes=4, seed=5,
        snapshot_every=0,
    ))
    assert report.ok
    assert report.stats["crashes"] > 0, "planned crashes should fire"
    assert report.stats["recoveries"] == report.stats["crashes"]
    assert report.stats["replayed"] > 0
    assert report.stats["dead_letters"]["captured"] == 0


def test_ops_are_deterministic_per_seed():
    config = LoadgenConfig(tenants=2, clients_per_tenant=2, requests=100, seed=3)
    a = _make_ops(config, "t1", 0)
    b = _make_ops(config, "t1", 0)
    assert a == b
    assert _make_ops(config, "t1", 1) != a  # clients differ
    other = LoadgenConfig(tenants=2, clients_per_tenant=2, requests=100, seed=4)
    assert _make_ops(other, "t1", 0) != a  # seeds differ


def test_expected_table_orders_by_applied_seq():
    acked = [
        (Request("put", key=1, value=10), Reply(True, "put", key=1, applied_seq=3)),
        (Request("put", key=1, value=99), Reply(True, "put", key=1, applied_seq=1)),
        (Request("delete", key=2), Reply(True, "delete", key=2, applied_seq=4)),
        (Request("put", key=2, value=20), Reply(True, "put", key=2, applied_seq=2)),
        (Request("get", key=1), Reply(True, "get", key=1, applied_seq=5)),
    ]
    # Execution order: put 1=99, put 2=20, put 1=10, delete 2.
    assert _expected_table(acked) == {1: 10}


def test_report_summary_mentions_percentiles_and_verdict():
    report = _run(LoadgenConfig(
        tenants=1, clients_per_tenant=1, requests=20, crashes=0, seed=0,
        snapshot_every=0,
    ))
    text = report.summary()
    assert "p50" in text and "p99" in text
    assert "verdict: OK" in text


def test_reject_policy_campaign_stays_consistent():
    report = _run(LoadgenConfig(
        tenants=2, clients_per_tenant=3, requests=90, crashes=2, seed=7,
        mailbox_depth=2, policy="reject", snapshot_every=0,
    ))
    assert report.ok  # rejected ops never corrupt the oracle
    assert report.stats["acked"] + report.stats["rejected"] \
        + report.stats["failed"] == report.stats["requests"]
