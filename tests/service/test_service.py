"""The asyncio front-end: mailboxes, backpressure, supervision, stats."""

import asyncio

import pytest

from repro.service import (
    CrashSchedule,
    Request,
    Service,
    ServiceConfig,
)
from repro.service.backends import DiskBackend
from repro.service.tenant import TenantConfig


def _run(coro):
    return asyncio.run(coro)


def _config(n=2, **kwargs):
    kwargs.setdefault("tenant", TenantConfig(snapshot_every=0))
    return ServiceConfig.simple(n, **kwargs)


def test_basic_request_flow():
    async def scenario():
        service = Service(_config())
        await service.start()
        reply = await service.submit("t0", Request("put", key=3, value=30))
        assert reply.ok and reply.value == 30
        reply = await service.submit("t0", Request("get", key=3))
        assert reply.found and reply.value == 30
        await service.stop()

    _run(scenario())


def test_tenant_isolation():
    async def scenario():
        service = Service(_config())
        await service.start()
        await service.submit("t0", Request("put", key=1, value=11))
        reply = await service.submit("t1", Request("get", key=1))
        assert reply.ok and not reply.found  # separate persistence domains
        await service.stop()

    _run(scenario())


def test_unknown_tenant_and_bad_key():
    async def scenario():
        service = Service(_config())
        await service.start()
        reply = await service.submit("zz", Request("get", key=1))
        assert not reply.ok and "unknown tenant" in reply.error
        reply = await service.submit("t0", Request("put", key=0, value=1))
        assert not reply.ok and "key" in reply.error
        await service.stop()

    _run(scenario())


def test_concurrent_clients_interleave_correctly():
    async def scenario():
        service = Service(_config(3))
        await service.start()

        async def client(tid, base):
            for i in range(10):
                reply = await service.submit(
                    tid, Request("put", key=base + i, value=base + i)
                )
                assert reply.ok
        await asyncio.gather(*[
            client(tid, 1 + c * 20)
            for tid in ("t0", "t1", "t2") for c in range(2)
        ])
        for tid in ("t0", "t1", "t2"):
            table = service.tenants[tid].table()
            assert len(table) == 20
            assert all(table[k] == k for k in table)
        await service.stop()

    _run(scenario())


def test_reject_policy_sheds_load_visibly():
    async def scenario():
        service = Service(_config(1, mailbox_depth=1, policy="reject"))
        await service.start()
        replies = await asyncio.gather(*[
            service.submit("t0", Request("put", key=k, value=k))
            for k in range(1, 31)
        ])
        acked = [r for r in replies if r.ok]
        rejected = [r for r in replies if r.rejected]
        assert len(acked) + len(rejected) == 30  # shed, never dropped
        assert rejected, "depth-1 mailbox under burst must reject some"
        assert all("mailbox full" in r.error for r in rejected)
        stats = service.stats()
        assert stats["rejected"] == len(rejected)
        # Every acked put is in the table.
        table = service.tenants["t0"].table()
        for r in acked:
            assert table[r.key] == r.key
        await service.stop()

    _run(scenario())


def test_queue_policy_applies_backpressure_without_loss():
    async def scenario():
        service = Service(_config(1, mailbox_depth=2, policy="queue"))
        await service.start()
        replies = await asyncio.gather(*[
            service.submit("t0", Request("put", key=k, value=k))
            for k in range(1, 21)
        ])
        assert all(r.ok for r in replies)
        assert len(service.tenants["t0"].table()) == 20
        assert service.mailboxes["t0"].max_depth <= 2
        await service.stop()

    _run(scenario())


def test_chaos_crash_is_recovered_and_replayed():
    async def scenario():
        chaos = CrashSchedule({("t0", 0): 10}, seed=0)
        service = Service(_config(1), chaos=chaos)
        await service.start()
        reply = await service.submit("t0", Request("put", key=5, value=55))
        assert reply.ok and reply.replayed  # crashed, recovered, replayed
        assert service.tenants["t0"].table() == {5: 55}
        stats = service.stats()
        assert stats["crashes"] == 1 and stats["recoveries"] == 1
        assert stats["dead_letters"]["replayed"] == 1
        assert stats["dead_letters"]["captured"] == 0  # terminal status
        await service.stop()

    _run(scenario())


def test_stats_request_and_rollup():
    async def scenario():
        service = Service(_config())
        await service.start()
        await service.submit("t0", Request("put", key=1, value=1))
        reply = await service.submit("t0", Request("stats"))
        assert reply.ok
        assert reply.stats["acked"] == 1
        assert reply.stats["table_size"] == 1
        assert reply.stats["workload_stats"]["puts"] == 1
        assert reply.stats["latency"]["count"] == 1
        rollup = service.stats()
        assert rollup["tenants"] == 2
        assert rollup["latency"]["p50_ms"] > 0
        await service.stop()

    _run(scenario())


def test_verify_recovered_matches_live_tables():
    async def scenario():
        chaos = CrashSchedule({("t0", 1): 8, ("t1", 2): 20}, seed=0)
        service = Service(_config(2), chaos=chaos)
        await service.start()
        for k in range(1, 8):
            await service.submit("t0", Request("put", key=k, value=k))
            await service.submit("t1", Request("put", key=k, value=k * 2))
        recovered = service.verify_recovered()
        for tid in ("t0", "t1"):
            assert recovered[tid] == service.tenants[tid].table()
        await service.stop()

    _run(scenario())


def test_restart_durability_via_disk_backend(tmp_path):
    """Stop the service, start a new one on the same state dir: every
    acked write is still there (recovered through the stock protocol)."""
    async def first():
        service = Service(_config(
            2, backend="disk", state_dir=tmp_path,
            tenant=TenantConfig(snapshot_every=1),
        ))
        await service.start()
        assert service.recovered_at_boot == 0
        for k in (1, 2, 3):
            await service.submit("t0", Request("put", key=k, value=k * 7))
        await service.submit("t1", Request("put", key=9, value=90))
        await service.stop()

    async def second():
        service = Service(_config(
            2, backend="disk", state_dir=tmp_path,
            tenant=TenantConfig(snapshot_every=1),
        ))
        await service.start()
        assert service.recovered_at_boot == 2
        reply = await service.submit("t0", Request("get", key=2))
        assert reply.found and reply.value == 14
        reply = await service.submit("t1", Request("get", key=9))
        assert reply.found and reply.value == 90
        await service.stop()

    _run(first())
    assert DiskBackend(tmp_path).load("t0") is not None
    _run(second())


def test_stop_drains_pending_requests():
    async def scenario():
        service = Service(_config(1))
        await service.start()
        tasks = [
            asyncio.create_task(
                service.submit("t0", Request("put", key=k, value=k))
            )
            for k in range(1, 11)
        ]
        await asyncio.sleep(0)  # let them enqueue
        await service.stop()
        replies = await asyncio.gather(*tasks)
        assert all(r.ok for r in replies)  # drained, not abandoned

    _run(scenario())
