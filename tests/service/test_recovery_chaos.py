"""Nested failures in the service: power dies during recovery itself.

The tenant's recovery path runs the re-entrant step engine under a
:class:`CrashInjector`, so a chaos-scheduled recovery crash surfaces as
another :class:`PowerFailure` — and calling :meth:`Tenant.recover` again
simply re-enters over the recovery-crashed domain and converges.
"""

import asyncio

import pytest

from repro.arch.crash import PowerFailure
from repro.service.backends import MemoryBackend
from repro.service.chaos import CrashSchedule
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.metrics import TenantMetrics
from repro.service.tenant import Request, Tenant, TenantConfig


def _tenant(chaos=None, metrics=None, backend=None):
    tenant = Tenant(
        "t0",
        backend or MemoryBackend(),
        config=TenantConfig(snapshot_every=0),
        chaos=chaos,
        metrics=metrics,
    )
    tenant.boot()
    return tenant


class TestSchedulePlanning:
    def test_plan_includes_recovery_crashes(self):
        chaos = CrashSchedule.plan(
            ["t0", "t1"], crashes=2, requests_per_tenant=10,
            seed=4, recovery_crashes=3,
        )
        assert chaos.planned == 2
        assert chaos.planned_recovery == 3
        hits = [
            chaos.recovery_crash_event(tid, k)
            for tid in ("t0", "t1")
            for k in range(8)
        ]
        assert sum(1 for h in hits if h is not None) == 3

    def test_plan_is_seeded(self):
        a = CrashSchedule.plan(["t0"], 1, 10, seed=9, recovery_crashes=2)
        b = CrashSchedule.plan(["t0"], 1, 10, seed=9, recovery_crashes=2)
        for k in range(8):
            assert a.recovery_crash_event("t0", k) == \
                b.recovery_crash_event("t0", k)

    def test_never_plans_nothing(self):
        chaos = CrashSchedule.never()
        assert chaos.planned_recovery == 0
        assert chaos.recovery_crash_event("t0", 0) is None


class TestTenantReentry:
    def test_crash_during_recovery_then_reenter(self):
        """Execution crash, then a scheduled crash inside the recovery of
        that crash: the second recover() call converges and the table is
        exactly what an unnested recovery would give."""
        metrics = TenantMetrics("t0")
        chaos = CrashSchedule(
            {("t0", 2): 20},  # ordinal 2 = the crashing apply
            recovery_plans={("t0", 0): 2},  # first recovery dies at step 2
        )
        tenant = _tenant(chaos=chaos, metrics=metrics)
        tenant.apply(Request("put", key=1, value=10))
        tenant.apply(Request("put", key=2, value=20))
        with pytest.raises(PowerFailure):
            tenant.apply(Request("put", key=3, value=30))
        # First recovery attempt is itself crash-injected.
        with pytest.raises(PowerFailure):
            tenant.recover()
        assert metrics.crashes == 2  # execution + nested
        # Re-entry over the recovery-crashed domain converges.
        tenant.recover()
        assert tenant.apply(Request("put", key=3, value=30)).ok
        table = tenant.table()
        assert table[1] == 10 and table[2] == 20 and table[3] == 30
        assert tenant.verify_recovered_table() == table

    def test_repeated_recovery_crashes_converge(self):
        """Several consecutive recovery attempts die; the survivor still
        produces the right table."""
        chaos = CrashSchedule(
            {("t0", 1): 15},
            recovery_plans={("t0", 0): 1, ("t0", 1): 3, ("t0", 2): 2},
        )
        tenant = _tenant(chaos=chaos)
        tenant.apply(Request("put", key=7, value=70))
        with pytest.raises(PowerFailure):
            tenant.apply(Request("put", key=8, value=80))
        crashes = 0
        while True:
            try:
                tenant.recover()
                break
            except PowerFailure:
                crashes += 1
        assert crashes >= 1
        assert tenant.apply(Request("put", key=8, value=80)).ok
        assert tenant.table() == {7: 70, 8: 80}

    def test_boot_absorbs_recovery_crash(self):
        """Restart-from-snapshot goes through recovery; a nested failure
        there is retried inside boot() (no supervisor exists yet)."""
        backend = MemoryBackend()
        tenant = _tenant(backend=backend)
        tenant.apply(Request("put", key=5, value=55))
        tenant.save_snapshot()

        chaos = CrashSchedule({}, recovery_plans={("t0", 0): 1})
        restarted = Tenant(
            "t0", backend, config=TenantConfig(snapshot_every=0), chaos=chaos
        )
        assert restarted.boot() is True
        assert restarted.table() == {5: 55}
        assert restarted.recovery_attempts >= 2  # crashed once, re-entered


class TestSupervisorAndLoadgen:
    def test_loadgen_contract_with_nested_failures(self):
        report = asyncio.run(run_loadgen(LoadgenConfig(
            tenants=3, clients_per_tenant=2, requests=120,
            crashes=4, recovery_crashes=4, seed=7, snapshot_every=0,
        )))
        assert report.ok, (report.acked_losses, report.silent_drops)
        # Nested failures fired on top of the execution crashes.
        assert report.stats["crashes"] > report.stats["recoveries"]
        assert report.stats["dead_letters"]["captured"] == 0

    def test_loadgen_without_recovery_crashes_unchanged(self):
        report = asyncio.run(run_loadgen(LoadgenConfig(
            tenants=2, clients_per_tenant=1, requests=60,
            crashes=3, recovery_crashes=0, seed=5, snapshot_every=0,
        )))
        assert report.ok
        assert report.stats["recoveries"] == report.stats["crashes"]
