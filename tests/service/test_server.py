"""The TCP endpoint: wire protocol, isolation, malformed input."""

import asyncio
import json

import pytest

from repro.service.server import Server, build_parser, config_from_args, parse_request_line
from repro.service.service import Service, ServiceConfig
from repro.service.tenant import Request, TenantConfig


def test_parse_request_line_happy_path():
    tenant_id, request = parse_request_line(
        b'{"tenant": "t3", "op": "put", "key": 7, "value": 42}'
    )
    assert tenant_id == "t3"
    assert request == Request("put", key=7, value=42)


@pytest.mark.parametrize("raw,needle", [
    (b"not json", "bad json"),
    (b"[1, 2]", "json object"),
    (b'{"op": "get", "key": 1}', "tenant"),
    (b'{"tenant": "t0", "key": 1}', "op"),
    (b'{"tenant": "t0", "op": "get", "key": "x"}', "integer"),
])
def test_parse_request_line_rejects(raw, needle):
    with pytest.raises(ValueError, match=needle):
        parse_request_line(raw)


def test_config_from_args_defaults_and_validation():
    args = build_parser().parse_args(["--tenants", "3"])
    config = config_from_args(args)
    assert config.tenant_ids == ["t0", "t1", "t2"]
    assert config.backend == "memory"
    with pytest.raises(SystemExit):
        config_from_args(build_parser().parse_args(["--backend", "disk"]))


def _roundtrip(requests):
    """Boot a server on an ephemeral port, run the wire conversation."""
    async def scenario():
        config = ServiceConfig.simple(2, tenant=TenantConfig(snapshot_every=0))
        server = Server(Service(config), port=0)
        port = await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        replies = []
        for obj in requests:
            line = obj if isinstance(obj, bytes) else json.dumps(obj).encode()
            writer.write(line + b"\n")
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
        writer.close()
        await server.stop()
        return replies

    return asyncio.run(scenario())


def test_wire_roundtrip_and_isolation():
    replies = _roundtrip([
        {"tenant": "t0", "op": "put", "key": 3, "value": 9},
        {"tenant": "t0", "op": "get", "key": 3},
        {"tenant": "t1", "op": "get", "key": 3},
        {"tenant": "t0", "op": "stats"},
    ])
    assert replies[0]["ok"] and replies[0]["tenant"] == "t0"
    assert replies[1]["found"] and replies[1]["value"] == 9
    assert not replies[2]["found"]  # t1 never saw t0's put
    assert replies[3]["ok"] and replies[3]["stats"]["acked"] == 2


def test_wire_malformed_lines_get_error_replies():
    replies = _roundtrip([
        b"not json at all",
        {"tenant": "nope", "op": "get", "key": 1},
        {"tenant": "t0", "op": "get", "key": 1},  # still serving after junk
    ])
    assert not replies[0]["ok"] and "bad json" in replies[0]["error"]
    assert not replies[1]["ok"] and "unknown tenant" in replies[1]["error"]
    assert replies[2]["ok"]


def test_concurrent_connections():
    async def scenario():
        config = ServiceConfig.simple(1, tenant=TenantConfig(snapshot_every=0))
        server = Server(Service(config), port=0)
        port = await server.start()

        async def client(base):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for i in range(5):
                writer.write(json.dumps({
                    "tenant": "t0", "op": "put",
                    "key": base + i, "value": base + i,
                }).encode() + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["ok"]
            writer.close()

        await asyncio.gather(client(1), client(10), client(20))
        assert len(server.service.tenants["t0"].table()) == 15
        await server.stop()

    asyncio.run(scenario())
