"""Tenant lifecycle: requests, crashes, recovery-as-restart, snapshots."""

import pytest

from repro.arch.crash import PowerFailure
from repro.service.backends import MemoryBackend
from repro.service.chaos import CrashSchedule
from repro.service.metrics import TenantMetrics
from repro.service.tenant import Request, Tenant, TenantConfig, TenantError


def _tenant(**kwargs):
    config = TenantConfig(snapshot_every=kwargs.pop("snapshot_every", 0))
    tenant = Tenant("t0", kwargs.pop("backend", MemoryBackend()),
                    config=config, **kwargs)
    tenant.boot()
    return tenant


def test_cold_boot_and_basic_ops():
    tenant = _tenant()
    reply = tenant.apply(Request("put", key=5, value=50))
    assert reply.ok and reply.value == 50 and reply.applied_seq == 1
    reply = tenant.apply(Request("get", key=5))
    assert reply.ok and reply.found and reply.value == 50
    reply = tenant.apply(Request("get", key=6))
    assert reply.ok and not reply.found
    reply = tenant.apply(Request("delete", key=5))
    assert reply.ok
    assert not tenant.apply(Request("get", key=5)).found
    assert tenant.table() == {}


def test_unknown_op_is_failed_reply():
    tenant = _tenant()
    reply = tenant.apply(Request("swizzle", key=1))
    assert not reply.ok and "unknown op" in reply.error


def test_overwrite_and_many_keys():
    tenant = _tenant()
    for key in range(1, 21):
        tenant.apply(Request("put", key=key, value=key * 10))
    tenant.apply(Request("put", key=7, value=777))
    table = tenant.table()
    assert len(table) == 20 and table[7] == 777 and table[20] == 200


def test_crash_midrequest_then_recover_then_replay():
    tenant = _tenant()
    tenant.apply(Request("put", key=1, value=10))
    with pytest.raises(PowerFailure):
        tenant.apply(Request("put", key=2, value=20), crash_at=25)
    # Crashed and unrecovered: the tenant refuses new work.
    with pytest.raises(TenantError):
        tenant.apply(Request("get", key=1))
    info = tenant.recover()
    assert info.wall_s > 0
    # The pre-crash ack survived; replaying the interrupted op is safe.
    reply = tenant.apply(Request("put", key=2, value=20))
    assert reply.ok
    assert tenant.table() == {1: 10, 2: 20}


@pytest.mark.parametrize("crash_at", [1, 5, 12, 20, 30, 40])
def test_acked_writes_survive_any_crash_point(crash_at):
    """Whatever event index the power fails at, every previously acked
    put is present after recovery (the service durability contract)."""
    tenant = _tenant()
    acked = {}
    for key in (1, 2, 3):
        tenant.apply(Request("put", key=key, value=key * 100))
        acked[key] = key * 100
    try:
        tenant.apply(Request("put", key=9, value=900), crash_at=crash_at)
        acked[9] = 900  # index past end-of-request: no crash, it's acked
    except PowerFailure:
        tenant.recover()
    table = tenant.table()
    for key, value in acked.items():
        assert table.get(key) == value, (crash_at, key, table)


def test_replay_is_idempotent_after_partial_apply():
    """Crash late in a put (possibly after the slot write), recover,
    replay: exactly one slot for the key, with the right value."""
    tenant = _tenant()
    with pytest.raises(PowerFailure):
        tenant.apply(Request("put", key=4, value=44), crash_at=38)
    tenant.recover()
    reply = tenant.apply(Request("put", key=4, value=44))
    assert reply.ok
    assert tenant.table() == {4: 44}
    # And the recovered table agrees with the live one.
    assert tenant.verify_recovered_table() == {4: 44}


def test_chaos_schedule_drives_injection():
    chaos = CrashSchedule({("t0", 1): 15}, seed=0)
    metrics = TenantMetrics("t0")
    tenant = Tenant("t0", MemoryBackend(),
                    config=TenantConfig(snapshot_every=0),
                    chaos=chaos, metrics=metrics)
    tenant.boot()
    tenant.apply(Request("put", key=1, value=1))  # ordinal 0: clean
    with pytest.raises(PowerFailure):
        tenant.apply(Request("put", key=2, value=2))  # ordinal 1: crash
    assert chaos.fired == 1 and metrics.crashes == 1
    tenant.recover()
    # Ordinal 2 (the replay) has no plan: completes.
    assert tenant.apply(Request("put", key=2, value=2)).ok


def test_snapshot_roundtrip_restores_via_recovery():
    backend = MemoryBackend()
    tenant = Tenant("t0", backend, config=TenantConfig(snapshot_every=0))
    tenant.boot()
    tenant.apply(Request("put", key=8, value=88))
    tenant.save_snapshot()
    tenant.apply(Request("put", key=9, value=99))  # not snapshotted

    restarted = Tenant("t0", backend, config=TenantConfig(snapshot_every=0))
    assert restarted.boot() is True
    assert restarted.table() == {8: 88}  # snapshot point, not the tail


def test_snapshot_every_acked_request():
    backend = MemoryBackend()
    tenant = Tenant("t0", backend, config=TenantConfig(snapshot_every=1))
    tenant.boot()
    tenant.apply(Request("put", key=1, value=10))
    tenant.apply(Request("put", key=2, value=20))
    assert backend.stores == 2
    restarted = Tenant("t0", backend, config=TenantConfig(snapshot_every=0))
    restarted.boot()
    assert restarted.table() == {1: 10, 2: 20}


def test_verify_recovered_table_leaves_live_tenant_untouched():
    tenant = _tenant()
    tenant.apply(Request("put", key=3, value=33))
    before = tenant.table()
    assert tenant.verify_recovered_table() == before
    # Still serving after the simulated outage.
    assert tenant.apply(Request("get", key=3)).value == 33


def test_stats_words_track_operations():
    tenant = _tenant()
    tenant.apply(Request("put", key=1, value=1))
    tenant.apply(Request("put", key=2, value=2))
    tenant.apply(Request("delete", key=1))
    tenant.apply(Request("get", key=99))
    words = tenant.stats_words()
    assert words["puts"] == 2 and words["deletes"] == 1
    assert words["misses"] >= 1


def test_recovery_metrics_recorded():
    metrics = TenantMetrics("t0")
    tenant = Tenant("t0", MemoryBackend(),
                    config=TenantConfig(snapshot_every=0), metrics=metrics)
    tenant.boot()
    with pytest.raises(PowerFailure):
        tenant.apply(Request("put", key=1, value=1), crash_at=10)
    tenant.recover()
    assert metrics.crashes == 1
    assert metrics.recoveries == 1
    assert metrics.recovery_latency.count == 1


def test_power_cycle_preserves_table():
    tenant = _tenant()
    tenant.apply(Request("put", key=6, value=60))
    tenant.power_cycle()
    assert tenant.table() == {6: 60}
    assert tenant.apply(Request("get", key=6)).value == 60
