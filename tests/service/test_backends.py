"""Backend contract tests: load/store/delete, corruption, atomicity."""

import json

import pytest

from repro.arch.crash import PowerFailure
from repro.service.backends import (
    DiskBackend,
    MemoryBackend,
    ShardedBackend,
    make_backend,
)
from repro.service.tenant import Request, Tenant, TenantConfig


def _snapshot_with_data():
    """A real CrashState carrying a couple of committed puts."""
    tenant = Tenant("seed", MemoryBackend(), config=TenantConfig(snapshot_every=0))
    tenant.boot()
    tenant.apply(Request("put", key=3, value=30))
    tenant.apply(Request("put", key=7, value=70))
    return tenant.capture()


@pytest.fixture(scope="module")
def snapshot():
    return _snapshot_with_data()


def _restore_table(backend, tenant_id):
    tenant = Tenant(tenant_id, backend, config=TenantConfig(snapshot_every=0))
    assert tenant.boot() is True
    return tenant.table()


@pytest.mark.parametrize("kind", ["memory", "disk", "sharded"])
def test_roundtrip(kind, snapshot, tmp_path):
    backend = make_backend(kind, state_dir=tmp_path)
    backend.store("t0", snapshot)
    assert _restore_table(backend, "t0") == {3: 30, 7: 70}
    backend.close()


@pytest.mark.parametrize("kind", ["memory", "disk", "sharded"])
def test_missing_is_cold_start(kind, tmp_path):
    backend = make_backend(kind, state_dir=tmp_path)
    assert backend.load("never-stored") is None
    backend.delete("never-stored")  # missing delete is not an error
    backend.close()


@pytest.mark.parametrize("kind", ["memory", "disk", "sharded"])
def test_delete_forgets(kind, snapshot, tmp_path):
    backend = make_backend(kind, state_dir=tmp_path)
    backend.store("t0", snapshot)
    backend.delete("t0")
    assert backend.load("t0") is None
    backend.close()


def test_memory_backend_clones(snapshot):
    backend = MemoryBackend()
    backend.store("t0", snapshot)
    loaded = backend.load("t0")
    loaded.nvm_image[999999] = 42  # mutating a load must not leak back
    assert 999999 not in backend.load("t0").nvm_image


def test_disk_corrupt_snapshot_quarantined(snapshot, tmp_path):
    backend = DiskBackend(tmp_path)
    backend.store("t0", snapshot)
    path = tmp_path / "t0.json"
    path.write_text('{"torn": ')
    assert backend.load("t0") is None  # cold start, not a crash
    assert backend.quarantined == 1
    assert path.with_suffix(".json.corrupt").exists()
    # The slot is reusable after quarantine.
    backend.store("t0", snapshot)
    assert backend.load("t0") is not None


def test_disk_unparseable_payload_quarantined(tmp_path):
    backend = DiskBackend(tmp_path)
    (tmp_path / "t0.json").write_text(json.dumps({"schema": 999}))
    assert backend.load("t0") is None
    assert backend.quarantined == 1


def test_sharded_layout_and_commit_point(snapshot, tmp_path):
    backend = ShardedBackend(tmp_path, shards=3)
    backend.store("t0", snapshot)
    base = tmp_path / "t0"
    current = json.loads((base / "CURRENT").read_text())["generation"]
    gen_dir = base / current
    assert (gen_dir / "meta.json").is_file()
    for k in range(3):
        assert (gen_dir / f"shard-{k}.json").is_file()
    # A second store flips CURRENT and prunes the old generation.
    backend.store("t0", snapshot)
    current2 = json.loads((base / "CURRENT").read_text())["generation"]
    assert current2 != current
    assert not (base / current).exists()


def test_sharded_digest_mismatch_quarantined(snapshot, tmp_path):
    backend = ShardedBackend(tmp_path, shards=2)
    backend.store("t0", snapshot)
    base = tmp_path / "t0"
    gen = json.loads((base / "CURRENT").read_text())["generation"]
    shard_path = base / gen / "shard-0.json"
    shard = json.loads(shard_path.read_text())
    key = next(iter(shard["image"]))
    shard["image"][key] = shard["image"][key] + 1  # flip one word
    shard_path.write_text(json.dumps(shard))
    assert backend.load("t0") is None
    assert backend.quarantined == 1


def test_sharded_torn_store_keeps_previous_generation(snapshot, tmp_path):
    """Shards on disk but CURRENT not flipped == the store never happened."""
    backend = ShardedBackend(tmp_path, shards=2)
    backend.store("t0", snapshot)
    base = tmp_path / "t0"
    before = (base / "CURRENT").read_text()
    # Simulate a crash mid-second-store: new generation dir written,
    # CURRENT untouched.
    (base / "gen-999999-0").mkdir()
    (base / "gen-999999-0" / "shard-0.json").write_text("{}")
    assert (base / "CURRENT").read_text() == before
    assert _restore_table(backend, "t0") == {3: 30, 7: 70}


def test_sharded_worker_pool_roundtrip(snapshot, tmp_path):
    backend = ShardedBackend(tmp_path, shards=4, workers=2)
    backend.store("t0", snapshot)
    assert _restore_table(backend, "t0") == {3: 30, 7: 70}
    backend.close()


def test_sharded_image_partition_is_complete(snapshot, tmp_path):
    backend = ShardedBackend(tmp_path, shards=5)
    backend.store("t0", snapshot)
    base = tmp_path / "t0"
    gen = json.loads((base / "CURRENT").read_text())["generation"]
    merged = {}
    for k in range(5):
        shard = json.loads((base / gen / f"shard-{k}.json").read_text())
        for addr in shard["image"]:
            assert addr not in merged  # shards are disjoint
        merged.update(shard["image"])
    assert {int(a): v for a, v in merged.items()} == dict(snapshot.nvm_image)


def test_make_backend_rejects_unknown_and_missing_dir(tmp_path):
    with pytest.raises(ValueError):
        make_backend("tape", state_dir=tmp_path)
    with pytest.raises(ValueError):
        make_backend("disk")


def test_snapshot_survives_midcrash_capture(tmp_path):
    """A snapshot taken from a crashed-then-recovered tenant restores."""
    backend = DiskBackend(tmp_path)
    tenant = Tenant("t0", backend, config=TenantConfig(snapshot_every=0))
    tenant.boot()
    tenant.apply(Request("put", key=1, value=11))
    with pytest.raises(PowerFailure):
        tenant.apply(Request("put", key=2, value=22), crash_at=20)
    tenant.recover()
    tenant.apply(Request("put", key=2, value=22))
    tenant.save_snapshot()
    assert _restore_table(backend, "t0") == {1: 11, 2: 22}
