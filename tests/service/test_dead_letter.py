"""Satellite: dead-letter semantics under adversarial crash plans.

The contract under test: a request in flight when the power fails is
never silently dropped.  Whatever observer-event index the
:class:`~repro.arch.crash.CrashInjector` plan picks — first event, mid
undo-log, straddling the commit, past the end — the request's dead
letter ends in a terminal status (``replayed`` and acked, or ``dead``
and surfaced), and acked state survives.
"""

import asyncio

import pytest

from repro.service import (
    CrashSchedule,
    Request,
    Service,
    ServiceConfig,
)
from repro.service.mailbox import CAPTURED, DEAD, REPLAYED
from repro.service.tenant import TenantConfig


def _run(coro):
    return asyncio.run(coro)


def _service(chaos, n=1, max_replay_attempts=8):
    return Service(
        ServiceConfig.simple(
            n,
            tenant=TenantConfig(
                snapshot_every=0, max_replay_attempts=max_replay_attempts
            ),
        ),
        chaos=chaos,
    )


# Every interesting alignment of the injection point against a put's
# ~40-event execution: spawn boundary, undo logging, slot write, region
# commit, and far past the end (a no-op plan).
ADVERSARIAL_EVENTS = [1, 2, 3, 5, 8, 13, 19, 26, 33, 39, 41, 200]


@pytest.mark.parametrize("event", ADVERSARIAL_EVENTS)
def test_in_flight_request_never_silently_dropped(event):
    async def scenario():
        chaos = CrashSchedule({("t0", 1): event}, seed=0)
        service = _service(chaos)
        await service.start()
        first = await service.submit("t0", Request("put", key=1, value=10))
        assert first.ok and not first.replayed
        second = await service.submit("t0", Request("put", key=2, value=20))

        if chaos.fired:
            # The crash fired mid-request: the request was captured,
            # recovered, and replayed to an ack.
            assert second.ok and second.replayed
            counts = service.dead_letters.counts()
            assert counts[REPLAYED] == 1
            assert counts[CAPTURED] == 0  # terminal status, always
            assert counts[DEAD] == 0
        else:
            # Plan past end-of-request: a clean ack, no letters.
            assert second.ok and not second.replayed
            assert not service.dead_letters.letters

        # Acked state survives regardless of the injection point.
        table = service.tenants["t0"].table()
        assert table == {1: 10, 2: 20}
        assert service.verify_recovered()["t0"] == table
        await service.stop()

    _run(scenario())


def test_crash_during_replay_recovers_again():
    """Plans on consecutive attempt ordinals crash the original AND its
    replay; the supervisor keeps recovering until an attempt completes."""
    async def scenario():
        chaos = CrashSchedule(
            {("t0", 0): 10, ("t0", 1): 15, ("t0", 2): 20}, seed=0
        )
        service = _service(chaos)
        await service.start()
        reply = await service.submit("t0", Request("put", key=7, value=70))
        assert reply.ok and reply.replayed
        assert chaos.fired == 3
        stats = service.stats()
        assert stats["crashes"] == 3 and stats["recoveries"] == 3
        counts = service.dead_letters.counts()
        assert counts[REPLAYED] == 1 and counts[CAPTURED] == 0
        assert service.tenants["t0"].table() == {7: 70}
        await service.stop()

    _run(scenario())


def test_replay_exhaustion_surfaces_dead_letter():
    """Crash every attempt: the letter goes ``dead`` and the client gets
    an explicit failure — surfaced, not silent."""
    async def scenario():
        # Attempts 0..3 all crash; max_replay_attempts=3 gives up after
        # the third replay (ordinal 4 onwards is clean again).
        chaos = CrashSchedule(
            {("t0", o): 10 for o in range(4)}, seed=0
        )
        service = _service(chaos, max_replay_attempts=3)
        await service.start()
        reply = await service.submit("t0", Request("put", key=3, value=30))
        assert not reply.ok and "exhausted" in reply.error
        counts = service.dead_letters.counts()
        assert counts[DEAD] == 1 and counts[CAPTURED] == 0
        letter = service.dead_letters.dead("t0")[0]
        assert letter.request.key == 3
        assert letter.attempts == 3
        # The tenant recovered from the final crash and still serves.
        follow_up = await service.submit("t0", Request("put", key=4, value=40))
        assert follow_up.ok
        assert service.tenants["t0"].table()[4] == 40
        await service.stop()

    _run(scenario())


def test_dead_letters_are_per_tenant():
    async def scenario():
        chaos = CrashSchedule(
            {("t0", o): 10 for o in range(10)}, seed=0
        )
        service = _service(chaos, n=2, max_replay_attempts=2)
        await service.start()
        bad = await service.submit("t0", Request("put", key=1, value=1))
        good = await service.submit("t1", Request("put", key=1, value=1))
        assert not bad.ok and good.ok
        assert len(service.dead_letters.dead("t0")) == 1
        assert not service.dead_letters.dead("t1")
        await service.stop()

    _run(scenario())


def test_acked_history_survives_dead_lettered_request():
    """A request that dies must not take previously acked writes with
    it: the failed key is indeterminate, everything else exact."""
    async def scenario():
        chaos = CrashSchedule(
            {("t0", o): 10 for o in range(3, 20)}, seed=0
        )
        service = _service(chaos, max_replay_attempts=2)
        await service.start()
        for k in (1, 2, 3):
            assert (await service.submit(
                "t0", Request("put", key=k, value=k * 5))).ok
        doomed = await service.submit("t0", Request("put", key=9, value=90))
        assert not doomed.ok
        recovered = service.verify_recovered()["t0"]
        for k in (1, 2, 3):
            assert recovered[k] == k * 5
        await service.stop()

    _run(scenario())
