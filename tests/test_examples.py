"""Smoke tests: every example script runs to completion and self-asserts.

Examples are executable documentation; each already asserts its own
correctness claims (exact recovery, delivery completeness), so running
them is a meaningful end-to-end test of the public API.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env={**os.environ, "PYTHONPATH": os.path.join(EXAMPLES, "..", "src")},
    )


@pytest.mark.parametrize(
    "script,args,expect",
    [
        ("quickstart.py", [], "matches crash-free run exactly: True"),
        ("compiler_explorer.py", ["--threshold", "64"], "rebuild r"),
        ("threshold_sweep.py", ["--scale", "0.25"], "sweet"),
        ("stale_read_demo.py", [], "STALE!"),
        ("persistent_logger.py", [], "At-least-once delivery"),
        ("kv_store.py", [], "crash-consistent under Capri"),
        (
            "crash_recovery_tour.py",
            ["--step", "1499", "--workload", "ssca2"],
            "recovered to the exact crash-free state",
        ),
    ],
)
def test_example_runs(script, args, expect):
    result = run_example(script, *args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expect in result.stdout, result.stdout[-2000:]
