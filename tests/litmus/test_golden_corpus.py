"""Golden litmus corpus: generator drift must fail loudly.

These pin the *exact* content hashes, shapes, and end-of-run allowed
outcome sets of the default corpus seeds (``repro litmus``'s
``DEFAULT_SEEDS``).  If any of them moves, you changed the generator
(or the oracle's commit/contribution rules) — every cached litmus
verdict in every user's cache directory silently misses, and any
baseline numbers quoted in EXPERIMENTS.md describe programs that no
longer exist.  That can be the right call, but it must be deliberate
(mirroring ``tests/deps/test_golden_fingerprint.py``):

1. re-pin ``GOLDEN_PROGRAMS`` / ``GOLDEN_OUTCOMES`` below by running::

       PYTHONPATH=src python - <<'PY'
       from repro.litmus.generate import litmus_corpus
       from repro.litmus.oracle import oracle_snapshots
       from repro.trace.record import capture_trace
       for p in litmus_corpus(range(6)):
           print(p.seed, p.content_hash(), p.harts,
                 p.metadata["regions"], p.instr_counts())
       for seed in (0, 1):
           p = litmus_corpus([seed])[0]
           t = capture_trace(p.module, p.spawns, quantum=p.quantum)
           s = oracle_snapshots(t)[-1]
           print(seed, {hex(a): sorted(v) for a, v in s.allowed.items()})
       PY

2. bump the ``schema`` field in ``LitmusVerdict.to_payload`` if cached
   verdicts are no longer comparable,
3. note the change in DESIGN.md and re-measure EXPERIMENTS.md.
"""

from repro.litmus.generate import generate_program, litmus_corpus
from repro.litmus.oracle import oracle_snapshots

#: seed -> (content_hash, harts, regions, per-hart instruction counts).
GOLDEN_PROGRAMS = {
    0: ("ff93c21ce79c6638", 3, 2, [41, 40, 40]),
    1: ("ae1dd8b1cb0e1d3e", 2, 2, [41, 40]),
    2: ("63ec31e75998b84f", 2, 3, [47, 45]),
    3: ("cb5320298e16d6ac", 2, 3, [46, 45]),
    4: ("8a4d20eec7b8b027", 3, 3, [48, 44, 44]),
    5: ("7cdb86325112fb31", 2, 2, [42, 38]),
}

#: seed -> end-of-run allowed outcome sets (the canonical trace's final
#: oracle snapshot): addr -> sorted allowed values.
GOLDEN_OUTCOMES = {
    0: {
        0x10000: [10210, 20200, 30200],
        0x10040: [10221, 20211, 30211],
        0x10080: [20482],
        0x100C0: [40483],
        0x10100: [60484],
    },
    1: {
        0x10000: [10200, 20200],
        0x10040: [10211, 20211],
        0x10080: [20482],
        0x100C0: [40483],
    },
}


class TestGoldenPrograms:
    def test_content_hashes_pinned(self):
        for seed, (digest, harts, regions, counts) in GOLDEN_PROGRAMS.items():
            p = generate_program(seed)
            assert p.content_hash() == digest, f"seed {seed} drifted"
            assert p.harts == harts
            assert p.metadata["regions"] == regions
            assert p.instr_counts() == counts

    def test_all_six_distinct(self):
        assert len({d for d, *_ in GOLDEN_PROGRAMS.values()}) == 6


class TestGoldenOutcomes:
    def test_end_of_run_allowed_sets_pinned(self):
        from repro.trace.record import capture_trace

        for seed, expected in GOLDEN_OUTCOMES.items():
            p = generate_program(seed)
            trace = capture_trace(p.module, p.spawns, quantum=p.quantum)
            snap = oracle_snapshots(trace)[-1]
            got = {addr: sorted(vals) for addr, vals in snap.allowed.items()}
            assert got == expected, f"seed {seed} outcome sets drifted"


class TestExplorerCampaignAgreement:
    """The two engines must agree: any outcome the exhaustive-crash
    campaign actually *observes* on the faithful protocol must be in the
    bounded explorer's interleaving-closed allowed union (the explorer
    over-approximates the canonical schedule, never under)."""

    def test_campaign_outcomes_within_explorer_union(self):
        from repro.arch.recovery import recover
        from repro.fault.campaign import CampaignConfig
        from repro.litmus.explore import explore_program
        from repro.litmus.matrix import litmus_params
        from repro.trace.record import capture_trace
        from repro.trace.replay import TraceCampaignSource

        for seed in (0, 1):
            p = generate_program(seed)
            explored = explore_program(p, max_schedules=60, pipeline_schedules=0)
            trace = capture_trace(p.module, p.spawns, quantum=p.quantum)
            config = CampaignConfig(
                threshold=32,
                quantum=p.quantum,
                params=litmus_params(),
                replay=True,
            )
            source = TraceCampaignSource(trace, config)
            stride = max(1, len(trace) // 24)
            for k in range(0, len(trace), stride):
                state, _machine, _facade = source.capture_at(k)
                if state is None:
                    break
                recovered = recover(state, p.module, strict=False)
                for addr in p.addrs:
                    got = recovered.nvm_image.get(addr, 0)
                    assert explored.allows(addr, got), (
                        f"seed {seed} crash {k}: recovered "
                        f"{hex(addr)}={got} outside the explorer union"
                    )

    def test_matrix_verdicts_clean_across_corpus(self):
        """The full acceptance gate at test scale: zero forbidden
        outcomes over the pinned corpus under the default regime."""
        from repro.litmus.matrix import run_litmus_program

        for p in litmus_corpus(range(3)):
            verdict = run_litmus_program(p, cache=None)
            assert verdict.ok, (p.seed, verdict.witness)
