"""Unit tests of the litmus outcome oracle, plus agreement with the
reference automaton's multi-writer contribution rule."""

from repro.litmus.generate import generate_program
from repro.litmus.oracle import (
    LitmusOracle,
    multi_writer_addrs,
    oracle_snapshots,
    per_core_last_writes,
)

A, B = 0x10000, 0x10040


class TestContributionRule:
    def test_untouched_is_baseline(self):
        o = LitmusOracle()
        assert o.allowed_for(A) == frozenset((0,))
        o.on_store(0, B, 5, 3)  # touching B records B's baseline, not A's
        assert o.baseline == {B: 3}
        assert o.allowed_for(A) == frozenset((0,))

    def test_open_store_contributes_rollback(self):
        o = LitmusOracle()
        o.on_store(0, A, 5, 0)
        # uncommitted: recovery rolls the store back to the undo word
        assert o.allowed_for(A) == frozenset((0,))
        o.on_store(0, A, 6, 5)
        # first-open undo wins, not the last one
        assert o.allowed_for(A) == frozenset((0,))

    def test_commit_moves_contribution_to_redo(self):
        o = LitmusOracle()
        o.on_store(0, A, 5, 0)
        o.on_boundary(0, 1, None)
        assert o.allowed_for(A) == frozenset((5,))
        o.on_store(0, A, 9, 5)
        # committed 5 is now this core's rollback target
        assert o.allowed_for(A) == frozenset((5,))
        o.on_boundary(0, 2, None)
        assert o.allowed_for(A) == frozenset((9,))

    def test_two_cores_contribute_independently(self):
        o = LitmusOracle()
        o.on_store(0, A, 5, 0)
        o.on_boundary(0, 1, None)
        o.on_store(1, A, 9, 5)
        o.on_boundary(1, 1, None)
        assert o.allowed_for(A) == frozenset((5, 9))

    def test_empty_region_commits_nothing(self):
        o = LitmusOracle()
        o.on_store(0, A, 5, 0)
        o.on_boundary(1, 3, None)  # *other* core's empty boundary
        assert o.cores[1].committed_region is None
        assert o.allowed_for(A) == frozenset((0,))

    def test_spawn_region_always_commits(self):
        o = LitmusOracle()
        o.on_boundary(0, -1, None)
        assert o.cores[0].committed_region == -1

    def test_staging_forces_commit(self):
        o = LitmusOracle()
        o.on_ckpt(0, 2, 77, 0x20000)
        o.on_boundary(0, 4, None)
        assert o.cores[0].committed_region == 4

    def test_snapshot_allows(self):
        o = LitmusOracle()
        o.on_store(0, A, 5, 0)
        o.on_boundary(0, 1, None)
        snap = o.snapshot()
        assert snap.allows(A, 5)
        assert not snap.allows(A, 0)
        assert snap.allows(B, 0)  # untouched addr: baseline only


class TestTraceDerivations:
    def test_snapshots_bracket_the_trace(self):
        from repro.trace.record import capture_trace

        p = generate_program(0)
        trace = capture_trace(p.module, p.spawns, quantum=p.quantum)
        snaps = oracle_snapshots(trace)
        assert len(snaps) == len(trace) + 1
        # before anything ran, everything is baseline
        assert snaps[0].allowed == {}
        assert snaps[0].committed_region == {}
        # allowed sets only ever cover touched addrs
        assert set(snaps[-1].allowed) <= set(p.addrs)
        # every hart committed its final explicit region by the end
        final_regions = set(snaps[-1].committed_region.values())
        assert final_regions == {p.metadata["regions"] - 1}

    def test_multi_writer_addrs_are_shared_only(self):
        from repro.trace.record import capture_trace

        p = generate_program(0)
        trace = capture_trace(p.module, p.spawns, quantum=p.quantum)
        mw = multi_writer_addrs(trace)
        assert set(mw) <= set(p.shared_addrs)
        assert mw, "hart 0 pins slot 0 — some word must be contended"
        finals = per_core_last_writes(trace)
        for addr in mw:
            assert len(finals[addr]) > 1

    def test_agrees_with_reference_automaton(self):
        """The oracle and `PersistencyModel.allowed_values` implement
        the same contribution rule from two codebases; drive both with
        one event stream and demand identical sets."""
        from repro.check.model import PersistencyModel
        from repro.trace.record import capture_trace

        p = generate_program(4)
        trace = capture_trace(p.module, p.spawns, quantum=p.quantum)
        oracle = LitmusOracle()
        model = PersistencyModel()

        class Bridge:
            def on_store(self, core, addr, value, old):
                model.machine_store(core, addr, value, old)

            def on_atomic(self, core, addr, value, old):
                model.machine_store(core, addr, value, old)

            def on_ckpt(self, core, reg, value, addr):
                model.machine_ckpt(core, addr, value)

            def on_boundary(self, core, region_id, continuation):
                model.machine_boundary(core, region_id, continuation)

            def __getattr__(self, name):
                if name.startswith("on_"):
                    return lambda *a, **k: None
                raise AttributeError(name)

        trace.deliver(oracle)
        trace.deliver(Bridge())
        for addr in p.addrs:
            assert set(oracle.allowed_for(addr)) == model.allowed_values(addr), (
                hex(addr)
            )
