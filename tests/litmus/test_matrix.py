"""The litmus crash matrix: judging, witnesses, caching, fingerprints."""

import pytest

from repro.arch.persistence import ProtocolMutations
from repro.litmus.generate import generate_program
from repro.litmus.matrix import (
    EXPECTED_MISSES,
    LitmusMutantsResult,
    LitmusVerdict,
    litmus_params,
    param_points,
    run_litmus_program,
    verdict_fingerprint,
)


@pytest.fixture(scope="module")
def program():
    return generate_program(1)  # 2 harts — the fastest corpus member


class TestFingerprint:
    def test_sensitive_to_inputs(self, program):
        base = verdict_fingerprint(program, 32, litmus_params(), None)
        other_program = generate_program(2)
        assert verdict_fingerprint(other_program, 32, litmus_params(), None) != base
        assert verdict_fingerprint(program, 64, litmus_params(), None) != base
        assert (
            verdict_fingerprint(program, 32, litmus_params(throttled=False), None)
            != base
        )
        assert (
            verdict_fingerprint(
                program, 32, litmus_params(), ProtocolMutations.single("skip_undo_log")
            )
            != base
        )
        assert (
            verdict_fingerprint(program, 32, litmus_params(), None, check=False)
            != base
        )

    def test_stable_across_calls(self, program):
        again = generate_program(1)
        assert verdict_fingerprint(program, 32, litmus_params(), None) == (
            verdict_fingerprint(again, 32, litmus_params(), None)
        )

    def test_param_points_are_two_regimes(self):
        throttled, fast = param_points()
        assert throttled.nvm_write_parallelism < fast.nvm_write_parallelism


class TestUnmutatedMatrix:
    def test_faithful_protocol_has_no_forbidden_outcomes(self, program):
        verdict = run_litmus_program(program, cache=None)
        assert verdict.ok
        assert verdict.forbidden == 0
        assert verdict.witness is None
        # one crash point per observer event, several checks per point
        assert verdict.crash_points > 100
        assert verdict.checks > verdict.crash_points
        assert verdict.mutations == ()
        assert verdict.content_hash == program.content_hash()

    def test_payload_round_trip(self, program):
        verdict = run_litmus_program(program, cache=None)
        again = LitmusVerdict.from_payload(verdict.to_payload())
        assert again.cached
        assert (again.name, again.forbidden, again.checks) == (
            verdict.name,
            verdict.forbidden,
            verdict.checks,
        )


class TestTeeth:
    def test_planted_mutant_yields_confirmed_minimal_witness(self, program):
        verdict = run_litmus_program(
            program,
            mutations=ProtocolMutations.single("skip_undo_log"),
            cache=None,
            stop_on_forbidden=True,
        )
        assert verdict.forbidden >= 1
        w = verdict.witness
        assert w is not None
        assert w.mutations == ("skip_undo_log",)
        assert w.confirmed, "direct re-run must reproduce the forbidden outcome"
        assert w.failures
        # the sweep ascends and stops on the first hit: the witness
        # crash index is the event-minimal forbidden point
        assert 0 <= w.event_index < verdict.crash_points
        assert verdict.forbidden == 1

    def test_recovery_mutant_detected(self, program):
        verdict = run_litmus_program(
            program,
            mutations=ProtocolMutations.single("recovery_skip_redo"),
            cache=None,
            stop_on_forbidden=True,
        )
        assert verdict.forbidden >= 1


class TestCaching:
    def test_warm_path_round_trips(self, program, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cold = run_litmus_program(program)
        assert not cold.cached
        warm = run_litmus_program(program)
        assert warm.cached
        assert (warm.forbidden, warm.checks, warm.crash_points) == (
            cold.forbidden,
            cold.checks,
            cold.crash_points,
        )

    def test_deps_token_stored(self, program, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.sweep.cache import resolve_cache

        run_litmus_program(program)
        store = resolve_cache("default")
        fp = verdict_fingerprint(program, 32, litmus_params(), None)
        payload = store.get(fp, kind="litmus")
        assert payload is not None
        assert "litmus" in payload["deps"]


class TestMutantsResult:
    def test_ok_respects_expected_miss_budget(self):
        detected = {m: True for m in ("a", "b", "c", "d")}
        r = LitmusMutantsResult(
            programs=1,
            control_forbidden=0,
            detected=dict(detected),
            expected_misses=("c",),
        )
        assert r.ok  # everything caught beats the budget
        detected["c"] = False
        r2 = LitmusMutantsResult(
            programs=1,
            control_forbidden=0,
            detected=dict(detected),
            expected_misses=("c",),
        )
        assert r2.ok  # the one miss is the budgeted one
        detected["b"] = False
        r3 = LitmusMutantsResult(
            programs=1,
            control_forbidden=0,
            detected=dict(detected),
            expected_misses=("c",),
        )
        assert not r3.ok  # unbudgeted miss

    def test_control_forbidden_fails_ok(self):
        r = LitmusMutantsResult(
            programs=1, control_forbidden=1, detected={"a": True}
        )
        assert not r.ok

    def test_expected_misses_are_the_invalidation_pair(self):
        assert set(EXPECTED_MISSES) == {
            "drop_invalidation",
            "invalidate_everything",
        }
