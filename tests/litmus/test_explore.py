"""Bounded-exhaustive explorer: schedule algebra + spec/pipeline layers."""

import pytest

from repro.litmus.explore import (
    _complete_schedule,
    _multiset_permutations,
    explore_program,
    round_robin_schedule,
    universe_size,
)
from repro.litmus.generate import generate_program


class TestScheduleAlgebra:
    def test_universe_size_is_multinomial(self):
        assert universe_size([2, 2]) == 6
        assert universe_size([1, 1, 1]) == 6
        assert universe_size([3]) == 1
        assert universe_size([2, 1]) == 3

    def test_multiset_permutations_exact(self):
        perms = list(_multiset_permutations([2, 1]))
        assert sorted(perms) == [(0, 0, 1), (0, 1, 0), (1, 0, 0)]
        assert len(set(perms)) == len(perms)

    def test_multiset_permutations_count_matches_size(self):
        counts = [3, 2, 2]
        assert len(list(_multiset_permutations(counts))) == universe_size(counts)

    def test_round_robin_schedule(self):
        assert round_robin_schedule([3, 2], 2) == (0, 0, 1, 1, 0)

    def test_complete_schedule_preserves_counts(self):
        counts = [4, 3]
        completed = _complete_schedule((1, 1, 0), counts, 2)
        assert completed[:3] == (1, 1, 0)
        assert [completed.count(h) for h in range(2)] == counts


class TestExplore:
    def test_step_limited_exploration_is_exhaustive(self):
        p = generate_program(1)  # 2 harts
        r = explore_program(p, max_schedules=20, step_limit=2, pipeline_schedules=2)
        assert r.exhaustive
        assert r.schedule_universe == universe_size([2, 2]) == 6
        assert r.schedules_run == 6
        assert r.pipeline_violations == 0, r.pipeline_kinds

    def test_sampled_when_universe_explodes(self):
        p = generate_program(1)
        r = explore_program(p, max_schedules=10, pipeline_schedules=0)
        assert not r.exhaustive
        assert r.schedules_run == 10
        assert r.schedule_universe > 10**20  # C(81, 41)-sized

    def test_sampling_is_deterministic(self):
        p = generate_program(2)
        a = explore_program(p, max_schedules=8, pipeline_schedules=0)
        b = explore_program(p, max_schedules=8, pipeline_schedules=0)
        assert a.allowed == b.allowed

    def test_allowed_union_covers_canonical_schedule(self):
        """Every outcome the canonical (round-robin) execution's oracle
        allows at any prefix must be in the explorer's union."""
        from repro.litmus.oracle import oracle_snapshots
        from repro.trace.record import capture_trace

        p = generate_program(1)
        r = explore_program(p, max_schedules=40, pipeline_schedules=0)
        trace = capture_trace(p.module, p.spawns, quantum=p.quantum)
        for snap in oracle_snapshots(trace):
            for addr, allowed in snap.allowed.items():
                for value in allowed:
                    assert r.allows(addr, value), (hex(addr), value)

    def test_pipeline_layer_is_silent_on_faithful_protocol(self):
        p = generate_program(0)
        r = explore_program(p, max_schedules=6, step_limit=1, pipeline_schedules=3)
        assert r.pipeline_schedules == 3
        assert r.pipeline_violations == 0, r.pipeline_kinds
