"""The litmus generator's structural guarantees (generate.py docstring)."""

import pytest

from repro.ir.instructions import CheckpointStore, RegionBoundary, Ret, Store
from repro.ir.values import Imm
from repro.litmus.generate import (
    LITMUS_QUANTUM,
    generate_program,
    litmus_corpus,
    private_addr,
    shared_addr,
    value_tag,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        a, b = generate_program(17), generate_program(17)
        assert a.content_hash() == b.content_hash()
        assert a.text() == b.text()
        assert a.spawns == b.spawns

    def test_different_seeds_differ(self):
        hashes = {generate_program(s).content_hash() for s in range(20)}
        assert len(hashes) > 10  # collisions only via identical rng draws

    def test_corpus_is_orderwise(self):
        corpus = litmus_corpus((3, 1))
        assert [p.seed for p in corpus] == [3, 1]


class TestStructure:
    @pytest.mark.parametrize("seed", range(8))
    def test_shape_invariants(self, seed):
        p = generate_program(seed)
        assert p.harts in (2, 3)
        assert len(p.spawns) == p.harts
        assert p.quantum == LITMUS_QUANTUM
        regions = p.metadata["regions"]
        assert regions in (2, 3)
        for name, args in p.spawns:
            func = p.module.functions[name]
            # straight-line: exactly one block, ending in ret
            assert len(func.blocks) == 1
            assert isinstance(func.entry.instrs[-1], Ret)
            boundaries = [
                i for i in func.entry.instrs if isinstance(i, RegionBoundary)
            ]
            assert len(boundaries) == regions
            ckpts = [
                i for i in func.entry.instrs if isinstance(i, CheckpointStore)
            ]
            assert len(ckpts) == regions

    @pytest.mark.parametrize("seed", range(8))
    def test_stores_are_immediate_and_tagged(self, seed):
        p = generate_program(seed)
        seen = set()
        for name, _ in p.spawns:
            for i in p.module.functions[name].entry.instrs:
                if isinstance(i, Store) and isinstance(i.value, Imm):
                    assert isinstance(i.addr, Imm)
                    assert i.addr.value in p.shared_addrs
                    # unique tags: collision-free allowed-set membership
                    assert i.value.value not in seen
                    seen.add(i.value.value)

    def test_shared_words_are_contended(self):
        p = generate_program(0)
        # hart 0 pins slot 0 every region; at least one shared word is
        # written by more than one hart for every generated program.
        writers = {}
        for h, (name, _) in enumerate(p.spawns):
            for i in p.module.functions[name].entry.instrs:
                if isinstance(i, Store) and isinstance(i.value, Imm):
                    writers.setdefault(i.addr.value, set()).add(h)
        assert any(len(w) > 1 for w in writers.values())

    def test_address_layout_is_line_disjoint(self):
        assert shared_addr(1) - shared_addr(0) == 64
        assert private_addr(0) > shared_addr(1)
        p = generate_program(2)
        assert len(set(p.addrs)) == len(p.addrs)

    def test_value_tags_unique_across_space(self):
        tags = {
            value_tag(h, r, s)
            for h in range(3)
            for r in range(4)
            for s in range(100)
        }
        assert len(tags) == 3 * 4 * 100


class TestSeedArgumentParsing:
    """The CLI's --seeds grammar: comma lists with a-b ranges."""

    def test_lists_ranges_and_mixtures(self):
        from repro.litmus.cli import DEFAULT_SEEDS, _parse_seeds

        assert _parse_seeds("0,1,2", None) == [0, 1, 2]
        assert _parse_seeds("0-5", None) == [0, 1, 2, 3, 4, 5]
        assert _parse_seeds("0,3,5-8", None) == [0, 3, 5, 6, 7, 8]
        assert _parse_seeds(" 1 , 4-4 ", None) == [1, 4]
        assert _parse_seeds(None, 2) == [0, 1]
        assert _parse_seeds(None, None) == list(DEFAULT_SEEDS)
