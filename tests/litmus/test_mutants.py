"""Litmus teeth: the planted-mutant sweep via the public entry point.

The full 12-mutant × 6-seed × 2-regime sweep lives in CI
(`litmus-smoke`); here a representative mutant subset keeps the tier-1
suite fast while still proving the sweep machinery end to end:
detection across both mutation layers (pipeline + recovery), witness
plumbing, and the expected-miss budget.
"""

from repro.litmus.generate import litmus_corpus
from repro.litmus.matrix import EXPECTED_MISSES, run_litmus_mutants

#: One mutant per detection mechanism: undo corruption (pipeline,
#: value-visible), drain reordering (pipeline, only the order component
#: sees it), recovery-path redo skip, and one budgeted expected miss.
SUBSET = (
    "skip_undo_log",
    "reorder_phase2",
    "recovery_skip_redo",
    "drop_invalidation",
)


class TestMutantSweep:
    def test_subset_sweep_meets_budget(self):
        programs = litmus_corpus((1,))
        result = run_litmus_mutants(programs, mutants=list(SUBSET), cache=None)
        assert result.control_forbidden == 0
        assert result.detected["skip_undo_log"]
        assert result.detected["reorder_phase2"]
        assert result.detected["recovery_skip_redo"]
        # the invalidation mutant needs regular-path writebacks litmus
        # runs never produce — the budgeted miss
        assert not result.detected["drop_invalidation"]
        assert result.ok
        assert result.detection_rate == (3, 4)

    def test_witnesses_are_confirmed_and_carry_the_mutation(self):
        programs = litmus_corpus((1,))
        result = run_litmus_mutants(
            programs, mutants=["skip_undo_log"], cache=None
        )
        w = result.witnesses["skip_undo_log"]
        assert w["confirmed"] is True
        assert w["mutations"] == ["skip_undo_log"]
        assert w["failures"]

    def test_expected_misses_constant(self):
        assert EXPECTED_MISSES == ("drop_invalidation", "invalidate_everything")
