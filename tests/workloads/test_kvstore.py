"""The kv_store workload: table semantics, especially tombstone probing."""

import pytest

from repro.isa import Machine
from repro.workloads.kvstore import (
    EMPTY,
    TOMBSTONE,
    build_kv_service_module,
    build_kv_store,
    dump_table,
)


@pytest.fixture(scope="module")
def built():
    return build_kv_service_module(slots=16)  # small table: chains collide


def _machine(built):
    module, _ = built
    return Machine(module)


def _op(machine, fn, args):
    machine.harts.clear()
    machine.spawn(fn, args)
    machine.run()


def _table(machine, built):
    return dump_table(machine.memory, built[1])


def test_put_get_delete_roundtrip(built):
    m = _machine(built)
    _op(m, "kv_put", [5, 50])
    _op(m, "kv_put", [6, 60])
    _op(m, "kv_delete", [5])
    assert _table(m, built) == {6: 60}


def test_overwrite_keeps_single_slot(built):
    m = _machine(built)
    _op(m, "kv_put", [9, 1])
    _op(m, "kv_put", [9, 2])
    _op(m, "kv_put", [9, 3])
    layout = built[1]
    slots_with_key = [
        i for i in range(layout.slots)
        if m.memory.get(layout.slot_addr(i), 0) == 9
    ]
    assert len(slots_with_key) == 1
    assert _table(m, built) == {9: 3}


def test_put_past_tombstone_finds_existing_key(built):
    """Regression: a tombstone in a key's probe chain must not cause a
    re-put of that key to insert a duplicate (the loadgen oracle caught
    exactly this as a stale acked value after a colliding delete)."""
    m = _machine(built)
    layout = built[1]
    # Fill a chain: with 16 slots, keys colliding mod 16 probe linearly.
    # Find three keys that land on the same home slot.
    def home(key):
        h = (key * 0x9E3779B1) & 0xFFFFFFFFFFFFFFFF
        return (h ^ (h >> 16)) & (layout.slots - 1)

    base = home(1)
    chain = [k for k in range(1, 200) if home(k) == base][:3]
    assert len(chain) == 3
    a, b, c = chain
    _op(m, "kv_put", [a, 100])
    _op(m, "kv_put", [b, 200])  # probes past a's slot
    _op(m, "kv_put", [c, 300])  # probes past both
    _op(m, "kv_delete", [a])    # tombstone at the chain head
    _op(m, "kv_put", [c, 999])  # must UPDATE c, not insert at the tombstone
    table = _table(m, built)
    assert table[c] == 999
    assert a not in table
    slots_with_c = [
        i for i in range(layout.slots)
        if m.memory.get(layout.slot_addr(i), 0) == c
    ]
    assert len(slots_with_c) == 1, "duplicate slot for an existing key"
    # And a later delete removes c for good (no resurrection).
    _op(m, "kv_delete", [c])
    assert c not in _table(m, built)


def test_tombstone_slots_are_reused(built):
    m = _machine(built)
    layout = built[1]
    _op(m, "kv_put", [3, 30])
    _op(m, "kv_delete", [3])
    _op(m, "kv_put", [3, 31])
    occupied = [
        i for i in range(layout.slots)
        if m.memory.get(layout.slot_addr(i), 0) not in (EMPTY, TOMBSTONE)
    ]
    assert len(occupied) == 1  # the tombstone was reclaimed
    assert _table(m, built) == {3: 31}


def test_table_full_returns_zero():
    built = build_kv_service_module(slots=4)
    m = _machine(built)
    keys = [1, 2, 3, 4, 5]
    results = []
    for key in keys:
        m.harts.clear()
        m.spawn("kv_put", [key, key])
        m.run()
        # kv_put's return value lands in the hart's return register; the
        # table dump is the observable we trust here instead.
    table = _table(m, built)
    assert len(table) == 4  # fifth put found no slot


def test_randomized_differential_against_dict():
    import random

    built = build_kv_service_module(slots=32)
    m = _machine(built)
    rng = random.Random(1234)
    model = {}
    for _ in range(300):
        key = rng.randrange(1, 25)
        action = rng.random()
        if action < 0.5:
            value = rng.randrange(1, 1 << 20)
            _op(m, "kv_put", [key, value])
            model[key] = value
        else:
            _op(m, "kv_delete", [key])
            model.pop(key, None)
        assert _table(m, built) == model


def test_batch_driver_runs_and_populates():
    module, spawns = build_kv_store(scale=0.5)
    machine = Machine(module)
    for fn, args in spawns:
        machine.spawn(fn, args)
    machine.run()
    # The driver issues a put-heavy mix over keys 1..64.
    from repro.workloads.kvstore import KvLayout, TABLE_SLOTS

    layout = KvLayout(
        table=module.symbols["table"], stats=module.symbols["stats"],
        result=module.symbols["result"], slots=TABLE_SLOTS,
    )
    table = dump_table(machine.memory, layout)
    assert table and all(1 <= k <= 64 for k in table)
