"""Tests for the benchmark registry and the Figure 8/9 suite lists."""

import pytest

from repro.workloads import (
    SUITES,
    all_workloads,
    get_workload,
    suite_workloads,
    workload_names,
)


class TestSuiteLists:
    def test_paper_suite_membership(self):
        assert SUITES["cpu2017"] == [
            "505.mcf_r",
            "531.deepsjeng_r",
            "541.leela_r",
            "508.namd_r",
            "519.lbm_r",
        ]
        assert SUITES["stamp"] == [
            "genome",
            "intruder",
            "labyrinth",
            "ssca2",
            "vacation",
        ]
        assert SUITES["splash3"] == [
            "barnes",
            "fmm",
            "ocean",
            "radiosity",
            "raytrace",
            "volrend",
            "water-nsquared",
            "water-spatial",
            "radix",
        ]

    def test_counts_match_paper(self):
        assert len(SUITES["cpu2017"]) == 5
        assert len(SUITES["stamp"]) == 5
        assert len(SUITES["splash3"]) == 9

    def test_all_names_resolvable(self):
        for name in workload_names():
            w = get_workload(name)
            assert w.name == name

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nonexistent")

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown suite"):
            suite_workloads("nonexistent")

    def test_suite_assignment(self):
        assert get_workload("ssca2").suite == "stamp"
        assert get_workload("radix").suite == "splash3"
        assert get_workload("oskernel").suite == "os"

    def test_splash_is_multithreaded(self):
        for w in suite_workloads("splash3"):
            assert w.multithreaded, w.name

    def test_spec_and_stamp_single_threaded(self):
        for suite in ["cpu2017", "stamp"]:
            for w in suite_workloads(suite):
                assert not w.multithreaded, w.name


class TestBuild:
    @pytest.mark.parametrize("name", workload_names())
    def test_builds_and_verifies(self, name):
        from repro.ir import verify_module

        module, spawns = get_workload(name).build(scale=0.1)
        verify_module(module)
        assert spawns
        for func_name, args in spawns:
            func = module.functions[func_name]
            assert func.num_params == len(args)

    @pytest.mark.parametrize("name", workload_names())
    def test_runs_to_completion(self, name):
        from repro.isa import Machine

        module, spawns = get_workload(name).build(scale=0.1)
        machine = Machine(module)
        for func_name, args in spawns:
            machine.spawn(func_name, args)
        retired = machine.run(max_steps=5_000_000)
        assert retired > 0

    @pytest.mark.parametrize("name", workload_names())
    def test_deterministic(self, name):
        from repro.ir.module import is_ckpt_addr
        from repro.isa import Machine

        results = []
        for _ in range(2):
            module, spawns = get_workload(name).build(scale=0.1)
            machine = Machine(module)
            for func_name, args in spawns:
                machine.spawn(func_name, args)
            machine.run()
            data = tuple(
                sorted(
                    (a, v)
                    for a, v in machine.memory.items()
                    if not is_ckpt_addr(a)
                )
            )
            results.append(data)
        assert results[0] == results[1]

    def test_scale_increases_work(self):
        from repro.isa import Machine

        work = {}
        for scale in [0.2, 1.0]:
            module, spawns = get_workload("519.lbm_r").build(scale=scale)
            machine = Machine(module)
            for func_name, args in spawns:
                machine.spawn(func_name, args)
            work[scale] = machine.run()
        assert work[1.0] > work[0.2] * 2

    def test_splash_spawn_count(self):
        from repro.workloads.splash import SPLASH_THREADS

        _, spawns = get_workload("barnes").build(scale=0.1)
        assert len(spawns) == SPLASH_THREADS

    def test_all_workloads_listing(self):
        names = [w.name for w in all_workloads()]
        assert names == workload_names()


class TestCompilability:
    """Every stand-in must survive the full Capri pipeline at every
    figure threshold — the whole-system claim (Section 2.2)."""

    @pytest.mark.parametrize("name", workload_names())
    def test_full_pipeline_all_thresholds(self, name):
        from repro.compiler import CapriCompiler, OptConfig
        from repro.ir import verify_module

        module, _ = get_workload(name).build(scale=0.1)
        for threshold in [32, 256]:
            out = CapriCompiler(OptConfig.licm(threshold)).compile(module)
            verify_module(out.module)
            assert out.function_stats

    @pytest.mark.parametrize("name", ["508.namd_r", "volrend", "genome"])
    def test_capri_preserves_results(self, name):
        from repro.compiler import CapriCompiler, OptConfig
        from repro.ir.module import is_ckpt_addr
        from repro.isa import Machine

        module, spawns = get_workload(name).build(scale=0.1)

        def run(mod):
            machine = Machine(mod)
            for fn, args in spawns:
                machine.spawn(fn, args)
            machine.run()
            return {
                a: v for a, v in machine.memory.items() if not is_ckpt_addr(a)
            }

        base = run(module)
        capri = run(CapriCompiler(OptConfig.licm(64)).compile(module).module)
        assert base == capri
