"""Shared fixtures for the trace subsystem tests.

One captured workload per module scope — capture is the expensive part,
and every test here treats the trace as immutable.
"""

import pytest

from repro.compiler import CapriCompiler, OptConfig
from repro.trace.record import capture_trace
from repro.workloads import get_workload


@pytest.fixture(scope="session")
def captured():
    """(compiled module, spawns, trace) for a small genome run at the
    matrix threshold."""
    module, spawns = get_workload("genome").build(0.1)
    compiled = CapriCompiler(OptConfig.licm(32)).compile(module).module
    trace = capture_trace(compiled, spawns, quantum=32)
    return compiled, spawns, trace
