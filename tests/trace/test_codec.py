"""Codec properties: bit-identical round trips, version skew as a clean
miss, corruption quarantined through the ResultCache contract."""

import json

import pytest

from repro.sweep.cache import ResultCache
from repro.trace.codec import (
    TRACE_CACHE_KIND,
    TRACE_CODEC_VERSION,
    TraceDecodeError,
    TraceVersionError,
    decode_trace,
    encode_trace,
    load_trace,
    store_trace,
)


def test_round_trip_is_bit_identical(captured):
    _, _, trace = captured
    back = decode_trace(encode_trace(trace))
    assert len(back) == len(trace)
    for col in ("kinds", "cores", "a", "b", "c"):
        assert getattr(back, col) == getattr(trace, col), col
        assert getattr(back, col).typecode == getattr(trace, col).typecode
    assert back.retire_names == trace.retire_names
    assert back.continuations == trace.continuations
    assert back.num_cores == trace.num_cores
    assert back.initial_data == trace.initial_data
    assert back.final_data == trace.final_data
    assert back.io_log == trace.io_log
    assert back.total_retired == trace.total_retired
    for i in range(len(trace)):
        assert back.event(i) == trace.event(i)


def test_payload_is_json_transportable(captured):
    """The cache stores JSON objects; the payload must survive a
    dump/load cycle unchanged (that's how it reaches disk)."""
    _, _, trace = captured
    payload = encode_trace(trace)
    back = decode_trace(json.loads(json.dumps(payload)))
    assert back.kinds == trace.kinds
    assert back.io_log == trace.io_log


def test_version_skew_is_rejected_as_version_error(captured):
    _, _, trace = captured
    payload = encode_trace(trace)
    payload["version"] = TRACE_CODEC_VERSION + 1
    with pytest.raises(TraceVersionError):
        decode_trace(payload)
    payload["version"] = None
    with pytest.raises(TraceVersionError):
        decode_trace(payload)


def test_checksum_catches_column_corruption(captured):
    _, _, trace = captured
    payload = encode_trace(trace)
    tampered = json.loads(json.dumps(payload))
    import base64

    raw = bytearray(base64.b64decode(tampered["columns"]["b"]))
    raw[len(raw) // 2] ^= 0xFF
    tampered["columns"]["b"] = base64.b64encode(bytes(raw)).decode("ascii")
    with pytest.raises(TraceDecodeError):
        decode_trace(tampered)


def test_checksum_catches_side_table_corruption(captured):
    _, _, trace = captured
    payload = encode_trace(trace)
    tampered = json.loads(json.dumps(payload))
    tampered["total_retired"] = trace.total_retired + 1
    with pytest.raises(TraceDecodeError):
        decode_trace(tampered)


def test_truncated_column_is_decode_error(captured):
    _, _, trace = captured
    payload = encode_trace(trace)
    import base64

    raw = base64.b64decode(payload["columns"]["kinds"])
    payload["columns"]["kinds"] = base64.b64encode(raw[:-1]).decode("ascii")
    with pytest.raises(TraceDecodeError):
        decode_trace(payload)


def test_malformed_payload_is_decode_error(captured):
    _, _, trace = captured
    payload = encode_trace(trace)
    del payload["columns"]
    with pytest.raises(TraceDecodeError):
        decode_trace(payload)


def test_store_and_load_through_result_cache(tmp_path, captured):
    _, _, trace = captured
    store = ResultCache(tmp_path)
    path = store_trace(store, "f" * 16, trace)
    assert path is not None and path.exists()
    back = load_trace(store, "f" * 16)
    assert back is not None
    assert back.kinds == trace.kinds
    assert back.final_data == trace.final_data
    assert load_trace(store, "0" * 16) is None  # plain miss


def test_version_skew_in_cache_is_clean_miss(tmp_path, captured):
    """A trace written by another codec version must read as a miss —
    recapture-and-overwrite, not quarantine, not a crash."""
    _, _, trace = captured
    store = ResultCache(tmp_path)
    payload = encode_trace(trace)
    payload["version"] = TRACE_CODEC_VERSION + 1
    store.put("a" * 16, payload, kind=TRACE_CACHE_KIND)
    assert load_trace(store, "a" * 16) is None
    assert store.quarantined == 0
    # The slot stays writable: a recapture overwrites in place.
    store_trace(store, "a" * 16, trace)
    assert load_trace(store, "a" * 16) is not None


def test_corrupt_cache_entry_is_quarantined(tmp_path, captured):
    """Checksum failure mirrors ResultCache's torn-entry handling: the
    entry is renamed aside, counted, and reads as a miss."""
    _, _, trace = captured
    store = ResultCache(tmp_path)
    fp = "b" * 16
    path = store_trace(store, fp, trace)
    entry = json.loads(path.read_text())
    entry["total_retired"] = trace.total_retired + 7
    path.write_text(json.dumps(entry))

    assert load_trace(store, fp) is None
    assert store.quarantined == 1
    assert not path.exists()
    assert path.with_suffix(path.suffix + ".corrupt").exists()
    # Quarantine freed the slot.
    store_trace(store, fp, trace)
    assert load_trace(store, fp) is not None


def test_store_trace_without_cache_is_noop(captured):
    _, _, trace = captured
    assert store_trace(None, "c" * 16, trace) is None
    assert load_trace(None, "c" * 16) is None
