"""Campaign integration: replay mode must change wall-clock, never
verdicts — single-crash sweeps, fault models, checker verdicts, nested
crashes, and the mutant matrix all compare outcome-for-outcome."""

import pytest

from repro.fault.campaign import CampaignConfig, run_workload_campaign


def _verdicts(result):
    return [
        (o.event_index, o.status, o.detail, o.injected, o.findings,
         tuple(o.chain), o.quarantined_entries, tuple(o.fenced_cores),
         o.tainted_addrs)
        for o in result.outcomes
    ]


def _run_both(config_kwargs, workload="genome", scale=0.08):
    interpreted = run_workload_campaign(
        workload,
        CampaignConfig(replay=False, **config_kwargs),
        scale=scale,
        cache=None,
    )
    replayed = run_workload_campaign(
        workload,
        CampaignConfig(replay=True, **config_kwargs),
        scale=scale,
        cache=None,
    )
    assert interpreted.total_events == replayed.total_events
    assert _verdicts(interpreted) == _verdicts(replayed)
    assert interpreted.counts() == replayed.counts()
    assert interpreted.ok == replayed.ok
    return interpreted, replayed


def test_clean_sweep_verdicts_identical():
    _run_both(dict(threshold=32, sample=24, minimize=False))


def test_checked_sweep_verdicts_identical():
    _run_both(dict(threshold=32, sample=16, check=True, minimize=False))


def test_fault_model_verdicts_and_minimizer_identical():
    interpreted, replayed = _run_both(
        dict(
            threshold=32,
            sample=12,
            models=("clean", "torn-boundary"),
            strict=False,
            minimize=True,
        )
    )
    a, b = interpreted.minimized, replayed.minimized
    assert (a is None) == (b is None)
    if a is not None:
        assert (a.event_index, a.models) == (b.event_index, b.models)


def test_multi_crash_verdicts_identical():
    _run_both(
        dict(
            threshold=32,
            sample=6,
            depth=2,
            secondary_sample=4,
            minimize=False,
            check=True,
        )
    )


def test_exhaustive_sweep_single_pass():
    """Exhaustive ascending sweeps are the point of the cursor: the
    whole campaign must complete on one replay system (zero rebuilds)."""
    from repro.compiler import CapriCompiler, OptConfig
    from repro.fault.campaign import run_campaign
    from repro.trace.record import capture_trace
    from repro.trace.replay import TraceCampaignSource, golden_from_trace
    from repro.workloads import get_workload

    config = CampaignConfig(threshold=32, minimize=False)
    module, spawns = get_workload("genome").build(0.05)
    module = (
        CapriCompiler(OptConfig.licm(config.threshold)).compile(module).module
    )
    trace = capture_trace(
        module, spawns, quantum=config.quantum, max_steps=config.max_steps
    )
    source = TraceCampaignSource(trace, config)
    result = run_campaign(
        module,
        spawns,
        config,
        name="genome",
        golden=golden_from_trace(trace),
        source=source,
    )
    assert result.ok
    assert len(result.outcomes) == len(trace)
    assert source.rebuilds == 0


def test_harness_fault_campaign_inherits_replay():
    from repro.eval.harness import EvalHarness

    h_interp = EvalHarness(scale=0.05)
    h_replay = EvalHarness(scale=0.05, trace=True)
    config = dict(threshold=32, sample=10, minimize=False)
    a = h_interp.fault_campaign("genome", CampaignConfig(**config))
    b = h_replay.fault_campaign("genome", CampaignConfig(**config))
    assert _verdicts(a) == _verdicts(b)


def test_mutant_matrix_identical_under_replay():
    """One functional capture per workload must reproduce the exact
    detection matrix: same detected set, same taxonomy classes, same
    clean baselines."""
    from repro.check.mutants import run_mutant_matrix

    mutants = ["skip_undo_log", "recovery_skip_redo"]
    interpreted = run_mutant_matrix(
        workloads=["genome"], scale=0.3, threshold=32, mutants=mutants
    )
    replayed = run_mutant_matrix(
        workloads=["genome"],
        scale=0.3,
        threshold=32,
        mutants=mutants,
        replay=True,
    )
    assert interpreted.ok and replayed.ok

    def rows(result):
        return [
            (o.mutant, o.workload, o.detected, tuple(sorted(o.kinds)))
            for o in result.outcomes
        ]

    assert rows(interpreted) == rows(replayed)
    for name, report in interpreted.baseline_reports.items():
        other = replayed.baseline_reports[name]
        assert report.ok == other.ok
