"""Replay equivalence: the batched columnar replay must be observably
identical to re-interpreting the program — metrics, crash states, golden
oracle, and the RunSpec `trace` mode."""

import dataclasses

import pytest

from repro.arch.crash import CrashPlan, run_until_crash
from repro.arch.system import run_workload
from repro.fault.oracle import golden_run
from repro.trace.replay import (
    TraceCursor,
    golden_from_trace,
    replay_metrics,
    replay_until_crash,
)


def _canon_entries(entries):
    return [
        (e.region_seq, e.addr, e.undo, e.redo, e.redo_valid, e.is_boundary)
        for e in entries
    ]


def _canon_state(state):
    return {
        "nvm": dict(state.nvm_image),
        "entries": [_canon_entries(es) for es in state.core_entries],
        "cores": state.num_cores,
        "pc": dict(state.pc_checkpoints),
        "wpq": list(state.wpq),
        "shadow": dict(state.ckpt_shadow),
    }


def test_crash_free_replay_metrics_bit_identical(captured):
    module, spawns, trace = captured
    interpreted, _ = run_workload(module, spawns, threshold=32, quantum=32)
    replayed = replay_metrics(trace, threshold=32)
    for f in dataclasses.fields(interpreted):
        assert getattr(interpreted, f.name) == getattr(replayed, f.name), (
            f.name
        )


def test_checked_replay_is_clean(captured):
    _, _, trace = captured
    # A clean workload must replay clean under the online checker; a
    # violation here would raise PersistencyViolationError.
    replay_metrics(trace, threshold=32, check=True)


def test_golden_from_trace_matches_golden_run(captured):
    module, spawns, trace = captured
    golden = golden_run(module, spawns, quantum=32)
    from_trace = golden_from_trace(trace)
    assert from_trace.data == golden.data
    assert from_trace.io_log == golden.io_log
    assert from_trace.total_events == golden.total_events


def test_replay_until_crash_matches_interpreted(captured):
    module, spawns, trace = captured
    n = len(trace)
    for k in (0, 1, n // 3, n - 1):
        interpreted = run_until_crash(
            module, spawns, CrashPlan(k), threshold=32, quantum=32
        )
        replayed = replay_until_crash(trace, CrashPlan(k), threshold=32)
        assert interpreted is not None and replayed is not None
        assert _canon_state(interpreted) == _canon_state(replayed), k


def test_replay_until_crash_past_end_returns_none(captured):
    _, _, trace = captured
    assert replay_until_crash(trace, CrashPlan(len(trace)), threshold=32) is None


def test_cursor_single_pass_matches_fresh_replays(captured):
    """Ascending capture_at calls on one cursor must equal a fresh
    replay per point — the single-pass optimisation is invisible."""
    _, _, trace = captured
    n = len(trace)
    points = sorted({1, n // 4, n // 2, (3 * n) // 4, n - 1})
    cursor = TraceCursor(trace, threshold=32)
    for k in points:
        state, machine, checker = cursor.capture_at(k)
        fresh = replay_until_crash(trace, CrashPlan(k), threshold=32)
        assert _canon_state(state) == _canon_state(fresh), k
        assert checker is None
    assert cursor.rebuilds == 0


def test_cursor_rewind_rebuilds_and_stays_correct(captured):
    _, _, trace = captured
    n = len(trace)
    cursor = TraceCursor(trace, threshold=32)
    late, _, _ = cursor.capture_at(n - 1)
    assert cursor.rebuilds == 0
    early, _, _ = cursor.capture_at(n // 2)  # behind the cursor: rebuild
    assert cursor.rebuilds == 1
    fresh = replay_until_crash(trace, CrashPlan(n // 2), threshold=32)
    assert _canon_state(early) == _canon_state(fresh)


def test_cursor_past_end_runs_out_and_reports_none(captured):
    _, _, trace = captured
    cursor = TraceCursor(trace, threshold=32)
    state, machine, checker = cursor.capture_at(len(trace) + 5)
    assert state is None
    # The terminal finish() drained the system; the next in-range point
    # must transparently rebuild and still be correct.
    k = len(trace) // 2
    state, _, _ = cursor.capture_at(k)
    fresh = replay_until_crash(trace, CrashPlan(k), threshold=32)
    assert _canon_state(state) == _canon_state(fresh)
    assert cursor.rebuilds >= 1


def test_cursor_pre_crash_io_matches_machine():
    """The campaign reads the machine's pre-crash I/O log (effects that
    escaped the persistence domain); the cursor reconstructs it from the
    trace's I/O positions and must agree at every boundary case."""
    from repro.arch.crash import run_until_crash_with_machine
    from repro.compiler import CapriCompiler, OptConfig
    from repro.ir import IRBuilder, verify_module
    from repro.trace.record import capture_trace

    b = IRBuilder("logger")
    arr = b.module.alloc("records", 8)
    with b.function("main") as f:
        with f.for_range(8) as i:
            v = f.add(f.mul(i, 7), 3)
            f.store(v, f.add(arr, f.shl(i, 3)))
            f.io_write(1, v)
        f.ret()
    verify_module(b.module)
    module = CapriCompiler(OptConfig.licm(8)).compile(b.module).module
    spawns = [("main", [])]
    trace = capture_trace(module, spawns, quantum=32)
    positions = trace.io_positions()
    assert positions, "logger must perform I/O"

    # At an I/O event the crash fires *before* delegation (the write
    # must not escape); right after, it must have.
    mid = positions[len(positions) // 2]
    for k in (positions[0], positions[0] + 1, mid, mid + 1, len(trace) - 1):
        cursor = TraceCursor(trace, threshold=32)
        _, replayed_machine, _ = cursor.capture_at(k)
        _, machine = run_until_crash_with_machine(
            module, spawns, CrashPlan(k), threshold=32, quantum=32
        )
        assert replayed_machine.io_log == machine.io_log, k


def test_execute_spec_trace_mode_matches_interpreted(tmp_path, monkeypatch):
    from repro.api import RunSpec, execute_spec
    from repro.compiler import OptConfig
    from repro.sweep.cache import CACHE_DIR_ENV

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    spec = RunSpec(
        workload="genome", scale=0.1, config=OptConfig.licm(32), quantum=32
    )
    interpreted = execute_spec(spec)
    cold = execute_spec(spec.with_(trace=True))
    warm = execute_spec(spec.with_(trace=True))  # trace now cached
    assert cold.metrics == interpreted.metrics
    assert warm.metrics == interpreted.metrics
    # trace is part of the spec identity (a different execution path).
    assert cold.fingerprint != interpreted.fingerprint


def test_trace_fingerprint_ignores_arch_only_knobs():
    """One functional trace serves every (params, threshold, check)
    point of a sweep: the fingerprint must not vary with them."""
    from repro.api import RunSpec
    from repro.arch.params import SimParams
    from repro.compiler import OptConfig
    from repro.trace.record import trace_fingerprint

    import dataclasses as dc

    base = RunSpec(workload="genome", scale=0.1, config=OptConfig.licm(32))
    fp = trace_fingerprint(base)
    assert fp == trace_fingerprint(base.with_(check=True))
    assert fp == trace_fingerprint(base.with_(seed=7))
    slow_nvm = dc.replace(SimParams.scaled(), nvm_write_ns=600.0)
    assert fp == trace_fingerprint(base.with_(params=slow_nvm))
    # ... but functional identity changes do vary it.
    assert fp != trace_fingerprint(base.with_(scale=0.2))
    assert fp != trace_fingerprint(base.with_(config=OptConfig.licm(64)))
