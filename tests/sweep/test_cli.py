"""Tests for the consolidated ``python -m repro`` CLI (in-process)."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.sweep.cli import main as sweep_main

SWEEP_ARGS = [
    "--benchmarks",
    "ssca2",
    "--thresholds",
    "64,256",
    "--scale",
    "0.05",
]


class TestDispatch:
    def test_no_args_prints_usage(self, capsys):
        assert repro_main([]) == 0
        out = capsys.readouterr().out
        for sub in ("sweep", "fault", "profile", "report"):
            assert sub in out

    def test_help_flag(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_subcommand(self, capsys):
        assert repro_main(["frobnicate"]) == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_dispatches_to_sweep(self, tmp_path, capsys):
        rc = repro_main(
            ["sweep", *SWEEP_ARGS, "--cache-dir", str(tmp_path), "--quiet"]
        )
        assert rc == 0
        assert "ssca2" in capsys.readouterr().out


class TestSweepCLI:
    def test_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert sweep_main([*SWEEP_ARGS, "--cache-dir", cache, "--quiet"]) == 0
        cold_out = capsys.readouterr().out
        assert "64" in cold_out and "256" in cold_out
        # Warm re-run must be served from cache.
        rc = sweep_main(
            [
                *SWEEP_ARGS,
                "--cache-dir",
                cache,
                "--min-hit-rate",
                "0.9",
                "--quiet",
            ]
        )
        assert rc == 0
        assert "100% hit rate" in capsys.readouterr().out

    def test_min_hit_rate_fails_cold_cache(self, tmp_path, capsys):
        rc = sweep_main(
            [
                *SWEEP_ARGS,
                "--cache-dir",
                str(tmp_path / "fresh"),
                "--min-hit-rate",
                "0.9",
                "--quiet",
            ]
        )
        assert rc == 1
        capsys.readouterr()

    def test_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        rc = sweep_main(
            [
                *SWEEP_ARGS,
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(out_path),
                "--quiet",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        # Unified schema-versioned envelope (repro.jsonout).
        assert payload["schema"] == 1
        assert payload["command"] == "sweep"
        data = payload["data"]
        assert data["cells"]["ssca2"]["64"] > 1.0
        assert data["cells"]["ssca2"]["256"] > 1.0
        assert data["report"]["failures"] == 0
        assert data["report"]["simulations"] == 3  # 2 runs + 1 baseline

    def test_unknown_benchmark_fails(self, tmp_path, capsys):
        rc = sweep_main(
            [
                "--benchmarks",
                "no-such-workload",
                "--thresholds",
                "64",
                "--scale",
                "0.05",
                "--cache-dir",
                str(tmp_path),
                "--quiet",
            ]
        )
        assert rc == 1
        capsys.readouterr()


class TestLegacyPointers:
    """Old entry points keep working; they only add a stderr pointer."""

    @pytest.mark.parametrize(
        "module, needle",
        [
            ("repro.eval.figures", "python -m repro figures"),
            ("repro.eval.ablations", "python -m repro ablations"),
            ("repro.eval.make_report", "python -m repro report"),
            ("repro.eval.profile", "python -m repro profile"),
            ("repro.fault.__main__", "python -m repro fault"),
        ],
    )
    def test_pointer_text_present(self, module, needle):
        import importlib
        import inspect

        src = inspect.getsource(importlib.import_module(module))
        assert needle in src
