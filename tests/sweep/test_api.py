"""Tests for the repro.api facade: RunSpec, fingerprints, shims."""

import dataclasses

import pytest

from repro.api import (
    RunSpec,
    code_version,
    execute_spec,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.arch.params import PersistMode, SimParams
from repro.arch.system import run_workload
from repro.compiler import OptConfig

TINY = 0.05


def spec(**kw) -> RunSpec:
    base = dict(workload="ssca2", scale=TINY, config=OptConfig.licm(64))
    base.update(kw)
    return RunSpec(**base)


class TestRunSpec:
    def test_frozen(self):
        s = spec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            s.scale = 1.0

    def test_effective_defaults(self):
        s = spec()
        assert s.effective_threshold == 64
        assert s.effective_params == SimParams.scaled()
        assert s.effective_persistence is True
        assert spec(config=OptConfig.volatile()).effective_persistence is False

    def test_threshold_override_rewrites_config(self):
        s = spec(threshold=32)
        assert s.effective_threshold == 32
        assert s.effective_config.threshold == 32
        assert s.effective_config.licm_opt  # still full Capri

    def test_baseline_spec(self):
        base = spec(seed=7, label="x").baseline()
        assert base.effective_persistence is False
        assert not base.config.instrumented
        assert base.seed == 0 and base.label == "baseline"
        assert base.workload == "ssca2" and base.scale == TINY


class TestFingerprint:
    def test_stable_and_derived_defaults_collide(self):
        assert spec().fingerprint() == spec().fingerprint()
        # None params/threshold hash like their effective values.
        assert (
            spec(params=SimParams.scaled()).fingerprint() == spec().fingerprint()
        )
        assert spec(threshold=64).fingerprint() == spec().fingerprint()

    def test_label_is_presentational(self):
        assert spec(label="a").fingerprint() == spec(label="b").fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            dict(workload="genome"),
            dict(scale=TINY * 2),
            dict(config=OptConfig.licm(32)),
            dict(config=OptConfig.ckpt(64)),
            dict(threshold=32),
            dict(params=SimParams.scaled().with_(nvm_write_ns=301.0)),
            dict(params=SimParams.scaled().with_(persist_mode=PersistMode.SYNC)),
            dict(quantum=16),
            dict(persistence=False),
            dict(seed=1),
            dict(threads=2),
            dict(max_steps=1000),
        ],
    )
    def test_any_field_change_misses(self, change):
        assert spec(**change).fingerprint() != spec().fingerprint()

    def test_fingerprint_is_a_pure_parameter_address(self, monkeypatch):
        # Schema v2: the fingerprint is code-independent — a code bump
        # must NOT move the key (invalidation happens per-entry via the
        # stored deps token, see test_invalidation in tests/deps).
        monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
        fp1 = spec().fingerprint()
        monkeypatch.setenv("REPRO_CODE_VERSION", "v2")
        assert spec().fingerprint() == fp1

    def test_code_version_bump_invalidates_cache_entries(
        self, monkeypatch, tmp_path
    ):
        # The old schema-v1 guarantee, now delivered by validation: an
        # entry written under v1 is refused once the code version moves.
        from repro.api import ResultCache, code_version

        monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
        store = ResultCache(tmp_path / "cache")
        fp = spec().fingerprint()
        store.put(fp, {"metrics": {"exec_cycles": 1.0},
                       "code_version": code_version()})
        assert store.get(fp) is not None
        monkeypatch.setenv("REPRO_CODE_VERSION", "v2")
        assert store.get(fp) is None
        assert store.stale == 1

    def test_code_version_hashes_sources(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODE_VERSION", raising=False)
        v = code_version()
        assert len(v) == 16 and v == code_version()

    def test_canon_distinguishes_key_types(self):
        # Regression: stringified dict keys made {1: x} and {"1": x}
        # collide before schema v2 encoded the key type alongside.
        from repro.api import _canon

        assert _canon({1: "a"}) != _canon({"1": "a"})
        # ...while staying deterministic across mixed-type keys.
        assert _canon({1: "a", "2": "b"}) == _canon({"2": "b", 1: "a"})


class TestExecute:
    def test_execute_volatile_vs_instrumented(self):
        vol = execute_spec(spec(config=OptConfig.volatile()))
        capri = execute_spec(spec())
        assert vol.metrics.exec_cycles > 0
        assert capri.metrics.exec_cycles > vol.metrics.exec_cycles
        assert capri.metrics.proxy_entries > 0
        assert vol.metrics.proxy_entries == 0

    def test_metrics_dict_roundtrip_exact(self):
        import json

        m = execute_spec(spec()).metrics
        rebuilt = metrics_from_dict(json.loads(json.dumps(metrics_to_dict(m))))
        assert rebuilt == m

    def test_run_workload_accepts_spec(self):
        metrics, machine = run_workload(spec())
        assert metrics.exec_cycles > 0
        assert machine is not None and machine.memory

    def test_run_workload_rejects_junk(self):
        with pytest.raises(TypeError):
            run_workload(42)

    def test_run_workload_module_requires_spawns(self):
        from repro.workloads import get_workload

        module, _ = get_workload("ssca2").build(TINY)
        with pytest.raises(TypeError):
            run_workload(module)


class TestHarnessShim:
    def test_run_spec_matches_run(self):
        from repro.eval.harness import EvalHarness

        h = EvalHarness(params=SimParams.scaled(), scale=TINY)
        legacy = h.run("ssca2", OptConfig.licm(64))
        modern = h.run_spec(h.spec("ssca2", OptConfig.licm(64)))
        assert modern.metrics == legacy.metrics
        assert modern.normalized_cycles == legacy.normalized_cycles

    def test_run_spec_volatile_normalizes_to_one(self):
        from repro.eval.harness import EvalHarness

        h = EvalHarness(params=SimParams.scaled(), scale=TINY)
        result = h.run_spec(h.spec("ssca2", OptConfig.volatile()))
        assert result.normalized_cycles == pytest.approx(1.0)


class TestCampaignShim:
    def test_campaign_config_from_spec(self):
        from repro.fault.campaign import CampaignConfig

        s = spec(threshold=16, quantum=8, seed=0xBEEF)
        cc = CampaignConfig.from_spec(s, models=("clean",), sample=3)
        assert cc.threshold == 16
        assert cc.quantum == 8
        assert cc.seed == 0xBEEF
        assert cc.sample == 3

    def test_golden_run_cached(self, tmp_path):
        from repro.fault.campaign import CampaignConfig, run_workload_campaign
        from repro.sweep.cache import ResultCache

        store = ResultCache(tmp_path)
        cc = CampaignConfig(sample=3, minimize=False)
        cold = run_workload_campaign("genome", cc, scale=0.05, cache=store)
        assert store.stores == 1 and store.hits == 0
        warm = run_workload_campaign("genome", cc, scale=0.05, cache=store)
        assert store.hits == 1  # golden served from disk
        assert warm.total_events == cold.total_events
        assert warm.counts() == cold.counts()

    def test_campaign_accepts_runspec(self, tmp_path):
        from repro.fault.campaign import run_workload_campaign
        from repro.sweep.cache import ResultCache

        s = RunSpec(
            workload="genome", scale=0.05, config=OptConfig.licm(32), quantum=32
        )
        result = run_workload_campaign(s, cache=ResultCache(tmp_path))
        assert result.workload == "genome"
        assert result.ok
