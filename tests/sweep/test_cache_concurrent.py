"""Satellite: concurrent-writer stress for the sweep result cache.

Two (and more) writer processes hammer the *same* shard — same
fingerprint prefix, including the exact same fingerprint — while readers
poll.  The atomic temp-file + ``os.replace`` protocol must guarantee:

* a reader never observes a torn payload (``get`` returning a dict with
  a writer's complete record, or a clean miss — never an exception, and
  never a quarantine);
* after the dust settles, each entry equals exactly one writer's final
  payload (last-rename-wins, no interleaving);
* no ``*.corrupt`` files and no leftover ``*.tmp`` litter.
"""

import json
import multiprocessing
import os

import pytest

from repro.sweep.cache import ResultCache

#: All fingerprints share the "ab" prefix: one shard directory, maximum
#: rename contention.
SAME_FP = "ab" + "e1" * 31
FP_POOL = [f"ab{i:02d}" + "0" * 60 for i in range(8)]

WRITES_PER_PROC = 120


def _hammer(root, writer_id, barrier):
    """Writer process: interleave same-key and pooled-key puts."""
    cache = ResultCache(root)
    barrier.wait()
    for i in range(WRITES_PER_PROC):
        payload = {
            "writer": writer_id,
            "iteration": i,
            # Bulk makes torn writes observable if renames weren't atomic.
            "bulk": [writer_id * 1000 + i] * 200,
        }
        cache.put(SAME_FP, payload)
        cache.put(FP_POOL[(writer_id + i) % len(FP_POOL)], payload)


def _spawn_writers(tmp_path, count):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(count)
    procs = [
        ctx.Process(target=_hammer, args=(str(tmp_path), wid, barrier))
        for wid in range(count)
    ]
    for p in procs:
        p.start()
    return procs


def _assert_payload_untorn(payload):
    """A complete record from exactly one writer — never a blend."""
    writer, iteration = payload["writer"], payload["iteration"]
    assert payload["bulk"] == [writer * 1000 + iteration] * 200


@pytest.mark.parametrize("writers", [2, 4])
def test_concurrent_writers_same_shard(tmp_path, writers):
    procs = _spawn_writers(tmp_path, writers)

    # Reader races the writers on the hot fingerprint.
    reader = ResultCache(tmp_path)
    observed = 0
    while any(p.is_alive() for p in procs):
        payload = reader.get(SAME_FP)
        if payload is not None:
            _assert_payload_untorn(payload)
            observed += 1
    for p in procs:
        p.join()
        assert p.exitcode == 0

    # The reader never quarantined anything: every read was a clean
    # miss or a complete record.
    assert reader.quarantined == 0

    # Final state: every entry is one writer's complete final payload.
    final = reader.get(SAME_FP)
    assert final is not None
    _assert_payload_untorn(final)
    assert final["iteration"] == WRITES_PER_PROC - 1
    for fp in FP_POOL:
        payload = reader.get(fp)
        if payload is not None:
            _assert_payload_untorn(payload)

    # No corruption quarantines, no temp-file litter.
    shard_dir = tmp_path / "runs"
    assert not list(shard_dir.rglob("*.corrupt"))
    assert not list(shard_dir.rglob("*.tmp"))
    assert observed > 0, "reader should have seen live writes"


def test_writer_crash_leaves_no_torn_entry(tmp_path):
    """Kill a writer mid-flight: the cache contains only whole records."""
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(1)
    victim = ctx.Process(target=_hammer, args=(str(tmp_path), 0, barrier))
    victim.start()
    # Let it write something, then pull the plug without cleanup.
    cache = ResultCache(tmp_path)
    while cache.get(SAME_FP) is None and victim.is_alive():
        pass
    victim.kill()
    victim.join()

    survivor = ResultCache(tmp_path)
    payload = survivor.get(SAME_FP)
    assert payload is not None
    _assert_payload_untorn(payload)
    assert survivor.quarantined == 0
    # Any orphaned temp file must never shadow a real entry.
    for path in (tmp_path / "runs").rglob("*.json"):
        _assert_payload_untorn(json.loads(path.read_text()))


def test_interprocess_visibility(tmp_path):
    """A put from a child process is immediately visible to the parent."""
    ctx = multiprocessing.get_context("fork")

    def _write(root):
        ResultCache(root).put(SAME_FP, {"writer": 7, "iteration": 0,
                                        "bulk": [7000] * 200})

    child = ctx.Process(target=_write, args=(str(tmp_path),))
    child.start()
    child.join()
    assert child.exitcode == 0
    got = ResultCache(tmp_path).get(SAME_FP)
    assert got is not None and got["writer"] == 7
