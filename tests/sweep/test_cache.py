"""Tests for the on-disk content-addressed result cache."""

import json
import os

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    default_cache_dir,
    resolve_cache,
)

FP = "ab" + "0" * 62


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    payload = {"kind": "metrics", "metrics": {"exec_cycles": 123.5}}
    cache.put(FP, payload)
    got = cache.get(FP)
    assert got["metrics"] == {"exec_cycles": 123.5}
    assert got["fingerprint"] == FP
    assert cache.hits == 1 and cache.misses == 0 and cache.stores == 1


def test_miss_counts(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(FP) is None
    assert cache.misses == 1 and cache.hits == 0


def test_sharded_layout(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, {"x": 1})
    expected = tmp_path / "runs" / FP[:2] / f"{FP}.json"
    assert expected.is_file()
    assert json.loads(expected.read_text())["x"] == 1
    cache.put(FP, {"x": 2}, kind="golden")
    assert (tmp_path / "golden" / FP[:2] / f"{FP}.json").is_file()
    assert cache.get(FP)["x"] == 1  # kinds are separate namespaces
    assert cache.get(FP, kind="golden")["x"] == 2


def test_corrupt_entry_quarantined(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, {"x": 1})
    path = cache.path_for(FP)
    with open(path, "w") as fh:
        fh.write("{ not json !!!")
    assert cache.get(FP) is None  # treated as a miss, no exception
    assert cache.quarantined == 1
    assert not os.path.exists(path)
    assert os.path.exists(f"{path}.corrupt")
    # The slot is refillable after quarantine.
    cache.put(FP, {"x": 2})
    assert cache.get(FP)["x"] == 2


def test_entry_count_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(3):
        cache.put(f"{i:02x}" + "0" * 62, {"i": i})
    assert cache.entry_count() == 3
    cache.clear()
    assert cache.entry_count() == 0


def test_stats_summary(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, {"x": 1})
    cache.get(FP)
    cache.get("cd" + "0" * 62)
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_resolve_cache_variants(tmp_path, monkeypatch):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    existing = ResultCache(tmp_path)
    assert resolve_cache(existing) is existing
    explicit = resolve_cache(str(tmp_path / "sub"))
    assert str(explicit.root) == str(tmp_path / "sub")
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
    assert str(default_cache_dir()) == str(tmp_path / "env")
    for sentinel in ("default", True):
        resolved = resolve_cache(sentinel)
        assert str(resolved.root) == str(tmp_path / "env")
