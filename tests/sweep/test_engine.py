"""Tests for the parallel sweep engine: scheduling, caching, equivalence."""

import pytest

from repro.api import RunSpec
from repro.arch.params import SimParams
from repro.compiler import OptConfig
from repro.eval.harness import EvalHarness
from repro.sweep import ResultCache, SweepError, run_specs

TINY = 0.05
PARAMS = SimParams.scaled()


def make_specs(workloads=("ssca2", "genome"), thresholds=(64, 256)):
    return [
        RunSpec(
            workload=name,
            scale=TINY,
            config=OptConfig.licm(t),
            params=PARAMS,
            label=f"{name}@{t}",
        )
        for name in workloads
        for t in thresholds
    ]


class TestSerial:
    def test_results_align_with_input(self, tmp_path):
        specs = make_specs()
        report = run_specs(specs, workers=0, cache=ResultCache(tmp_path))
        assert report.ok
        assert len(report.results) == len(specs)
        for spec, result in zip(specs, report.results):
            assert result.spec.label == spec.label
            assert result.metrics.exec_cycles > 0
            assert result.baseline_cycles is not None
            assert result.normalized_cycles > 1.0

    def test_baselines_deduplicated(self, tmp_path):
        # 2 workloads x 2 thresholds = 4 specs but only 2 distinct
        # baselines -> 6 simulations, not 8.
        report = run_specs(make_specs(), workers=0, cache=ResultCache(tmp_path))
        assert report.simulations == 6
        assert report.cache_misses == 6

    def test_duplicate_specs_deduplicated(self, tmp_path):
        spec = make_specs(workloads=("ssca2",), thresholds=(64,))[0]
        report = run_specs(
            [spec, spec.with_(label="again")],
            workers=0,
            cache=ResultCache(tmp_path),
        )
        assert report.ok
        assert report.simulations == 2  # baseline + one run, not two
        assert report.results[0].metrics == report.results[1].metrics

    def test_volatile_spec_normalizes_to_one(self, tmp_path):
        spec = RunSpec(
            workload="ssca2",
            scale=TINY,
            config=OptConfig.volatile(),
            params=PARAMS,
        )
        report = run_specs([spec], workers=0, cache=ResultCache(tmp_path))
        assert report.ok
        assert report.results[0].normalized_cycles == pytest.approx(1.0)
        # A volatile input IS its own baseline: exactly one simulation.
        assert report.simulations == 1


class TestWarmCache:
    def test_second_sweep_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = make_specs()
        cold = run_specs(specs, workers=0, cache=cache)
        warm_cache = ResultCache(tmp_path)  # fresh counters, same disk
        warm = run_specs(specs, workers=0, cache=warm_cache)
        assert warm.simulations == 0
        assert warm.cache_hits == 6
        assert warm.hit_rate == 1.0
        for a, b in zip(cold.results, warm.results):
            assert a.metrics == b.metrics  # exact dataclass equality
            assert b.from_cache

    def test_harness_sweep_served_from_cache(self, tmp_path, monkeypatch):
        """Acceptance criterion: a repeated EvalHarness.sweep over >=2
        workloads x 3 configs is served entirely from the on-disk cache
        (0 re-simulations), even from a brand-new harness."""
        from repro.sweep.cache import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        names = ["ssca2", "genome"]
        configs = {
            "32": OptConfig.licm(32),
            "256": OptConfig.licm(256),
            "ckpt": OptConfig.ckpt(256),
        }
        h1 = EvalHarness(params=PARAMS, scale=TINY)
        cold = h1.sweep(names, configs)
        assert h1.last_sweep_report.simulations > 0
        h2 = EvalHarness(params=PARAMS, scale=TINY)
        warm = h2.sweep(names, configs)
        assert h2.last_sweep_report.simulations == 0
        assert h2.last_sweep_report.hit_rate == 1.0
        for name in names:
            for label in configs:
                assert (
                    warm[name][label].metrics == cold[name][label].metrics
                )
                assert warm[name][label].normalized_cycles == pytest.approx(
                    cold[name][label].normalized_cycles
                )


class TestParallel:
    def test_parallel_matches_serial_exactly(self, tmp_path):
        specs = make_specs()
        serial = run_specs(
            specs, workers=0, cache=ResultCache(tmp_path / "serial")
        )
        parallel = run_specs(
            specs, workers=2, cache=ResultCache(tmp_path / "parallel")
        )
        assert serial.ok and parallel.ok
        assert parallel.workers == 2
        for a, b in zip(serial.results, parallel.results):
            # Bit-identical SystemMetrics across execution strategies.
            assert a.metrics == b.metrics
            assert a.baseline_cycles == b.baseline_cycles

    def test_parallel_failure_contained(self, tmp_path):
        specs = make_specs(workloads=("ssca2",), thresholds=(64,))
        specs.append(specs[0].with_(workload="no-such-workload"))
        report = run_specs(specs, workers=2, cache=ResultCache(tmp_path))
        # Baseline fails AND its dependent run is marked failed: 2 failures.
        assert report.failures == 2
        assert not report.ok
        assert report.results[0] is not None  # good spec still completed
        assert report.results[1] is None
        failed = report.failed_statuses()
        assert any("no-such-workload" in (s.error or "") for s in failed)


class TestFailureHandling:
    def test_serial_failure_contained(self, tmp_path):
        specs = make_specs(workloads=("ssca2",), thresholds=(64,))
        specs.append(specs[0].with_(workload="no-such-workload"))
        report = run_specs(specs, workers=0, cache=ResultCache(tmp_path))
        assert report.failures == 2
        assert report.results[0].metrics.exec_cycles > 0
        assert report.results[1] is None
        # The dependent spec carries the baseline's traceback.
        run_status = [
            s
            for s in report.failed_statuses()
            if s.role == "run" and s.spec.workload == "no-such-workload"
        ]
        assert run_status and "baseline run failed" in run_status[0].error

    def test_strict_sweep_raises(self, tmp_path, monkeypatch):
        from repro.sweep.cache import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        h = EvalHarness(params=PARAMS, scale=TINY)
        with pytest.raises(SweepError) as exc:
            h.sweep(["no-such-workload"], {"full": OptConfig.licm(64)})
        assert exc.value.report.failures == 2
        out = h.sweep(
            ["no-such-workload"], {"full": OptConfig.licm(64)}, strict=False
        )
        assert out == {}  # failed specs are simply absent

    def test_progress_callback_sees_every_status(self, tmp_path):
        events = []
        report = run_specs(
            make_specs(workloads=("ssca2",), thresholds=(64,)),
            workers=0,
            cache=ResultCache(tmp_path),
            progress=events.append,
        )
        assert report.ok
        # Every terminal status was reported at least once.
        terminal = {s.fingerprint for s in events if s.state in ("ok", "cached")}
        assert {s.fingerprint for s in report.statuses} <= terminal | {
            s.fingerprint for s in events
        }
        assert len(events) >= 2


class TestReport:
    def test_summary_mentions_counts(self, tmp_path):
        report = run_specs(
            make_specs(workloads=("ssca2",), thresholds=(64,)),
            workers=0,
            cache=ResultCache(tmp_path),
        )
        text = report.summary()
        assert "simulations: 2" in text
        assert "100% hit rate" not in text
        assert report.wall_s >= 0
