"""Session-wide test isolation for the sweep result cache.

Anything that touches the :mod:`repro.sweep` engine with default
settings (``EvalHarness.sweep``, the figure functions, fault-campaign
golden runs) would otherwise write to ``results/.sweep-cache`` in the
working directory; point it at a per-session temp dir instead.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_sweep_cache(tmp_path_factory):
    import os

    from repro.sweep.cache import CACHE_DIR_ENV

    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("sweep-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous
