"""System-level tests: timing sanity, persistence modes, metric integrity,
and the hardest correctness property — crash recovery *with the regular
path active* (tiny caches forcing writebacks of uncommitted data)."""

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.arch import SimParams
from repro.arch.params import PersistMode
from repro.arch.crash import CrashPlan, run_until_crash
from repro.arch.recovery import recover, resume_and_finish
from repro.arch.system import run_workload
from repro.compiler import OptConfig
from repro.isa import Machine

from tests.arch.conftest import (
    build_update_loop,
    compile_capri,
    data_memory,
)

TINY = SimParams.scaled().with_(
    l1_size_bytes=512, l2_size_bytes=1024, dram_cache_size_bytes=1024
)


class TestTimingSanity:
    def test_baseline_faster_than_sync_persistence(self):
        module_v = build_update_loop(n_iters=80)
        module_c = compile_capri(module_v)
        base, _ = run_workload(module_v, [("main", [])], persistence=False)
        sync_params = SimParams.scaled().with_(persist_mode=PersistMode.SYNC)
        sync, _ = run_workload(
            module_c, [("main", [])], params=sync_params, threshold=32
        )
        assert sync.cycles > base.cycles

    def test_async_no_slower_than_sync(self):
        module = compile_capri(build_update_loop(n_iters=80))
        a, _ = run_workload(module, [("main", [])], threshold=32)
        s, _ = run_workload(
            module,
            [("main", [])],
            params=SimParams.scaled().with_(persist_mode=PersistMode.SYNC),
            threshold=32,
        )
        assert a.cycles <= s.cycles
        assert s.sync_stall_cycles > 0

    def test_capri_overhead_positive_but_bounded(self):
        module_v = build_update_loop(n_iters=100)
        module_c = compile_capri(module_v, threshold=256)
        base, _ = run_workload(module_v, [("main", [])], persistence=False)
        capri, _ = run_workload(module_c, [("main", [])], threshold=256)
        ratio = capri.cycles / base.cycles
        assert 1.0 <= ratio < 2.5, f"unreasonable overhead ratio {ratio}"

    def test_larger_threshold_not_slower(self):
        module_v = build_update_loop(n_iters=120)
        cycles = {}
        for threshold in [8, 64, 512]:
            module_c = compile_capri(module_v, threshold=threshold)
            m, _ = run_workload(module_c, [("main", [])], threshold=threshold)
            cycles[threshold] = m.cycles
        assert cycles[512] <= cycles[8]

    def test_cycles_positive_and_cores_tracked(self):
        module = compile_capri(build_update_loop(n_iters=20))
        m, _ = run_workload(module, [("main", [])], threshold=32)
        assert m.cycles > 0
        assert len(m.core_cycles) == 1
        assert m.retired > 0


class TestMetricsIntegrity:
    def test_store_accounting(self):
        module = compile_capri(build_update_loop(n_iters=50))
        m, _ = run_workload(module, [("main", [])], threshold=32)
        # Every data store creates or merges a proxy entry.
        assert m.proxy_entries + m.proxy_merged == m.stores

    def test_boundary_accounting(self):
        module = compile_capri(build_update_loop(n_iters=50))
        m, _ = run_workload(module, [("main", [])], threshold=32)
        assert m.boundary_entries + m.boundaries_skipped == m.boundaries

    def test_nvm_write_breakdown_sums(self):
        module = compile_capri(build_update_loop(n_iters=50))
        m, _ = run_workload(module, [("main", [])], params=TINY, threshold=32)
        assert (
            m.nvm_writes_total
            == m.nvm_writes_writeback + m.nvm_writes_redo + m.nvm_writes_ckpt
        )

    def test_volatile_system_has_no_persistence_metrics(self):
        module = build_update_loop(n_iters=30)
        m, _ = run_workload(module, [("main", [])], persistence=False)
        assert m.proxy_entries == 0
        assert m.nvm_writes_redo == 0
        assert m.fe_stall_cycles == 0

    def test_hierarchy_hit_accounting(self):
        module = build_update_loop(n_iters=60)
        m, _ = run_workload(module, [("main", [])], persistence=False, params=TINY)
        assert m.l1_hits + m.l2_hits + m.dram_hits + m.nvm_fills == m.loads


class TestCrashWithWritebacks:
    """The full Figure 7 situation inside real runs: uncommitted data can
    reach NVM via the regular path before the crash; recovery must still
    restore the exact boundary state."""

    def _module(self):
        return compile_capri(build_update_loop(n_iters=160, arr_words=256))

    def _reference(self, module):
        m = Machine(module)
        m.spawn("main", [])
        m.run()
        return data_memory(m)

    @pytest.mark.parametrize("at", [50, 200, 500, 900, 1400, 2000])
    def test_recovery_with_tiny_caches(self, at):
        module = self._module()
        ref = self._reference(module)
        state = run_until_crash(
            module, [("main", [])], CrashPlan(at), params=TINY, threshold=32
        )
        if state is None:
            return
        rec = recover(state, module)
        finished = resume_and_finish(rec, module, [("main", [])])
        assert data_memory(finished) == ref

    @given(at=st.integers(min_value=0, max_value=2500))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_crash_with_writebacks(self, at):
        module = self._module()
        ref = self._reference(module)
        state = run_until_crash(
            module, [("main", [])], CrashPlan(at), params=TINY, threshold=32
        )
        if state is None:
            return
        rec = recover(state, module)
        finished = resume_and_finish(rec, module, [("main", [])])
        assert data_memory(finished) == ref

    def test_writebacks_actually_happened(self):
        """Guard against vacuity: the tiny hierarchy must actually push
        regular-path writebacks to NVM during these runs."""
        module = self._module()
        m, _ = run_workload(module, [("main", [])], params=TINY, threshold=32)
        assert m.nvm_writes_writeback > 0
