"""Tests that the default configuration matches the paper's Table 1."""

import pytest

from repro.arch.params import PersistMode, SimParams


class TestTable1:
    """Each row of Table 1, asserted against the defaults."""

    def setup_method(self):
        self.p = SimParams.paper()

    def test_clock_2ghz(self):
        assert self.p.clock_ghz == 2.0

    def test_l1_32kb_8way(self):
        assert self.p.l1_size_bytes == 32 * 1024
        assert self.p.l1_assoc == 8

    def test_l1_2ns_hit(self):
        assert self.p.l1_hit_ns == 2.0
        assert self.p.l1_hit_cycles == 4.0  # 2ns @ 2GHz

    def test_l2_16mb_16way_20ns(self):
        assert self.p.l2_size_bytes == 16 * 1024 * 1024
        assert self.p.l2_assoc == 16
        assert self.p.l2_hit_ns == 20.0

    def test_dram_cache_8gb(self):
        assert self.p.dram_cache_size_bytes == 8 * 1024**3

    def test_nvm_latencies(self):
        assert self.p.nvm_read_ns == 150.0
        assert self.p.nvm_write_ns == 300.0

    def test_wpq_16_entries(self):
        assert self.p.wpq_entries == 16

    def test_proxy_path_20ns(self):
        assert self.p.proxy_path_ns == 20.0

    def test_frontend_32_entries(self):
        assert self.p.frontend_entries == 32

    def test_backend_sized_by_threshold(self):
        # Section 6.1: back-end entries = compiler threshold (+1 for the
        # boundary delimiter slot in our model).
        assert self.p.backend_capacity(256) == 257
        assert self.p.backend_capacity(32) == 33

    def test_line_64b(self):
        assert self.p.line_bytes == 64


class TestDerived:
    def test_ns_to_cycles(self):
        p = SimParams.paper()
        assert p.ns_to_cycles(10) == 20.0

    def test_nvm_write_interval(self):
        p = SimParams.paper()
        assert p.nvm_write_interval_cycles == p.nvm_write_cycles / p.nvm_write_parallelism

    def test_line_counts(self):
        p = SimParams.paper()
        assert p.l1_lines == 32 * 1024 // 64
        assert p.l2_lines == 16 * 1024 * 1024 // 64

    def test_scaled_preserves_latencies(self):
        paper, scaled = SimParams.paper(), SimParams.scaled()
        assert scaled.l1_hit_ns == paper.l1_hit_ns
        assert scaled.nvm_write_ns == paper.nvm_write_ns
        assert scaled.proxy_path_ns == paper.proxy_path_ns
        assert scaled.frontend_entries == paper.frontend_entries

    def test_scaled_shrinks_capacities(self):
        paper, scaled = SimParams.paper(), SimParams.scaled()
        assert scaled.l1_size_bytes < paper.l1_size_bytes
        assert scaled.l2_size_bytes < paper.l2_size_bytes
        assert scaled.dram_cache_size_bytes < paper.dram_cache_size_bytes

    def test_with_updates(self):
        p = SimParams.paper().with_(persist_mode=PersistMode.SYNC)
        assert p.persist_mode is PersistMode.SYNC
        assert p.l1_size_bytes == SimParams.paper().l1_size_bytes

    def test_backend_override(self):
        p = SimParams.paper().with_(backend_entries=512)
        assert p.backend_capacity(256) == 513
