"""Tests for the cache models: hits/misses, LRU, writebacks, values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import DirectMappedCache, SetAssocCache


def make_cache(lines=8, assoc=2, **kw):
    wbs = []
    c = SetAssocCache(
        "t", num_lines=lines, assoc=assoc, writeback=lambda l, w: wbs.append((l, w)), **kw
    )
    return c, wbs


class TestSetAssoc:
    def test_miss_then_hit(self):
        c, _ = make_cache()
        assert not c.touch(0x100)
        assert c.touch(0x100)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_words_hit(self):
        c, _ = make_cache()
        c.touch(0x100)
        assert c.touch(0x108)  # same 64B line
        assert c.touch(0x138)

    def test_different_lines_miss(self):
        c, _ = make_cache()
        c.touch(0x100)
        assert not c.touch(0x140)

    def test_lru_eviction(self):
        c, _ = make_cache(lines=2, assoc=2)  # 1 set, 2 ways
        c.touch(0x000)
        c.touch(0x040)
        c.touch(0x000)  # refresh LRU
        c.touch(0x080)  # evicts 0x040
        assert c.contains(0x000)
        assert not c.contains(0x040)

    def test_clean_eviction_no_writeback(self):
        c, wbs = make_cache(lines=2, assoc=2)
        c.touch(0x000)
        c.touch(0x040)
        c.touch(0x080)
        assert wbs == []

    def test_dirty_eviction_writes_back_dirty_words(self):
        c, wbs = make_cache(lines=2, assoc=2)
        c.write(0x000, 11)
        c.write(0x008, 22)
        c.touch(0x040)
        c.touch(0x080)  # evicts line 0 (dirty)
        assert wbs == [(0x000, {0x000: 11, 0x008: 22})]

    def test_write_allocate(self):
        c, _ = make_cache()
        assert not c.write(0x200, 5)
        assert c.contains(0x200)
        assert c.write(0x208, 6)  # hit now

    def test_install_writeback_merges(self):
        c, wbs = make_cache(lines=2, assoc=2)
        c.install_writeback(0x000, {0x000: 1})
        c.install_writeback(0x000, {0x008: 2})
        c.touch(0x040)
        c.touch(0x080)
        assert wbs == [(0x000, {0x000: 1, 0x008: 2})]

    def test_evict_line_returns_dirty_words(self):
        c, _ = make_cache()
        c.write(0x100, 9)
        words = c.evict_line(0x100)
        assert words == {0x100: 9}
        assert not c.contains(0x100)

    def test_evict_line_absent_returns_none(self):
        c, _ = make_cache()
        assert c.evict_line(0x100) is None

    def test_evict_clean_line_returns_empty(self):
        c, _ = make_cache()
        c.touch(0x100)
        assert c.evict_line(0x100) == {}

    def test_flush_all(self):
        c, wbs = make_cache()
        c.write(0x000, 1)
        c.write(0x100, 2)
        c.flush_all()
        flushed = {addr: words for addr, words in wbs}
        assert flushed == {0x000: {0x000: 1}, 0x100: {0x100: 2}}

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache("t", num_lines=7, assoc=2)

    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=2**16).map(lambda a: a * 8),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_writeback_values_never_lost(self, addrs):
        """Every written value is recoverable from cache + writebacks:
        the union of dirty-in-cache and written-back words equals the
        last-written value per address."""
        sink = {}
        c = SetAssocCache(
            "t", num_lines=4, assoc=2, writeback=lambda l, w: sink.update(w)
        )
        expected = {}
        for i, addr in enumerate(addrs):
            c.write(addr, i)
            expected[addr] = i
        c.flush_all()
        for addr, value in expected.items():
            assert sink[addr] == value


class TestDirectMapped:
    def test_conflict_eviction(self):
        wbs = []
        c = DirectMappedCache("d", num_lines=4, writeback=lambda l, w: wbs.append((l, w)))
        c.touch(0x000)
        c.touch(0x100)  # maps to same slot (4 lines * 64B = 256B stride)
        assert not c.contains(0x000)
        assert c.contains(0x100)

    def test_dirty_conflict_writes_back(self):
        wbs = []
        c = DirectMappedCache("d", num_lines=4, writeback=lambda l, w: wbs.append((l, w)))
        c.install_writeback(0x000, {0x008: 77})
        c.touch(0x100)
        assert wbs == [(0x000, {0x008: 77})]

    def test_hit_on_resident_line(self):
        c = DirectMappedCache("d", num_lines=4)
        c.touch(0x040)
        assert c.touch(0x048)
        assert c.hits == 1

    def test_flush_all(self):
        wbs = []
        c = DirectMappedCache("d", num_lines=4, writeback=lambda l, w: wbs.append((l, w)))
        c.install_writeback(0x000, {0x000: 1})
        c.install_writeback(0x040, {0x040: 2})
        c.flush_all()
        assert len(wbs) == 2
