"""I/O under whole-system persistence (the paper's Section 3.3).

I/O effects leave the persistence domain and cannot be rolled back.  The
contract implemented (following the paper's sketch):

* each I/O lives in its own single-instruction region, so crash recovery
  re-executes at most the one interrupted I/O (at-least-once delivery),
* committed I/O is never re-executed (resume points never move backwards
  past a committed boundary),
* before an I/O issues, everything committed is durable (the persist
  barrier), so the external world never observes output from state that
  a crash could roll back.
"""

import pytest

from repro.arch import SimParams
from repro.arch.crash import CrashPlan, run_until_crash
from repro.arch.recovery import recover, resume_and_finish
from repro.compiler import CapriCompiler, OptConfig
from repro.ir import IRBuilder, verify_module
from repro.ir.instructions import IOWrite, RegionBoundary
from repro.isa import Machine

from tests.arch.conftest import data_memory


def build_logger(n_records: int = 20):
    """Compute a value, store it, then emit it to 'disk' (port 1)."""
    b = IRBuilder("logger")
    arr = b.module.alloc("records", n_records)
    with b.function("main") as f:
        with b_for(f, n_records) as i:
            v = f.add(f.mul(i, 7), 3)
            f.store(v, f.add(arr, f.shl(i, 3)))
            f.io_write(1, v)
        f.ret()
    verify_module(b.module)
    return b.module, arr


def b_for(f, n):
    return f.for_range(n)


class TestIOSemantics:
    def test_machine_logs_io_in_order(self):
        module, _ = build_logger(5)
        machine = Machine(module)
        machine.run_function("main")
        assert [v for (_, port, v) in machine.io_log] == [3, 10, 17, 24, 31]
        assert all(port == 1 for (_, port, _) in machine.io_log)

    def test_io_event_observed(self):
        from repro.isa import CountingObserver

        module, _ = build_logger(4)
        obs = CountingObserver()
        Machine(module).run_function("main", observer=obs)
        assert obs.io_writes == 4

    def test_compiler_isolates_io_in_own_region(self):
        module, _ = build_logger(4)
        out = CapriCompiler(OptConfig.licm(256)).compile(module).module
        func = out.function("main")
        for label, block in func.blocks.items():
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, IOWrite):
                    # boundary immediately before (block-leading) ...
                    assert isinstance(block.instrs[0], RegionBoundary)
                    assert i == 1
                    # ... and nothing after it but the block terminator.
                    assert len(block.instrs) == 3

    def test_io_blocks_loop_unrolling_boundaries(self):
        """A loop with I/O keeps a boundary per iteration — its regions
        cannot grow past the I/O no matter the threshold."""
        from repro.isa import CountingObserver

        module, _ = build_logger(16)
        out = CapriCompiler(OptConfig.licm(1024)).compile(module).module
        obs = CountingObserver()
        Machine(out).run_function("main", observer=obs)
        assert obs.boundaries >= 16

    def test_parser_printer_roundtrip(self):
        from repro.ir import format_function, parse_function

        module, _ = build_logger(3)
        text = format_function(module.function("main"))
        assert "io[1]" in text
        reparsed = parse_function(text)
        assert format_function(reparsed) == text


class TestIOUnderCrashes:
    def _reference(self, module):
        machine = Machine(module)
        machine.spawn("main", [])
        machine.run()
        return data_memory(machine), [v for (_, _, v) in machine.io_log]

    @pytest.mark.parametrize("at", [10, 60, 150, 300, 450])
    def test_at_least_once_delivery(self, at):
        module, _ = build_logger(20)
        capri = CapriCompiler(OptConfig.licm(64)).compile(module).module
        ref_data, ref_io = self._reference(capri)

        state = run_until_crash(capri, [("main", [])], CrashPlan(at), threshold=64)
        if state is None:
            return
        pre_crash_io = []  # unknown from state; replay instead
        rec = recover(state, capri)
        finished = resume_and_finish(rec, capri, [("main", [])])
        # Memory state is exact, as always.
        assert data_memory(finished) == ref_data
        # I/O of the resumed leg is a *suffix* of the reference sequence
        # possibly re-emitting the record in flight at the crash.
        resumed_io = [v for (_, _, v) in finished.io_log]
        assert resumed_io == ref_io[len(ref_io) - len(resumed_io):]

    def test_crash_sweep_duplicates_bounded(self):
        """Across a dense crash sweep, the combined pre-crash + resumed
        I/O stream equals the reference with at most one duplicated
        record at the seam (the interrupted region's I/O)."""
        module, _ = build_logger(15)
        capri = CapriCompiler(OptConfig.licm(64)).compile(module).module
        ref_data, ref_io = self._reference(capri)

        for at in range(5, 550, 37):
            # First leg: run to crash on a machine we can inspect.
            from repro.arch.crash import CrashInjector, PowerFailure
            from repro.arch.system import CapriSystem

            machine = Machine(capri)
            machine.spawn("main", [])
            system = CapriSystem(SimParams.scaled(), 1, 64)
            system.attach(machine)
            injector = CrashInjector(system, CrashPlan(at))
            try:
                machine.run(injector)
            except PowerFailure as pf:
                state = pf.state
            else:
                continue
            first_leg = [v for (_, _, v) in machine.io_log]
            rec = recover(state, capri)
            finished = resume_and_finish(rec, capri, [("main", [])])
            second_leg = [v for (_, _, v) in finished.io_log]
            combined = first_leg + second_leg
            # Every reference record is delivered...
            assert ref_io == sorted(set(combined), key=ref_io.index)
            # ...with at most one duplicate at the seam.
            duplicates = len(combined) - len(set(combined))
            assert duplicates <= 1, f"at={at}: {combined}"
            if duplicates == 1:
                # The duplicate is exactly the seam record.
                assert first_leg[-1] == second_leg[0]
            assert data_memory(finished) == ref_data

    def test_io_barrier_makes_committed_state_durable(self):
        """At the moment an I/O issues, all previously committed stores
        are already in NVM (no output can precede its own cause's
        durability)."""
        from repro.arch.system import CapriSystem

        module, arr = build_logger(10)
        capri = CapriCompiler(OptConfig.licm(64)).compile(module).module

        machine = Machine(capri)
        machine.spawn("main", [])
        system = CapriSystem(SimParams.scaled(), 1, 64)
        system.attach(machine)

        seen = []
        orig_on_io = system.on_io

        def checking_on_io(core, port, value):
            orig_on_io(core, port, value)
            # After the barrier: the record just stored for this I/O's
            # *previous* iterations must be durable in NVM.
            seen.append(len(machine.io_log))
            for k in range(len(machine.io_log) - 1):
                addr = arr + k * 8
                expected = 7 * k + 3
                assert system.nvm.peek(addr) == expected, (
                    f"io #{len(machine.io_log)}: record {k} not durable"
                )

        system.on_io = checking_on_io
        machine.run(system)
        assert seen  # the hook actually ran
