"""Unit tests for the NVM main-memory model: image, port timing, counters."""

import pytest

from repro.arch.nvm import NVMain
from repro.arch.params import SimParams


def make_nvm(**kw):
    return NVMain(SimParams.scaled().with_(**kw))


class TestImage:
    def test_reads_default_zero(self):
        nvm = make_nvm()
        assert nvm.read_word(0x1000) == 0
        assert nvm.reads == 1

    def test_peek_does_not_count(self):
        nvm = make_nvm()
        nvm.peek(0x1000)
        assert nvm.reads == 0

    def test_initial_image(self):
        nvm = NVMain(SimParams.scaled(), initial={0x10: 7})
        assert nvm.peek(0x10) == 7

    def test_writeback_applies_words(self):
        nvm = make_nvm()
        nvm.writeback_words(0.0, {0x10: 1, 0x18: 2})
        assert nvm.peek(0x10) == 1 and nvm.peek(0x18) == 2
        assert nvm.writes_writeback == 2

    def test_redo_and_ckpt_counters(self):
        nvm = make_nvm()
        nvm.redo_write(0.0, 0x10, 5)
        nvm.ckpt_write(0.0, 0x4000_0000, 9)
        assert nvm.writes_redo == 1
        assert nvm.writes_ckpt == 1
        assert nvm.total_writes == 2


class TestWritePort:
    def test_issue_spacing(self):
        nvm = make_nvm()
        interval = nvm.params.nvm_write_interval_cycles
        t0 = nvm.issue_write(0.0)
        t1 = nvm.issue_write(0.0)
        assert t0 == 0.0
        assert t1 == pytest.approx(interval)

    def test_issue_after_idle_starts_at_now(self):
        nvm = make_nvm()
        nvm.issue_write(0.0)
        t = nvm.issue_write(10_000.0)
        assert t == 10_000.0

    def test_throughput_matches_parallelism(self):
        fast = make_nvm(nvm_write_parallelism=600)
        slow = make_nvm(nvm_write_parallelism=2)
        for _ in range(10):
            fast.issue_write(0.0)
            slow.issue_write(0.0)
        assert slow.write_free_at > fast.write_free_at

    def test_writeback_occupies_port_per_word(self):
        nvm = make_nvm()
        last = nvm.writeback_words(0.0, {0x10: 1, 0x18: 2, 0x20: 3})
        assert last >= 2 * nvm.params.nvm_write_interval_cycles - 1e-9


class TestPcCheckpoints:
    def test_starts_empty(self):
        assert make_nvm().pc_checkpoints == {}

    def test_survives_as_plain_dict(self):
        nvm = make_nvm()
        nvm.pc_checkpoints[0] = ("cont", 3)
        assert dict(nvm.pc_checkpoints) == {0: ("cont", 3)}
