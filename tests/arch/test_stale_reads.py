"""Stale-read prevention and persist-order handling (paper Section 5.3).

Directed reconstructions of the Figure 6/7 scenarios at the pipeline
level, plus system-level checks that workloads forcing regular-path
writebacks never observe stale NVM data when prevention is on.
"""

import pytest

from repro.arch.nvm import NVMain
from repro.arch.params import SimParams
from repro.arch.persistence import PersistenceEngine
from repro.arch import SimParams as SP
from repro.arch.system import run_workload
from repro.compiler import OptConfig

from tests.arch.conftest import build_update_loop, compile_capri


def make_engine(threshold=16, prevention=True):
    params = SimParams.scaled().with_(stale_read_prevention=prevention)
    nvm = NVMain(params)
    return PersistenceEngine(params, nvm, num_cores=1, threshold=threshold), nvm


ADDR = 0x1000


class TestFigure6Scenarios:
    """Two regions store A=10 then A=20; a merged writeback carries A=20."""

    def _two_regions(self, engine):
        engine.on_store(0, 0.0, ADDR, 10, 0)  # region 1: A=10 (undo 0)
        engine.on_boundary(0, 0.0, 1, "c1")
        engine.on_store(0, 0.0, ADDR, 20, 10)  # region 2: A=20 (undo 10)
        engine.on_boundary(0, 0.0, 2, "c2")

    def test_normal_order_proxy_then_writeback(self):
        """Order (1)(2)(3): proxy drains first, writeback last — NVM ends
        at the latest value; no stale read possible."""
        engine, nvm = make_engine()
        self._two_regions(engine)
        engine.advance_all(1e9)  # both regions drain: A=20
        assert nvm.peek(ADDR) == 20
        engine.on_nvm_writeback(1e9, ADDR - ADDR % 64, {ADDR: 20})
        assert nvm.peek(ADDR) == 20
        assert engine.check_nvm_read(1e9, ADDR, architectural=20) == 20
        assert engine.stale_reads == 0

    def test_early_writeback_invalidates_pending_redo(self):
        """Order (3)(1)(2): the writeback lands before either region
        drains; with prevention the delayed redo copies are skipped, so
        NVM keeps the newest value (no stale read)."""
        engine, nvm = make_engine()
        self._two_regions(engine)
        # Writeback arrives first (time 0), before any drain.
        engine.on_nvm_writeback(0.0, ADDR - ADDR % 64, {ADDR: 20})
        assert nvm.peek(ADDR) == 20
        engine.advance_all(1e9)  # drains skip invalidated entries
        assert nvm.peek(ADDR) == 20
        assert nvm.writes_skipped == 2
        assert engine.check_nvm_read(1e9, ADDR, architectural=20) == 20
        assert engine.stale_reads == 0

    def test_without_prevention_stale_read_happens(self):
        """Same (3)(1)(2) order with prevention disabled: the delayed
        region-1 redo overwrites the newer writeback -> stale NVM."""
        engine, nvm = make_engine(prevention=False)
        engine.on_store(0, 0.0, ADDR, 10, 0)
        engine.on_boundary(0, 0.0, 1, "c1")
        engine.on_store(0, 0.0, ADDR, 20, 10)
        # Writeback of the merged cache line arrives before region 1 drains.
        engine.on_nvm_writeback(0.0, ADDR - ADDR % 64, {ADDR: 20})
        engine.advance_all(1e9)  # region 1 redo A=10 overwrites A=20
        assert nvm.peek(ADDR) == 10  # stale!
        assert engine.check_nvm_read(1e9, ADDR, architectural=20) == 10
        assert engine.stale_reads == 1

    def test_interleaved_order_writeback_between_drains(self):
        """Order (1)(3)(2): region 1 drains, writeback lands, region 2's
        redo is invalidated — the last copy is skipped, saving NVM
        bandwidth (the paper's first scenario)."""
        engine, nvm = make_engine()
        engine.on_store(0, 0.0, ADDR, 10, 0)
        engine.on_boundary(0, 0.0, 1, "c1")
        engine.advance_all(1e9)  # region 1 drains: A=10
        assert nvm.peek(ADDR) == 10
        engine.on_store(0, 1e9, ADDR, 20, 10)
        engine.on_nvm_writeback(1e9, ADDR - ADDR % 64, {ADDR: 20})
        assert nvm.peek(ADDR) == 20
        engine.on_boundary(0, 1e9, 2, "c2")
        engine.advance_all(2e9)
        assert nvm.peek(ADDR) == 20  # redo skipped, not rewritten to 20
        assert nvm.writes_skipped == 1
        assert engine.stale_reads == 0


class TestFigure7Recovery:
    """Cache writeback + crash: undo data restores region-boundary state."""

    def test_writeback_of_uncommitted_data_rolled_back(self):
        """Figure 7 exactly: region 1 (A=10, B=3) completes both phases;
        region 2 (A=20) is interrupted mid-phase-1 after its A=20 reached
        NVM via cache writeback.  Recovery must roll A back to 10."""
        from repro.arch.crash import CrashState
        from repro.arch.recovery import recover
        from repro.ir.module import Module

        engine, nvm = make_engine()
        B = ADDR + 8
        engine.on_store(0, 0.0, ADDR, 10, 0)
        engine.on_store(0, 0.0, B, 3, 2)
        engine.on_boundary(0, 0.0, 1, None)
        engine.advance_all(1e9)  # region 1 fully durable
        assert nvm.peek(ADDR) == 10 and nvm.peek(B) == 3
        # Region 2 starts: store A=20; the dirty line reaches NVM through
        # the regular path before the region commits.
        engine.on_store(0, 1e9, ADDR, 20, 10)
        engine.on_nvm_writeback(1e9, ADDR - ADDR % 64, {ADDR: 20})
        assert nvm.peek(ADDR) == 20  # uncommitted data visible in NVM
        # Power failure now.
        entries = engine.pipelines[0].entries_in_order()
        state = CrashState(
            nvm_image=dict(nvm.image),
            core_entries=[list(entries)],
            num_cores=1,
            pc_checkpoints=dict(nvm.pc_checkpoints),
        )
        rec = recover(state, Module("empty"))
        # A rolled back to 10 (end of region 1) via the undo value.
        assert rec.nvm_image[ADDR] == 10
        assert rec.nvm_image[B] == 3
        assert rec.regions_rolled_back == 1

    def test_committed_region_with_invalidated_redo_survives(self):
        """Committed region whose redo was invalidated: the writeback value
        stands; recovery must not lose it."""
        from repro.arch.crash import CrashState
        from repro.arch.recovery import recover
        from repro.ir.module import Module

        engine, nvm = make_engine()
        engine.on_store(0, 0.0, ADDR, 10, 0)
        engine.on_boundary(0, 0.0, 1, None)
        # Writeback of region 1's own value before its phase 2.
        engine.on_nvm_writeback(0.0, ADDR - ADDR % 64, {ADDR: 10})
        entries = engine.pipelines[0].entries_in_order()
        state = CrashState(
            nvm_image=dict(nvm.image),
            core_entries=[list(entries)],
            num_cores=1,
            pc_checkpoints=dict(nvm.pc_checkpoints),
        )
        rec = recover(state, Module("empty"))
        assert rec.nvm_image[ADDR] == 10


class TestSystemLevelStaleReads:
    """Whole-stack runs with a tiny hierarchy to force regular-path
    writebacks racing the proxy path."""

    def _tiny_params(self, prevention=True):
        # Small caches: evictions reach NVM constantly.
        return SP.scaled().with_(
            l1_size_bytes=512,
            l2_size_bytes=1024,
            dram_cache_size_bytes=1024,
            stale_read_prevention=prevention,
        )

    def test_no_stale_reads_with_prevention(self):
        module = compile_capri(build_update_loop(n_iters=150, arr_words=256))
        metrics, _ = run_workload(
            module,
            [("main", [])],
            params=self._tiny_params(True),
            threshold=32,
        )
        assert metrics.nvm_writes_writeback > 0, "no writebacks: test is vacuous"
        assert metrics.stale_reads == 0

    def test_invalidation_counters_active(self):
        module = compile_capri(build_update_loop(n_iters=150, arr_words=256))
        metrics, _ = run_workload(
            module,
            [("main", [])],
            params=self._tiny_params(True),
            threshold=32,
        )
        assert metrics.invalidations >= 0
        assert metrics.nvm_writes_skipped == metrics.nvm_writes_skipped

    def test_loads_never_slowed_by_persistence(self):
        """Indirect-read freedom (Section 5.1.1): load latencies are
        identical with and without the persistence engine."""
        module = compile_capri(build_update_loop(n_iters=100, arr_words=128))
        params = self._tiny_params(True)
        with_p, _ = run_workload(module, [("main", [])], params=params, threshold=32)
        without_p, _ = run_workload(
            module, [("main", [])], params=params, threshold=32, persistence=False
        )
        # Same program, same hierarchy: identical hit/miss profile.
        assert with_p.l1_hits == without_p.l1_hits
        assert with_p.nvm_fills == without_p.nvm_fills
