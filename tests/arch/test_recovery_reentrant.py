"""Re-entrant recovery: the protocol itself is crashable and idempotent.

The tentpole contract (docs/INTERNALS.md §5.6): recovery executes as an
ordered sequence of durable steps over the persistent domain, keeps its
inputs (proxy buffers, WPQ journal) intact until a final recovery-complete
commit, and therefore converges — re-running recovery over a
recovery-crashed domain produces a state bit-identical to an
uninterrupted recovery.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.crash import (
    CrashInjector,
    CrashPlan,
    PowerFailure,
    run_until_crash,
)
from repro.arch.recovery import recover, resume_and_finish, run_recovery
from repro.fault.models import apply_faults, get_models
from repro.fault.multicrash import diff_recoveries
from repro.fault.oracle import differential_check, golden_run
from repro.isa.trace import Observer

from tests.arch.conftest import (
    build_pointer_chase,
    build_update_loop,
    compile_capri,
    data_memory,
)


def _crash_state(module, spawns, at):
    return run_until_crash(module, spawns, CrashPlan(at), threshold=32)


def _reenter(domain, module, at_step, strict=False):
    """Crash recovery at durable step ``at_step``; return the crashed
    domain, or None if recovery finished first (plan past end)."""
    work = domain.clone()
    injector = CrashInjector(
        None, CrashPlan(at_event=at_step), capture=lambda: work
    )
    try:
        run_recovery(work, module, strict=strict, observer=injector)
    except PowerFailure as pf:
        return pf.state
    return None


class TestStepEngine:
    def test_step_engine_matches_recover(self):
        """run_recovery over a clone is the same protocol recover() runs:
        identical image, resumes, shadow, report, and stats."""
        module = compile_capri(build_update_loop(n_iters=30))
        state = _crash_state(module, [("main", [])], 400)
        assert state is not None
        a = recover(state, module)
        b = run_recovery(state.clone(), module)
        assert diff_recoveries(a, b) is None
        assert b.steps > 0 and b.committed

    def test_observer_sees_every_durable_step(self):
        """Each durable step emits exactly one observer event — the hook
        CrashInjector counts — so steps == events."""

        class Counter(Observer):
            def __init__(self):
                self.events = 0

            def on_store(self, *a, **k):
                self.events += 1

            def on_ckpt(self, *a, **k):
                self.events += 1

            def on_boundary(self, *a, **k):
                self.events += 1

            def on_fence(self, *a, **k):
                self.events += 1

        module = compile_capri(build_update_loop(n_iters=30))
        state = _crash_state(module, [("main", [])], 400)
        assert state is not None
        counter = Counter()
        rec = run_recovery(state.clone(), module, observer=counter)
        assert counter.events == rec.steps >= 1

    def test_commit_clears_durable_inputs(self):
        """The final commit step retires the proxy journal: entries and
        WPQ cleared, PC checkpoints replaced by the resume continuations."""
        module = compile_capri(build_update_loop(n_iters=30))
        state = _crash_state(module, [("main", [])], 400)
        domain = state.clone()
        rec = run_recovery(domain, module)
        assert rec.committed
        assert all(not es for es in domain.core_entries)
        assert domain.wpq == []
        for core, resume in enumerate(rec.resumes):
            if resume is not None:
                cont, rid = domain.pc_checkpoints[core]
                assert cont == resume.continuation
                assert rid == resume.region_id


class TestReentry:
    def test_reentry_bit_identical_at_every_step(self):
        """Crash recovery at every durable step; re-entering over the
        crashed domain must reproduce the uninterrupted recovery exactly."""
        module = compile_capri(build_update_loop(n_iters=20))
        state = _crash_state(module, [("main", [])], 300)
        assert state is not None
        ref = run_recovery(state.clone(), module)
        assert ref.steps > 2
        for step in range(ref.steps):
            crashed = _reenter(state, module, step)
            assert crashed is not None, f"no crash at step {step}"
            final = run_recovery(crashed.clone(), module)
            assert diff_recoveries(ref, final) is None, f"step {step}"

    def test_plan_past_end_is_noop(self):
        module = compile_capri(build_update_loop(n_iters=20))
        state = _crash_state(module, [("main", [])], 300)
        ref = run_recovery(state.clone(), module)
        assert _reenter(state, module, ref.steps + 5) is None

    def test_inputs_survive_until_commit(self):
        """A crash at any pre-commit step leaves the proxy buffers and
        WPQ journal exactly as the outage left them — the invariant that
        makes re-entry possible at all."""
        module = compile_capri(build_update_loop(n_iters=20))
        state = _crash_state(module, [("main", [])], 300)
        ref = run_recovery(state.clone(), module)

        def journal(dom):
            return (
                [[(e.kind, e.addr, e.checksum) for e in es]
                 for es in dom.core_entries],
                list(dom.wpq),
            )

        want = journal(state)
        for step in (0, ref.steps // 2, ref.steps - 1):
            crashed = _reenter(state, module, step)
            assert crashed is not None
            assert journal(crashed) == want, f"step {step}"

    def test_reentry_chain_converges(self):
        """Crash recovery repeatedly (a chain of nested failures), then
        let it finish: still bit-identical, and the resumed execution
        still matches the crash-free reference."""
        module = compile_capri(build_pointer_chase(depth=8))
        spawns = [("main", [])]
        golden = golden_run(module, spawns)
        state = _crash_state(module, spawns, 250)
        assert state is not None
        ref = run_recovery(state.clone(), module)
        domain = state.clone()
        for step in (1, 3, 2, 1):
            crashed = _reenter(domain, module, step)
            if crashed is None:
                break
            domain = crashed
        final = run_recovery(domain, module)
        assert diff_recoveries(ref, final) is None
        finished = resume_and_finish(final, module, spawns)
        verdict = differential_check(golden, finished)
        assert verdict.equivalent, verdict.detail


class TestLenientReentry:
    def test_multicore_simultaneous_torn_boundaries(self):
        """Torn boundary records on *both* cores at once: lenient
        recovery quarantines/rolls back each core independently, stays
        contained — and is still idempotent under re-entry."""
        from repro.ir import IRBuilder, verify_module

        b = IRBuilder("mc")
        arr = b.module.alloc("arr", 128)
        with b.function("worker", params=["base", "n"]) as f:
            with f.for_range(f.param(1)) as i:
                idx = f.and_(i, 63)
                addr = f.add(f.param(0), f.shl(idx, 3))
                f.store(f.add(f.load(addr), 1), addr)
            f.ret()
        verify_module(b.module)
        module = compile_capri(b.module, threshold=16)
        spawns = [("worker", [arr, 40]), ("worker", [arr + 64 * 8, 40])]

        # A slow NVM drain keeps boundary records buffered in the proxy
        # long enough that both cores hold one at the same instant.
        from repro.arch import SimParams

        slow = SimParams.scaled().with_(
            nvm_write_ns=3000.0, nvm_write_parallelism=4
        )
        state = None
        for at in range(100, 1400, 37):
            cand = run_until_crash(
                module, spawns, CrashPlan(at), threshold=16, params=slow
            )
            if cand is None:
                break
            if all(
                any(e.is_boundary for e in es) for es in cand.core_entries
            ):
                state = cand
                break
        assert state is not None, "no snapshot with boundaries on all cores"

        # Tear the *last* boundary record on every core (checksum no
        # longer matches the payload — a mid-write outage on each).
        for es in state.core_entries:
            torn = [e for e in es if e.is_boundary][-1]
            torn.checksum ^= 0x1
        rec = recover(state, module, strict=False)
        assert not rec.report.clean
        assert sum(
            1 for f in rec.report.findings if f.kind == "torn-entry"
        ) >= 2
        finished = resume_and_finish(rec, module, spawns)
        verdict = differential_check(
            golden_run(module, spawns), finished, report=rec.report
        )
        assert verdict.equivalent or verdict.contained_by(rec.report)

        # Re-entrancy holds for quarantining recoveries too.
        ref = run_recovery(state.clone(), module, strict=False)
        for step in (0, ref.steps // 2, ref.steps - 1):
            crashed = _reenter(state, module, step)
            assert crashed is not None
            final = run_recovery(crashed.clone(), module, strict=False)
            assert diff_recoveries(ref, final) is None, f"step {step}"

    @given(
        at=st.integers(min_value=50, max_value=900),
        model_seed=st.integers(min_value=0, max_value=2**31),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_idempotence_across_fault_matrix(self, at, model_seed, frac):
        """Property: for any crash point, any injected corruption, and
        any nested-crash step, recover(crashed-recovery) == recover(once).
        Idempotence must hold even when recovery quarantines damage."""
        module = compile_capri(build_update_loop(n_iters=25, arr_words=8))
        state = _crash_state(module, [("main", [])], at)
        if state is None:
            return
        mutated, _ = apply_faults(
            state, get_models(["all"]), random.Random(model_seed)
        )
        ref = run_recovery(mutated.clone(), module, strict=False)
        step = min(int(frac * ref.steps), max(ref.steps - 1, 0))
        crashed = _reenter(mutated, module, step)
        if crashed is None:
            return
        final = run_recovery(crashed.clone(), module, strict=False)
        assert diff_recoveries(ref, final) is None, f"step {step}"
