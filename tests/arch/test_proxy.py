"""Tests for the proxy-buffer pipeline: two-phase stores, merging,
boundary gating, in-order region persistence, back-pressure."""

import pytest

from repro.arch.nvm import NVMain
from repro.arch.params import PersistMode, SimParams
from repro.arch.proxy import CoreProxyPipeline, ProxyOverflowError


def make_pipe(threshold=16, **param_kw):
    params = SimParams.scaled().with_(**param_kw)
    nvm = NVMain(params)
    return CoreProxyPipeline(0, params, nvm, threshold), nvm


class TestPhase1:
    def test_store_creates_entry_with_undo_redo(self):
        pipe, _ = make_pipe()
        pipe.record_store(0.0, 0x100, value=7, old=3)
        entry = pipe.fe[0]
        assert entry.addr == 0x100
        assert entry.redo == 7
        assert entry.undo == 3
        assert entry.redo_valid

    def test_same_address_same_region_merges(self):
        pipe, _ = make_pipe()
        pipe.record_store(0.0, 0x100, value=7, old=3)
        pipe.record_store(0.0, 0x100, value=9, old=7)
        assert len(pipe.fe) == 1
        entry = pipe.fe[0]
        assert entry.redo == 9  # latest value
        assert entry.undo == 3  # value before the *first* store
        assert pipe.entries_merged == 1

    def test_no_merge_across_regions(self):
        pipe, _ = make_pipe()
        pipe.record_store(0.0, 0x100, value=7, old=3)
        pipe.record_boundary(0.0, region_id=1, continuation="c1")
        pipe.record_store(0.0, 0x100, value=9, old=7)
        data = [e for e in pipe.entries_in_order() if not e.is_boundary]
        assert len(data) == 2
        assert pipe.entries_merged == 0

    def test_different_addresses_distinct_entries(self):
        pipe, _ = make_pipe()
        pipe.record_store(0.0, 0x100, 1, 0)
        pipe.record_store(0.0, 0x108, 2, 0)
        assert pipe.entries_created == 2


class TestBoundaries:
    def test_boundary_emitted_with_stores(self):
        pipe, _ = make_pipe()
        pipe.record_store(0.0, 0x100, 1, 0)
        pipe.record_boundary(0.0, 5, "cont")
        assert pipe.boundary_entries == 1
        boundary = [e for e in pipe.entries_in_order() if e.is_boundary][0]
        assert boundary.region_id == 5
        assert boundary.continuation == "cont"

    def test_empty_region_boundary_skipped(self):
        """Section 5.2.1: no boundary entry for store-less regions."""
        pipe, _ = make_pipe()
        pipe.record_boundary(0.0, 5, "cont")
        assert pipe.boundary_entries == 0
        assert pipe.boundaries_skipped == 1

    def test_spawn_boundary_always_emitted(self):
        pipe, _ = make_pipe()
        pipe.record_boundary(0.0, -1, "spawn")
        assert pipe.boundary_entries == 1

    def test_ckpt_only_region_emits_boundary(self):
        pipe, _ = make_pipe()
        pipe.record_ckpt(0.0, 0x4000_0000, 42)
        pipe.record_boundary(0.0, 3, "cont")
        assert pipe.boundary_entries == 1
        boundary = [e for e in pipe.entries_in_order() if e.is_boundary][0]
        assert boundary.ckpts == {0x4000_0000: 42}

    def test_staging_cleared_after_boundary(self):
        pipe, _ = make_pipe()
        pipe.record_ckpt(0.0, 0x4000_0000, 42)
        pipe.record_boundary(0.0, 3, "cont")
        assert pipe.staging == {}

    def test_staging_merges_same_slot(self):
        pipe, _ = make_pipe()
        pipe.record_ckpt(0.0, 0x4000_0000, 1)
        pipe.record_ckpt(0.0, 0x4000_0000, 2)
        assert pipe.staging == {0x4000_0000: 2}


class TestPhase2:
    def test_no_drain_before_boundary(self):
        """Section 5.2.2: the back-end does not flush entries until it
        accepts the region boundary entry."""
        pipe, nvm = make_pipe()
        pipe.record_store(0.0, 0x100, 7, 3)
        pipe.advance(1e9)
        assert nvm.peek(0x100) == 0  # not drained
        assert len(pipe.be) == 1  # transferred but held

    def test_drain_after_boundary(self):
        pipe, nvm = make_pipe()
        pipe.record_store(0.0, 0x100, 7, 3)
        pipe.record_boundary(0.0, 1, "c")
        pipe.advance(1e9)
        assert nvm.peek(0x100) == 7
        assert not pipe.be and not pipe.fe
        assert nvm.writes_redo == 1

    def test_invalid_redo_skipped(self):
        pipe, nvm = make_pipe()
        pipe.record_store(0.0, 0x100, 7, 3)
        pipe.record_boundary(0.0, 1, "c")
        pipe.invalidate_matching(0x100)
        pipe.advance(1e9)
        assert nvm.peek(0x100) == 0
        assert nvm.writes_skipped == 1

    def test_regions_drain_in_order(self):
        pipe, nvm = make_pipe()
        order = []
        real_redo = nvm.redo_write

        def spy(now, addr, value):
            order.append(addr)
            return real_redo(now, addr, value)

        nvm.redo_write = spy
        pipe.record_store(0.0, 0x100, 1, 0)
        pipe.record_boundary(0.0, 1, "a")
        pipe.record_store(0.0, 0x200, 2, 0)
        pipe.record_boundary(0.0, 2, "b")
        pipe.advance(1e9)
        assert order == [0x100, 0x200]

    def test_boundary_drain_writes_pc_checkpoint(self):
        pipe, nvm = make_pipe()
        pipe.record_store(0.0, 0x100, 1, 0)
        pipe.record_boundary(0.0, 9, "cont9")
        pipe.advance(1e9)
        assert nvm.pc_checkpoints[0] == ("cont9", 9)

    def test_boundary_drain_flushes_staged_ckpts(self):
        pipe, nvm = make_pipe()
        pipe.record_ckpt(0.0, 0x4000_0000, 42)
        pipe.record_boundary(0.0, 1, "c")
        pipe.advance(1e9)
        assert nvm.peek(0x4000_0000) == 42
        assert nvm.writes_ckpt == 1


class TestBackPressure:
    def test_fe_full_stalls_store(self):
        # Tiny FE; no boundary yet so BE cannot drain, but transfers still
        # proceed until BE fills.
        pipe, _ = make_pipe(threshold=8, frontend_entries=4)
        t = 0.0
        stalled = False
        for i in range(8):
            done = pipe.record_store(t, 0x100 + i * 8, i, 0)
            if done > t:
                stalled = True
            t = done
        assert pipe.fe_stall_cycles >= 0  # accounting exists
        # All 8 entries created despite fe_cap=4: transfers made space.
        assert pipe.entries_created == 8

    def test_region_overflow_detected(self):
        """A region bigger than FE+BE combined deadlocks the pipeline —
        the compiler contract prevents this; the architecture detects it."""
        pipe, _ = make_pipe(threshold=4, frontend_entries=4)
        with pytest.raises(ProxyOverflowError):
            for i in range(64):
                pipe.record_store(0.0, 0x1000 + i * 8, i, 0)

    def test_threshold_sized_region_fits(self):
        threshold = 16
        pipe, nvm = make_pipe(threshold=threshold, frontend_entries=4)
        for i in range(threshold):
            pipe.record_store(0.0, 0x1000 + i * 8, i, 0)
        pipe.record_boundary(0.0, 1, "c")
        pipe.advance(1e9)
        assert nvm.writes_redo == threshold


class TestSyncMode:
    def test_sync_boundary_waits_for_persistent_domain(self):
        pipe, nvm = make_pipe(persist_mode=PersistMode.SYNC)
        pipe.record_store(0.0, 0x100, 7, 3)
        done = pipe.record_boundary(0.0, 1, "c")
        # Stalled at least one proxy-path traversal: the whole region has
        # crossed into the memory controller's persistent domain.
        assert done >= pipe.params.proxy_path_cycles
        assert not pipe.fe  # everything left the front end
        assert pipe.sync_stall_cycles > 0

    def test_async_boundary_returns_immediately(self):
        pipe, nvm = make_pipe(persist_mode=PersistMode.ASYNC)
        pipe.record_store(0.0, 0x100, 7, 3)
        done = pipe.record_boundary(0.0, 1, "c")
        assert done == 0.0
        assert nvm.peek(0x100) == 0  # not yet durable


class TestCrashViewOrdering:
    def test_entries_in_order_be_before_fe(self):
        pipe, _ = make_pipe(frontend_entries=32)
        pipe.record_store(0.0, 0x100, 1, 0)
        pipe.advance(1e9)  # transfer to BE (no drain without boundary)
        pipe.record_store(1e9, 0x200, 2, 0)  # stays in FE (not advanced past)
        entries = pipe.entries_in_order()
        assert [e.addr for e in entries if not e.is_boundary] == [0x100, 0x200]
