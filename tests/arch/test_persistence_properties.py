"""Property tests of the persistence engine's durability invariants.

Hypothesis drives random interleavings of stores, boundaries, regular-path
writebacks, and drains against a single engine, then checks the paper's
invariants:

* **Post-drain convergence** — after every region commits and everything
  drains, NVM holds each address's architecturally-latest value (no stale
  NVM state survives, regardless of arrival order).
* **Crash consistency at any cut** — recovery over the surviving entries
  restores exactly the value each address had at the last committed
  boundary.
* **Undo chain integrity** — within a region, each address's first entry
  undo equals its pre-region value.
"""

from __future__ import annotations

from typing import Dict, List

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.arch.crash import CrashState
from repro.arch.nvm import NVMain
from repro.arch.params import SimParams
from repro.arch.persistence import PersistenceEngine
from repro.arch.recovery import recover
from repro.ir.module import Module

ADDRS = [0x1000, 0x1008, 0x1010, 0x1018]
THRESHOLD = 8

# An action is ('store', addr_idx) | ('boundary',) | ('writeback', addr_idx).
actions = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.integers(0, len(ADDRS) - 1)),
        st.tuples(st.just("boundary")),
        st.tuples(st.just("writeback"), st.integers(0, len(ADDRS) - 1)),
    ),
    min_size=1,
    max_size=40,
)


class Driver:
    """Replays an action list against engine + architectural shadow state."""

    def __init__(self, prevention: bool = True) -> None:
        params = SimParams.scaled().with_(stale_read_prevention=prevention)
        self.nvm = NVMain(params)
        self.engine = PersistenceEngine(params, self.nvm, 1, THRESHOLD)
        self.arch: Dict[int, int] = {}  # architectural (latest) values
        self.committed: Dict[int, int] = {}  # values at last boundary
        self.now = 0.0
        self.counter = 0
        self.stores_in_region = 0
        self.region = 1
        self.last_continuation = None

    def apply(self, action) -> None:
        self.now += 10.0
        if action[0] == "store":
            if self.stores_in_region >= THRESHOLD - 1:
                self.apply(("boundary",))
                self.now += 10.0
            addr = ADDRS[action[1]]
            self.counter += 1
            old = self.arch.get(addr, 0)
            self.arch[addr] = self.counter
            self.engine.on_store(0, self.now, addr, self.counter, old)
            self.stores_in_region += 1
        elif action[0] == "boundary":
            # ``None`` continuation: these engine-level tests check the
            # durable image; register restore is covered end to end in
            # test_recovery.py.
            self.engine.on_boundary(0, self.now, self.region, None)
            self.region += 1
            self.stores_in_region = 0
            self.committed = dict(self.arch)
        else:  # writeback: the cache evicts the line with current values
            addr = ADDRS[action[1]]
            if addr in self.arch:
                self.engine.on_nvm_writeback(
                    self.now, addr - addr % 64, {addr: self.arch[addr]}
                )

    def crash_state(self) -> CrashState:
        return CrashState(
            nvm_image=dict(self.nvm.image),
            core_entries=[list(self.engine.pipelines[0].entries_in_order())],
            num_cores=1,
            pc_checkpoints=dict(self.nvm.pc_checkpoints),
        )


class TestPostDrainConvergence:
    @given(seq=actions)
    @settings(max_examples=60, deadline=None)
    def test_nvm_converges_to_committed_values(self, seq):
        driver = Driver(prevention=True)
        for action in seq:
            driver.apply(action)
        driver.apply(("boundary",))  # commit the tail
        driver.engine.drain_all()
        for addr, value in driver.committed.items():
            assert driver.nvm.peek(addr) == value, hex(addr)

    @given(seq=actions)
    @settings(max_examples=30, deadline=None)
    def test_no_stale_reads_after_any_prefix(self, seq):
        driver = Driver(prevention=True)
        for action in seq:
            driver.apply(action)
            # A full-miss load at this instant must see the latest value
            # for addresses the regular path has delivered (writebacks
            # always carry the architectural value in this driver).
        driver.apply(("boundary",))
        driver.engine.advance_all(driver.now + 1e9)
        for addr in ADDRS:
            if addr in driver.committed:
                got = driver.engine.check_nvm_read(
                    driver.now + 1e9, addr, driver.committed[addr]
                )
                assert got == driver.committed[addr]
        assert driver.engine.stale_reads == 0


class TestCrashCutConsistency:
    @given(seq=actions, cut=st.integers(min_value=0, max_value=40))
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_recovery_restores_last_boundary_values(self, seq, cut):
        driver = Driver(prevention=True)
        committed_at_cut: Dict[int, int] = {}
        for i, action in enumerate(seq):
            if i == cut:
                break
            driver.apply(action)
        committed_at_cut = dict(driver.committed)
        state = driver.crash_state()
        recovered = recover(state, Module("empty"))
        for addr, value in committed_at_cut.items():
            assert recovered.nvm_image.get(addr, 0) == value, hex(addr)


class TestUndoChain:
    @given(seq=actions)
    @settings(max_examples=40, deadline=None)
    def test_first_entry_undo_is_pre_region_value(self, seq):
        driver = Driver(prevention=True)
        pre_region: Dict[int, int] = {}

        for action in seq:
            if action[0] == "store":
                # The driver inserts a boundary itself when a region hits
                # the store threshold — that starts a new region exactly
                # like an explicit boundary action does.
                if driver.stores_in_region >= THRESHOLD - 1:
                    pre_region.clear()
                addr = ADDRS[action[1]]
                if addr not in pre_region:
                    pre_region[addr] = driver.arch.get(addr, 0)
            driver.apply(action)
            if action[0] == "boundary":
                pre_region.clear()

        # Inspect the trailing (uncommitted) region's entries.
        entries = driver.engine.pipelines[0].entries_in_order()
        tail: List = []
        for e in entries:
            if e.is_boundary:
                tail = []
            else:
                tail.append(e)
        seen = set()
        for e in tail:
            if e.addr in seen:
                continue
            seen.add(e.addr)
            assert e.undo == pre_region.get(e.addr, 0), hex(e.addr)
