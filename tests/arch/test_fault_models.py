"""Fault models against a known-good crash snapshot.

Satellite contract: each corruption model applied to a good
:class:`CrashState` is *detected* by strict recovery (a typed
:class:`RecoveryError`) and *quarantined with a structured report* by
lenient recovery.  The partially-drained-WPQ model is the exception by
design: the surviving journal heals it transparently in both modes.
"""

from __future__ import annotations

import random

import pytest

from repro.arch.crash import CrashPlan, capture_crash_state, run_until_crash
from repro.arch.recovery import (
    CheckpointMismatchError,
    RecoveryError,
    TornEntryError,
    WpqCorruptionError,
    recover,
    resume_and_finish,
)
from repro.arch.system import build_system
from repro.fault.models import (
    CleanPowerLoss,
    CorruptCheckpointSlot,
    DroppedValidBits,
    PartiallyDrainedWpq,
    TornBoundaryWrite,
    TornEntryWrite,
    TornWpqRecord,
    apply_faults,
    available_models,
    get_models,
)
from repro.fault.oracle import differential_check, golden_run

from tests.arch.conftest import build_update_loop, compile_capri, data_memory


@pytest.fixture(scope="module")
def snapshot():
    """A mid-run crash state with surviving data + boundary entries, a
    journaled WPQ, and populated checkpoint slots — a target every fault
    model can bite into."""
    module = compile_capri(build_update_loop(n_iters=40, arr_words=16))
    spawns = [("main", [])]
    for at in range(100, 400, 7):
        state = run_until_crash(module, spawns, CrashPlan(at), threshold=32)
        if state is None:
            break
        entries = [e for es in state.core_entries for e in es]
        if (
            any(not e.is_boundary for e in entries)
            and any(e.is_boundary for e in entries)
            and state.wpq
            and state.ckpt_shadow
        ):
            return module, spawns, state
    pytest.fail("no crash index yields a fully-populated snapshot")


def _rng():
    return random.Random(1234)


class TestModelDetection:
    def _mutate(self, state, model):
        mutated, notes = apply_faults(state, [model], _rng())
        assert notes, f"{model.name} found no target in this snapshot"
        return mutated

    def test_clean_is_identity(self, snapshot):
        module, spawns, state = snapshot
        mutated, notes = apply_faults(state, [CleanPowerLoss()], _rng())
        assert notes == []
        rec = recover(mutated, module, strict=True)
        assert rec.report.clean

    def test_torn_entry_strict_raises(self, snapshot):
        module, _, state = snapshot
        mutated = self._mutate(state, TornEntryWrite())
        with pytest.raises(TornEntryError):
            recover(mutated, module, strict=True)

    def test_torn_entry_lenient_quarantines(self, snapshot):
        module, spawns, state = snapshot
        mutated = self._mutate(state, TornEntryWrite())
        rec = recover(mutated, module, strict=False)
        assert not rec.report.clean
        assert rec.report.quarantined_entries >= 1
        assert any(f.kind == "torn-entry" for f in rec.report.findings)
        # Containment: resume completes, and damage is limited to what
        # the report names.
        golden = golden_run(module, spawns)
        finished = resume_and_finish(rec, module, spawns)
        verdict = differential_check(golden, finished, report=rec.report)
        assert verdict.equivalent or verdict.contained_by(rec.report)

    def test_dropped_valid_bits_strict_raises(self, snapshot):
        module, _, state = snapshot
        mutated = self._mutate(state, DroppedValidBits(k=2))
        with pytest.raises(TornEntryError):
            recover(mutated, module, strict=True)

    def test_dropped_valid_bits_lenient_quarantines(self, snapshot):
        module, spawns, state = snapshot
        mutated = self._mutate(state, DroppedValidBits(k=2))
        rec = recover(mutated, module, strict=False)
        assert any(f.kind == "torn-entry" for f in rec.report.findings)
        finished = resume_and_finish(rec, module, spawns)
        verdict = differential_check(
            golden_run(module, spawns), finished, report=rec.report
        )
        assert verdict.equivalent or verdict.contained_by(rec.report)

    def test_torn_boundary_strict_raises(self, snapshot):
        module, _, state = snapshot
        mutated = self._mutate(state, TornBoundaryWrite())
        with pytest.raises(TornEntryError):
            recover(mutated, module, strict=True)

    def test_torn_boundary_lenient_rolls_back(self, snapshot):
        module, spawns, state = snapshot
        mutated = self._mutate(state, TornBoundaryWrite())
        rec = recover(mutated, module, strict=False)
        assert not rec.report.clean
        finished = resume_and_finish(rec, module, spawns)
        verdict = differential_check(
            golden_run(module, spawns), finished, report=rec.report
        )
        assert verdict.equivalent or verdict.contained_by(rec.report)

    def test_partial_wpq_heals_in_both_modes(self, snapshot):
        """The journal survives (persistent domain): replay restores the
        array exactly, so recovery matches the unfaulted recovery."""
        module, spawns, state = snapshot
        mutated = self._mutate(state, PartiallyDrainedWpq(k=4))
        baseline = recover(state, module, strict=True)
        for strict in (True, False):
            rec = recover(mutated, module, strict=strict)
            assert rec.report.clean
            assert rec.report.wpq_replayed >= 1
            assert rec.nvm_image == baseline.nvm_image

    def test_torn_wpq_strict_raises(self, snapshot):
        module, _, state = snapshot
        mutated = self._mutate(state, TornWpqRecord())
        with pytest.raises(WpqCorruptionError):
            recover(mutated, module, strict=True)

    def test_torn_wpq_lenient_taints(self, snapshot):
        module, spawns, state = snapshot
        mutated = self._mutate(state, TornWpqRecord())
        rec = recover(mutated, module, strict=False)
        assert any(f.kind == "torn-wpq" for f in rec.report.findings)
        assert rec.report.tainted_addrs

    def test_corrupt_ckpt_detected_or_harmless(self, snapshot):
        """A flipped checkpoint cell: strict recovery raises if the slot
        is reloaded at resume; a slot outside the live reload window is
        harmless bookkeeping either way (the oracle sweep covers the
        end-to-end behaviour)."""
        module, spawns, state = snapshot
        mutated = self._mutate(state, CorruptCheckpointSlot())
        try:
            strict_rec = recover(mutated, module, strict=True)
        except CheckpointMismatchError:
            # Detected: lenient mode must fence the core instead.
            rec = recover(mutated, module, strict=False)
            assert any(
                f.kind == "checksum-mismatch" for f in rec.report.findings
            )
            assert rec.report.quarantined_cores
            # The fenced core never runs: resume yields no silent garbage.
            finished = resume_and_finish(rec, module, spawns)
            verdict = differential_check(
                golden_run(module, spawns), finished, report=rec.report
            )
            assert verdict.contained_by(rec.report)
        else:
            # The slot was not part of the resume's reload window.
            assert strict_rec.report.clean


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        assert names[0] == "clean"
        assert {"torn-entry", "dropped-valid-bits", "partial-wpq",
                "corrupt-ckpt"} <= set(names)

    def test_get_models_all(self):
        models = get_models(["all"])
        assert [m.name for m in models] == available_models()

    def test_models_never_mutate_the_original(self, snapshot):
        module, _, state = snapshot
        before = [
            [(e.checksum, e.redo, e.undo, e.redo_valid, dict(e.ckpts))
             for e in es]
            for es in state.core_entries
        ]
        image_before = dict(state.nvm_image)
        wpq_before = list(state.wpq)
        apply_faults(state, get_models(["all"]), _rng())
        after = [
            [(e.checksum, e.redo, e.undo, e.redo_valid, dict(e.ckpts))
             for e in es]
            for es in state.core_entries
        ]
        assert before == after
        assert state.nvm_image == image_before
        assert state.wpq == wpq_before


class TestCaptureAliasing:
    def test_capture_is_isolated_from_live_pipeline(self):
        """Regression: ``capture_crash_state`` must deep-copy every
        mutable entry field — mutating the live system after capture (or
        the capture itself) must not leak through."""
        module = compile_capri(build_update_loop(n_iters=30, arr_words=8))
        machine, system = build_system(module, [("main", [])], threshold=32)

        from repro.arch.crash import CrashInjector, CrashPlan, PowerFailure

        injector = CrashInjector(system, CrashPlan(180))
        with pytest.raises(PowerFailure) as exc:
            machine.run(injector)
        state = exc.value.state

        live = [e for p in system.persist.pipelines for e in p.entries_in_order()]
        snap = [e for es in state.core_entries for e in es]
        assert live and snap

        frozen = [
            (e.addr, e.undo, e.redo, e.redo_valid, dict(e.ckpts), e.checksum)
            for e in snap
        ]
        # Mutate every live entry through the legitimate hardware paths
        # *and* directly.
        for e in live:
            e.redo ^= 0xFF
            e.undo ^= 0xFF
            e.redo_valid = not e.redo_valid
            e.ckpts[0xDEAD] = 42
            e.refresh_checksum()
        assert frozen == [
            (e.addr, e.undo, e.redo, e.redo_valid, dict(e.ckpts), e.checksum)
            for e in snap
        ]

        # And the other direction: fault models mutating the snapshot
        # must not perturb the live pipeline.
        live_frozen = [
            (e.addr, e.undo, e.redo, e.redo_valid, dict(e.ckpts))
            for e in live
        ]
        for e in snap:
            e.ckpts[0xBEEF] = 7
            e.undo ^= 0xAA
        assert live_frozen == [
            (e.addr, e.undo, e.redo, e.redo_valid, dict(e.ckpts))
            for e in live
        ]

    def test_clone_preserves_torn_checksum(self):
        from repro.arch.proxy import KIND_DATA, ProxyEntry

        e = ProxyEntry(KIND_DATA, 0, 0.0, addr=8, undo=1, redo=2)
        e.redo ^= 0xFF  # tear it (no refresh)
        dup = e.clone()
        assert not dup.intact
        assert dup.checksum == e.checksum
