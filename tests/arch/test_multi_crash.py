"""Repeated power failures: crash, recover, resume under Capri, crash
again — whole-system persistence must survive any number of outages.

The resumed runs execute under a fresh persistence engine seeded with the
recovered durable image and PC checkpoints, so each subsequent failure
exercises the full two-phase/undo+redo machinery again, not just the
functional machine.
"""

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.arch import SimParams
from repro.arch.crash import CrashInjector, CrashPlan, PowerFailure, run_until_crash
from repro.arch.recovery import prepare_resumed_run, recover, resume_and_finish
from repro.compiler import CapriCompiler, OptConfig
from repro.isa import Machine

from tests.arch.conftest import build_update_loop, compile_capri, data_memory


def run_with_repeated_crashes(module, spawns, crash_points, params=None, threshold=32):
    """Execute with a sequence of crash points; return the final machine.

    ``crash_points[i]`` is the event index for the i-th outage, counted
    within that leg of execution.  Legs after the first resume under a
    fresh persistence engine.  Returns (machine, crashes_taken).
    """
    params = params or SimParams.scaled()
    state = run_until_crash(
        module, spawns, CrashPlan(crash_points[0]), params=params, threshold=threshold
    )
    if state is None:  # finished before the first crash
        machine = Machine(module)
        for fn, args in spawns:
            machine.spawn(fn, args)
        machine.run()
        return machine, 0

    crashes = 1
    for at in crash_points[1:]:
        recovered = recover(state, module)
        machine, system = prepare_resumed_run(
            recovered, module, spawns, params=params, threshold=threshold
        )
        injector = CrashInjector(system, CrashPlan(at))
        try:
            machine.run(injector)
        except PowerFailure as pf:
            state = pf.state
            crashes += 1
            continue
        return machine, crashes  # finished this leg

    # Final recovery: run to completion.
    recovered = recover(state, module)
    machine = resume_and_finish(recovered, module, spawns)
    return machine, crashes


class TestRepeatedCrashes:
    def _reference(self, module, spawns):
        machine = Machine(module)
        for fn, args in spawns:
            machine.spawn(fn, args)
        machine.run()
        return data_memory(machine)

    def test_two_crashes(self):
        module = compile_capri(build_update_loop(n_iters=60))
        spawns = [("main", [])]
        ref = self._reference(module, spawns)
        machine, crashes = run_with_repeated_crashes(
            module, spawns, [400, 300]
        )
        assert crashes == 2
        assert data_memory(machine) == ref

    def test_five_crashes(self):
        module = compile_capri(build_update_loop(n_iters=80))
        spawns = [("main", [])]
        ref = self._reference(module, spawns)
        machine, crashes = run_with_repeated_crashes(
            module, spawns, [500, 200, 350, 150, 275]
        )
        assert crashes >= 2
        assert data_memory(machine) == ref

    def test_immediate_re_crash(self):
        """The second outage hits almost immediately after resume — the
        durable PC checkpoint must carry the resume point across."""
        module = compile_capri(build_update_loop(n_iters=50))
        spawns = [("main", [])]
        ref = self._reference(module, spawns)
        machine, crashes = run_with_repeated_crashes(
            module, spawns, [600, 1, 1, 1]
        )
        assert crashes >= 2
        assert data_memory(machine) == ref

    def test_crashes_with_tiny_caches(self):
        tiny = SimParams.scaled().with_(
            l1_size_bytes=512, l2_size_bytes=1024, dram_cache_size_bytes=1024
        )
        module = compile_capri(build_update_loop(n_iters=120, arr_words=256))
        spawns = [("main", [])]
        ref = self._reference(module, spawns)
        machine, crashes = run_with_repeated_crashes(
            module, spawns, [700, 450, 300], params=tiny
        )
        assert crashes >= 2
        assert data_memory(machine) == ref

    @given(
        points=st.lists(
            st.integers(min_value=1, max_value=900), min_size=2, max_size=4
        )
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_crash_sequences(self, points):
        module = compile_capri(build_update_loop(n_iters=50))
        spawns = [("main", [])]
        ref = self._reference(module, spawns)
        machine, _ = run_with_repeated_crashes(module, spawns, points)
        assert data_memory(machine) == ref

    def test_multicore_repeated_crashes(self):
        from repro.ir import IRBuilder, verify_module

        b = IRBuilder("mc")
        arr = b.module.alloc("arr", 128)
        with b.function("worker", params=["base", "n"]) as f:
            with f.for_range(f.param(1)) as i:
                idx = f.and_(i, 63)
                addr = f.add(f.param(0), f.shl(idx, 3))
                f.store(f.add(f.load(addr), 1), addr)
            f.ret()
        verify_module(b.module)
        module = compile_capri(b.module)
        spawns = [("worker", [arr, 40]), ("worker", [arr + 64 * 8, 40])]
        ref = self._reference(module, spawns)
        machine, crashes = run_with_repeated_crashes(
            module, spawns, [500, 300]
        )
        assert data_memory(machine) == ref
