"""Exhaustive crash sweeps under the differential oracle.

The campaign's contract: with a clean power-loss model, crashing at
*every* observer event index and recovering must be observationally
equivalent to never crashing — for every index, over workloads with
non-idempotent updates, calls, branches, and I/O.
"""

from __future__ import annotations

import pytest

from repro.fault.campaign import (
    CampaignConfig,
    run_campaign,
    select_crash_points,
)
from repro.fault.oracle import golden_run

from tests.arch.conftest import (
    build_pointer_chase,
    build_update_loop,
    compile_capri,
)


def _sweep(module, spawns, **overrides):
    cfg = CampaignConfig(
        models=("clean",), strict=True, minimize=False, **overrides
    )
    return run_campaign(module, spawns, cfg, name="test")


class TestExhaustiveCleanSweep:
    def test_update_loop_every_index(self):
        """Read-modify-write loop: every crash index must recover exactly
        (lost or double-applied regions diverge immediately)."""
        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        result = _sweep(module, [("main", [])])
        assert result.total_events > 50
        assert len(result.outcomes) == result.total_events
        assert result.ok, result.failures[0]
        assert all(o.status == "ok" for o in result.outcomes)

    def test_pointer_chase_every_index(self):
        """Linked-structure updates with calls and branches."""
        module = compile_capri(build_pointer_chase(depth=5))
        result = _sweep(module, [("main", [])])
        assert result.total_events > 50
        assert result.ok, result.failures[0]
        assert all(o.status == "ok" for o in result.outcomes)

    def test_multicore_every_index(self):
        from repro.ir import IRBuilder, verify_module

        b = IRBuilder("mc")
        arr = b.module.alloc("arr", 32)
        with b.function("worker", params=["base", "n"]) as f:
            with f.for_range(f.param(1)) as i:
                idx = f.and_(i, 15)
                addr = f.add(f.param(0), f.shl(idx, 3))
                f.store(f.add(f.load(addr), 1), addr)
            f.ret()
        verify_module(b.module)
        module = compile_capri(b.module)
        spawns = [("worker", [arr, 6]), ("worker", [arr + 16 * 8, 6])]
        result = _sweep(module, spawns)
        assert result.ok, result.failures[0]


class TestDeterminism:
    def test_same_seed_same_outcomes(self):
        module = compile_capri(build_update_loop(n_iters=6, arr_words=8))
        cfg = dict(models=("all",), strict=False, sample=20, minimize=False)
        a = run_campaign(module, [("main", [])], CampaignConfig(seed=7, **cfg))
        b = run_campaign(module, [("main", [])], CampaignConfig(seed=7, **cfg))
        assert [(o.event_index, o.status, o.detail) for o in a.outcomes] == [
            (o.event_index, o.status, o.detail) for o in b.outcomes
        ]

    def test_different_seed_different_points(self):
        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        golden = golden_run(module, [("main", [])])
        pts_a = select_crash_points(golden.total_events, 15, seed=1)
        pts_b = select_crash_points(golden.total_events, 15, seed=2)
        assert pts_a != pts_b
        # Edge cases are always swept.
        for pts in (pts_a, pts_b):
            assert 0 in pts and golden.total_events - 1 in pts

    def test_exhaustive_when_sample_exceeds_events(self):
        assert select_crash_points(10, 100, seed=3) == list(range(10))
        assert select_crash_points(10, None, seed=3) == list(range(10))


class TestAdversarialSweep:
    def test_all_models_lenient_never_silent(self):
        """The headline guarantee: every injected corruption is either
        healed, detected, or quarantined — never a silent divergence."""
        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        cfg = CampaignConfig(
            models=("all",), strict=False, sample=25, minimize=False
        )
        result = run_campaign(module, [("main", [])], cfg, name="test")
        assert result.ok, result.failures[0]
        assert all(
            o.status in ("ok", "quarantined", "finished")
            for o in result.outcomes
        )

    def test_all_models_strict_detects(self):
        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        cfg = CampaignConfig(
            models=("torn-entry",), strict=True, sample=25, minimize=False
        )
        result = run_campaign(module, [("main", [])], cfg, name="test")
        assert result.ok, result.failures[0]
        # Wherever a data entry survived to be torn, strict mode raised.
        assert any(o.status == "detected" for o in result.outcomes)
        assert all(
            o.status == "detected"
            for o in result.outcomes
            if o.injected
        )


class TestHarnessWiring:
    def test_eval_harness_campaign(self):
        from repro.eval.harness import EvalHarness

        harness = EvalHarness(scale=0.05)
        result = harness.fault_campaign(
            "genome",
            CampaignConfig(sample=5, minimize=False),
        )
        assert result.workload == "genome"
        assert result.ok, result.failures[0]


class TestCli:
    def test_main_clean_sweep_exits_zero(self, capsys):
        from repro.fault.__main__ import main

        rc = main(
            [
                "--workload",
                "genome",
                "--scale",
                "0.05",
                "--sample",
                "8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_main_adversarial_lenient(self, capsys):
        from repro.fault.__main__ import main

        rc = main(
            [
                "--workload",
                "genome",
                "--scale",
                "0.05",
                "--sample",
                "6",
                "--models",
                "all",
                "--lenient",
            ]
        )
        assert rc == 0
        assert "quarantined" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        from repro.fault.models import get_models

        with pytest.raises(KeyError):
            get_models(["no-such-model"])
