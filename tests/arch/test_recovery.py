"""Crash-recovery correctness (paper Section 5.4).

The contract under test: *crash anywhere, recover, resume, and the final
state is exactly what an uninterrupted run produces*.  This exercises the
entire co-design — compiler region formation, checkpoint insertion,
pruning recovery blocks, undo+redo logging, the two-phase atomic store,
and the recovery protocol — end to end.
"""

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.arch import SimParams
from repro.arch.crash import CrashPlan, run_until_crash
from repro.arch.recovery import RecoveryError, recover, resume_and_finish
from repro.compiler import OptConfig
from repro.isa import Machine

from tests.arch.conftest import (
    build_pointer_chase,
    build_update_loop,
    compile_capri,
    data_memory,
    reference_run,
)


def crash_recover_compare(module, spawns, at_event, threshold=32, params=None):
    """Crash at ``at_event``, recover, resume; return (match?, details)."""
    ref_machine = Machine(module)
    for fn, args in spawns:
        ref_machine.spawn(fn, args)
    ref_machine.run()
    ref_data = data_memory(ref_machine)

    state = run_until_crash(
        module,
        spawns,
        CrashPlan(at_event),
        params=params or SimParams.scaled(),
        threshold=threshold,
    )
    if state is None:
        return None, None  # finished before crash point
    rec = recover(state, module)
    finished = resume_and_finish(rec, module, spawns)
    return data_memory(finished) == ref_data, rec


class TestSingleCoreRecovery:
    @pytest.mark.parametrize("at_event", [0, 1, 3, 17, 101, 333, 777, 1500])
    def test_update_loop_recovers_exactly(self, at_event):
        module = compile_capri(build_update_loop(n_iters=60))
        ok, _ = crash_recover_compare(module, [("main", [])], at_event)
        assert ok in (None, True)

    def test_dense_sweep_update_loop(self):
        """Every 29th event across the whole run."""
        module = compile_capri(build_update_loop(n_iters=40))
        failures = []
        for at in range(0, 1400, 29):
            ok, _ = crash_recover_compare(module, [("main", [])], at)
            if ok is False:
                failures.append(at)
        assert failures == []

    def test_pointer_chase_with_calls(self):
        module = compile_capri(build_pointer_chase(depth=12))
        for at in range(0, 700, 41):
            ok, _ = crash_recover_compare(module, [("main", [])], at)
            assert ok in (None, True), f"crash at {at}"

    @pytest.mark.parametrize("threshold", [8, 32, 256])
    def test_recovery_across_thresholds(self, threshold):
        module = compile_capri(build_update_loop(n_iters=30), threshold=threshold)
        for at in [7, 99, 430]:
            ok, _ = crash_recover_compare(
                module, [("main", [])], at, threshold=threshold
            )
            assert ok in (None, True), f"threshold={threshold} at={at}"

    @pytest.mark.parametrize(
        "config_name", ["region", "+ckpt", "+unrolling", "+pruning", "+licm"]
    )
    def test_recovery_across_opt_ladder(self, config_name):
        """Recovery must hold at every optimisation level with checkpoints.

        The 'region' config is *not failure atomic* (no checkpoints — the
        paper says so explicitly), so only run it through the machinery to
        ensure nothing crashes; don't check state equality."""
        cfg = OptConfig.ladder(32)[config_name]
        module = compile_capri(build_update_loop(n_iters=30), config=cfg)
        for at in [11, 151, 600]:
            ok, _ = crash_recover_compare(module, [("main", [])], at)
            if config_name != "region":
                assert ok in (None, True), f"{config_name} at={at}"

    @given(at=st.integers(min_value=0, max_value=2000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_crash_points(self, at):
        module = compile_capri(build_update_loop(n_iters=50))
        ok, _ = crash_recover_compare(module, [("main", [])], at)
        assert ok in (None, True)

    def test_recovery_uses_undo_for_uncommitted_tail(self):
        module = compile_capri(build_update_loop(n_iters=60))
        saw_rollback = False
        for at in range(50, 900, 61):
            ok, rec = crash_recover_compare(module, [("main", [])], at)
            assert ok in (None, True)
            if rec is not None and rec.regions_rolled_back:
                saw_rollback = True
        assert saw_rollback, "no crash point exercised undo rollback"

    def test_recovery_runs_recovery_blocks(self):
        """A workload with pruned checkpoints must exercise recovery-block
        reconstruction at some crash point."""
        from tests.compiler.conftest import build_branchy_kernel

        module = compile_capri(build_branchy_kernel(), config=OptConfig.licm(16))
        func = module.function("main")
        assert func.recovery_blocks, "pruning produced no recovery blocks"
        ran = False
        for at in range(0, 260, 7):
            state = run_until_crash(
                module, [("main", [5])], CrashPlan(at), threshold=16
            )
            if state is None:
                continue
            rec = recover(state, module)
            finished = resume_and_finish(rec, module, [("main", [5])])
            ref_rv, ref_data = reference_run(module, args=[5])
            assert data_memory(finished) == ref_data, f"at={at}"
            if rec.recovery_blocks_run:
                ran = True
        assert ran, "no crash point executed a recovery block"


class TestMultiCoreRecovery:
    def _disjoint_module(self, iters=40):
        from repro.ir import IRBuilder, verify_module

        b = IRBuilder("mc")
        arr = b.module.alloc("arr", 128)
        with b.function("worker", params=["base", "n"]) as f:
            with f.for_range(f.param(1)) as i:
                idx = f.and_(i, 63)
                addr = f.add(f.param(0), f.shl(idx, 3))
                v = f.load(addr)
                f.store(f.add(v, 1), addr)
            f.ret()
        verify_module(b.module)
        return b.module, arr

    def test_two_cores_disjoint_recovery(self):
        module, arr = self._disjoint_module()
        module = compile_capri(module)
        spawns = [("worker", [arr, 40]), ("worker", [arr + 64 * 8, 40])]
        for at in range(0, 1500, 173):
            ok, _ = crash_recover_compare(module, spawns, at)
            assert ok in (None, True), f"at={at}"

    def test_crash_before_second_core_starts(self):
        module, arr = self._disjoint_module()
        module = compile_capri(module)
        spawns = [("worker", [arr, 10]), ("worker", [arr + 64 * 8, 10])]
        ok, rec = crash_recover_compare(module, spawns, 2)
        assert ok in (None, True)


class TestRecoveryProtocolDetails:
    def test_cold_restart_when_no_boundary_committed(self):
        module = compile_capri(build_update_loop(n_iters=10))
        state = run_until_crash(
            module, [("main", [])], CrashPlan(0), threshold=32
        )
        assert state is not None
        rec = recover(state, module)
        assert rec.resumes[0] is None  # nothing durable yet: cold restart
        finished = resume_and_finish(rec, module, [("main", [])])
        _, ref_data = reference_run(module)
        assert data_memory(finished) == ref_data

    def test_recovered_registers_match_region_live_in(self):
        """Restored registers agree with the machine's values at the resume
        point for every live-in register of the interrupted region."""
        module = compile_capri(build_update_loop(n_iters=40))
        checked = 0
        for at in [333, 666, 999]:
            state = run_until_crash(
                module, [("main", [])], CrashPlan(at), threshold=32
            )
            if state is None:
                continue
            rec = recover(state, module)
            resume = rec.resumes[0]
            if resume is None:
                continue
            func = module.functions[resume.continuation.func_name]
            regions = {r.region_id: r for r in func.meta.get("regions", [])}
            region = regions.get(resume.region_id)
            if region is None:
                continue
            # Replay a fresh machine up to the same boundary commit count
            # and compare live-in registers.
            finished = resume_and_finish(rec, module, [("main", [])])
            _, ref_data = reference_run(module)
            assert data_memory(finished) == ref_data
            checked += 1
        assert checked > 0

    def test_unknown_function_in_continuation_raises(self):
        from repro.arch.crash import CrashState
        from repro.arch.proxy import KIND_BOUNDARY, ProxyEntry
        from repro.isa.machine import Continuation

        module = compile_capri(build_update_loop(n_iters=5))
        bogus = Continuation("ghost", "entry", 0, ())
        entry = ProxyEntry(KIND_BOUNDARY, 0, 0.0, region_id=0, continuation=bogus)
        state = CrashState(nvm_image={}, core_entries=[[entry]], num_cores=1)
        with pytest.raises(RecoveryError, match="ghost"):
            recover(state, module)

    def test_crash_plan_validation(self):
        with pytest.raises(ValueError):
            CrashPlan(-1)
