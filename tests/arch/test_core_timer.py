"""Tests for the per-core cycle accumulator and its use by the system."""

import pytest

from repro.arch.core import ATOMIC_EXTRA_CYCLES, FENCE_CYCLES, CoreTimer
from repro.arch.params import SimParams
from repro.arch.system import CapriSystem


class TestCoreTimer:
    def setup_method(self):
        self.timer = CoreTimer(SimParams.paper())

    def test_retire_charges_cpi(self):
        self.timer.retire()
        self.timer.retire()
        assert self.timer.cycle == pytest.approx(2 * 0.5)
        assert self.timer.retired == 2

    def test_add_latency(self):
        self.timer.add_latency(12.5)
        assert self.timer.cycle == pytest.approx(12.5)

    def test_stall_until_future(self):
        self.timer.add_latency(10)
        self.timer.stall_until(25.0)
        assert self.timer.cycle == 25.0
        assert self.timer.stall_cycles == pytest.approx(15.0)

    def test_stall_until_past_is_noop(self):
        self.timer.add_latency(50)
        self.timer.stall_until(10.0)
        assert self.timer.cycle == 50.0
        assert self.timer.stall_cycles == 0.0


class TestSystemEventCosts:
    def _system(self, **param_kw):
        return CapriSystem(
            SimParams.scaled().with_(**param_kw), num_cores=1, threshold=32
        )

    def test_fence_cost(self):
        system = self._system()
        system.on_fence(0)
        assert system.cores[0].cycle == pytest.approx(FENCE_CYCLES)

    def test_boundary_cost(self):
        system = self._system(boundary_cycles=3.0)
        system.on_boundary(0, -1, None)
        assert system.cores[0].cycle >= 3.0

    def test_ckpt_cost(self):
        system = self._system(ckpt_store_cycles=2.0)
        system.on_ckpt(0, 1, 42, 0x4000_0000)
        assert system.cores[0].cycle >= 2.0

    def test_atomic_costs_more_than_store(self):
        s1, s2 = self._system(), self._system()
        s1.on_store(0, 0x1000, 1, 0)
        s2.on_atomic(0, 0x1000, 1, 0)
        assert s2.cores[0].cycle >= s1.cores[0].cycle + ATOMIC_EXTRA_CYCLES - 1e-9

    def test_io_cost_includes_device_latency(self):
        system = self._system(io_latency_ns=100.0)
        system.on_io(0, 1, 42)
        assert system.cores[0].cycle >= system.params.io_latency_cycles

    def test_io_barrier_drains_committed_regions(self):
        system = self._system()
        # Build one committed region with a pending phase 2.
        system.on_store(0, 0x1000, 5, 0)
        system.on_boundary(0, 1, None)
        assert system.nvm.peek(0x1000) == 0  # not yet durable
        system.on_io(0, 1, 42)
        assert system.nvm.peek(0x1000) == 5  # barrier made it durable

    def test_cores_grow_on_demand(self):
        system = self._system()
        system.on_retire(5, "BinOp")
        assert len(system.cores) == 6
