"""Shared workload builders for architecture tests."""

from __future__ import annotations

from typing import Tuple

import pytest

from repro.compiler import CapriCompiler, OptConfig
from repro.ir import IRBuilder, verify_module
from repro.ir.module import Module, is_ckpt_addr
from repro.isa import Machine


def data_memory(machine: Machine) -> dict:
    """Final data-segment memory (checkpoint storage masked out)."""
    return {a: v for a, v in machine.memory.items() if not is_ckpt_addr(a)}


def build_update_loop(n_iters: int = 100, arr_words: int = 64) -> Module:
    """Read-modify-write loop: *not* idempotent across naive re-execution,
    so double-applied or lost regions show up immediately."""
    b = IRBuilder("update_loop")
    arr = b.module.alloc("arr", arr_words, init=list(range(arr_words)))
    with b.function("kernel", params=["base", "n"]) as f:
        acc = f.li(0)
        with f.for_range(f.param(1)) as i:
            idx = f.and_(i, arr_words - 1)
            addr = f.add(f.param(0), f.shl(idx, 3))
            v = f.load(addr)
            f.store(f.add(v, f.mul(i, 3)), addr)
            f.add(acc, v, dst=acc)
        f.ret(acc)
    with b.function("main") as f:
        s = f.call("kernel", [arr, n_iters], returns=True)
        f.store(s, arr)
        f.ret(s)
    verify_module(b.module)
    return b.module


def build_pointer_chase(depth: int = 30) -> Module:
    """Linked-structure update with calls and branches."""
    b = IRBuilder("chase")
    nodes = b.module.alloc("nodes", 2 * depth)
    # node i: [value, next_index]; chain 0 -> 1 -> ... -> depth-1 -> -1
    init = []
    for i in range(depth):
        init += [i * 7, i + 1 if i + 1 < depth else -1]
    b.module.initial_data.update(
        {nodes + k * 8: v for k, v in enumerate(init)}
    )
    with b.function("bump", params=["base", "idx"]) as f:
        addr = f.add(f.param(0), f.shl(f.mul(f.param(1), 2), 3))
        v = f.load(addr)
        f.store(f.add(v, 1), addr)
        f.ret(f.load(addr, offset=8))  # next index
    with b.function("main") as f:
        idx = f.li(0)
        with f.while_loop(lambda: f.cmp("sge", idx, 0)):
            nxt = f.call("bump", [nodes, idx], returns=True)
            f.move(idx, nxt)
        f.ret(idx)
    verify_module(b.module)
    return b.module


def compile_capri(module: Module, threshold: int = 32, config=None) -> Module:
    cfg = config or OptConfig.licm(threshold)
    return CapriCompiler(cfg).compile(module).module


def reference_run(module: Module, func: str = "main", args=()) -> Tuple[int, dict]:
    m = Machine(module)
    rv = m.run_function(func, args)
    return rv, data_memory(m)
