"""Nested-failure (multi-crash) campaign mode.

Crash chains injected into recovery itself (``CampaignConfig.depth`` > 1)
must converge to the uninterrupted recovery — judged against the
recovery-idempotence oracle on top of the differential one — and a
planted non-idempotent-recovery mutant must be caught.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec
from repro.arch.persistence import ProtocolMutations
from repro.fault.campaign import (
    FAILURE_STATUSES,
    CampaignConfig,
    run_campaign,
    run_workload_campaign,
)
from repro.fault.multicrash import run_multi_crash_point

from tests.arch.conftest import build_update_loop, compile_capri


def _config(**overrides):
    base = dict(
        models=("clean",),
        strict=True,
        minimize=False,
        sample=8,
        depth=2,
        secondary_sample=5,
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestDepthTwoSweep:
    def test_update_loop_depth2_zero_failures(self):
        module = compile_capri(build_update_loop(n_iters=10, arr_words=8))
        result = run_campaign(module, [("main", [])], _config(), name="ul")
        assert result.ok, result.failures[0]
        assert result.depth == 2
        # Chains actually ran: some outcomes carry a secondary crash.
        assert any(o.chain for o in result.outcomes)
        assert all(o.status not in FAILURE_STATUSES for o in result.outcomes)
        assert all(o.crashes == 1 + len(o.chain) for o in result.outcomes)

    def test_deep_call_probe_depth2(self):
        """The deep-call-chain probe: checkpoint-array rebuild across many
        frames must survive crash-during-recovery at every sampled step."""
        result = run_workload_campaign(
            "deep-call", _config(check=True), scale=0.05
        )
        assert result.ok, result.failures[0]
        assert any(o.chain for o in result.outcomes)

    def test_depth3_chains(self):
        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        cfg = _config(sample=4, depth=3, secondary_sample=3)
        result = run_campaign(module, [("main", [])], cfg, name="ul")
        assert result.ok, result.failures[0]
        assert any(len(o.chain) == 2 for o in result.outcomes)

    def test_chain_budget_truncates_and_is_counted(self):
        module = compile_capri(build_update_loop(n_iters=10, arr_words=8))
        cfg = _config(sample=4, secondary_sample=None, max_chains_per_point=3)
        result = run_campaign(module, [("main", [])], cfg, name="ul")
        assert result.ok, result.failures[0]
        assert result.truncated_chains > 0
        assert "truncated" in result.summary()

    def test_depth1_unchanged_by_default(self):
        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        cfg = _config(depth=1)
        result = run_campaign(module, [("main", [])], cfg, name="ul")
        assert result.ok
        assert all(o.chain == () for o in result.outcomes)


class TestMutantTeeth:
    def test_early_clear_mutant_detected(self):
        """recovery_early_clear retires the proxy journal before the
        commit point — invisible to any single-crash run, fatal to
        re-entry.  The depth-2 campaign must catch it."""
        module = compile_capri(build_update_loop(n_iters=10, arr_words=8))
        muts = ProtocolMutations.single("recovery_early_clear")
        result = run_campaign(
            module, [("main", [])], _config(mutations=muts), name="ul"
        )
        assert not result.ok
        assert any(
            o.status == "divergent-recovery" for o in result.failures
        ), [o.status for o in result.failures]
        # And the failure names its chain (primary crash + recovery step).
        bad = next(o for o in result.failures
                   if o.status == "divergent-recovery")
        assert bad.chain

    def test_early_clear_invisible_to_single_crash(self):
        """The control: at depth 1 the same mutant sails through — which
        is exactly why the nested-failure mode exists."""
        module = compile_capri(build_update_loop(n_iters=10, arr_words=8))
        muts = ProtocolMutations.single("recovery_early_clear")
        result = run_campaign(
            module, [("main", [])],
            _config(depth=1, mutations=muts), name="ul",
        )
        assert result.ok, result.failures[0]


class TestDeterminism:
    def test_same_seed_same_chains(self):
        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        golden_cfg = dict(sample=5, depth=2, secondary_sample=4)
        a = run_campaign(module, [("main", [])], _config(seed=3, **golden_cfg))
        b = run_campaign(module, [("main", [])], _config(seed=3, **golden_cfg))
        assert [(o.event_index, o.chain, o.status) for o in a.outcomes] == [
            (o.event_index, o.chain, o.status) for o in b.outcomes
        ]

    def test_point_runner_returns_truncation(self):
        from repro.fault.oracle import golden_run
        from repro.fault.models import get_models

        module = compile_capri(build_update_loop(n_iters=8, arr_words=8))
        spawns = [("main", [])]
        golden = golden_run(module, spawns)
        cfg = _config(secondary_sample=None, max_chains_per_point=2)
        outcomes, truncated = run_multi_crash_point(
            module, spawns, golden, 40, get_models(["clean"]), cfg
        )
        assert outcomes and truncated > 0


class TestSpecSeedRegression:
    def test_explicit_zero_seed_is_honoured(self):
        """Regression: ``seed=0`` is falsy — from_spec must not silently
        swap it for the class default."""
        spec = RunSpec(workload="genome", seed=0)
        default = CampaignConfig.seed
        cfg = CampaignConfig.from_spec(spec, sample=5)
        assert cfg.seed == 0
        assert default != 0 or cfg.seed == default  # guard stays meaningful

    def test_unset_seed_falls_back_to_default(self):
        spec = RunSpec(workload="genome")
        assert spec.seed is None
        cfg = CampaignConfig.from_spec(spec, sample=5)
        assert cfg.seed == CampaignConfig.seed

    def test_nonzero_seed_passes_through(self):
        cfg = CampaignConfig.from_spec(RunSpec(workload="genome", seed=99))
        assert cfg.seed == 99


class TestReporting:
    @pytest.fixture(scope="class")
    def lenient_result(self):
        module = compile_capri(build_update_loop(n_iters=10, arr_words=8))
        cfg = CampaignConfig(
            models=("all",), strict=False, minimize=False,
            sample=10, depth=2, secondary_sample=3,
        )
        return run_campaign(module, [("main", [])], cfg, name="ul")

    def test_quarantine_detail_in_summary(self, lenient_result):
        assert lenient_result.ok, lenient_result.failures[0]
        text = lenient_result.summary()
        assert "depth=2" in text
        assert "quarantine detail:" in text

    def test_stats_payload_shape(self, lenient_result):
        stats = lenient_result.to_stats()
        assert stats["depth"] == 2
        assert stats["ok"] is True
        q = stats["quarantine"]
        assert {
            "quarantined_outcomes", "quarantined_entries",
            "fenced_cores", "tainted_addrs",
        } <= set(q)
        assert sum(stats["counts"].values()) == len(lenient_result.outcomes)
        json.dumps(stats)  # JSON-ready end to end

    def test_quarantined_outcomes_carry_detail(self, lenient_result):
        quarantined = [
            o for o in lenient_result.outcomes if o.status == "quarantined"
        ]
        assert quarantined
        assert any(
            o.quarantined_entries or o.fenced_cores or o.tainted_addrs
            for o in quarantined
        )


class TestCli:
    def test_multi_crash_cli_with_stats_json(self, capsys, tmp_path):
        from repro.fault.__main__ import main

        out_path = tmp_path / "stats.json"
        rc = main([
            "--workload", "deep-call",
            "--scale", "0.05",
            "--sample", "5",
            "--multi-crash",
            "--secondary-sample", "3",
            "--stats-json", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out and "depth=2" in out
        # --stats-json is a deprecated alias for --json: same envelope.
        payload = json.loads(out_path.read_text())
        assert payload["command"] == "fault"
        stats = payload["data"]
        assert stats["ok"] is True and stats["depth"] == 2

    def test_depth_requires_positive(self):
        from repro.fault.__main__ import main

        with pytest.raises(SystemExit):
            main(["--workload", "deep-call", "--depth", "0"])
