"""Tests for the memory hierarchy: level classification, the writeback
cascade, coherence, and the exclusive-dirty migration invariant."""

import pytest

from repro.arch.memctrl import MemoryHierarchy
from repro.arch.nvm import NVMain
from repro.arch.params import SimParams

TINY = SimParams.scaled().with_(
    l1_size_bytes=512, l2_size_bytes=1024, dram_cache_size_bytes=1024
)


def make_hierarchy(num_cores=1, params=TINY, sink=None):
    nvm = NVMain(params)
    received = sink if sink is not None else []
    mem = MemoryHierarchy(
        params, num_cores, nvm, on_nvm_writeback=lambda l, w: received.append((l, w))
    )
    return mem, received


class TestLevels:
    def test_first_touch_fills_from_nvm(self):
        mem, _ = make_hierarchy()
        _, level = mem.load(0, 0x10000, 0)
        assert level == "nvm"
        assert mem.nvm_fills == 1

    def test_second_touch_hits_l1(self):
        mem, _ = make_hierarchy()
        mem.load(0, 0x10000, 0)
        _, level = mem.load(0, 0x10000, 0)
        assert level == "l1"

    def test_latency_ordering(self):
        mem, _ = make_hierarchy()
        lat_nvm, _ = mem.load(0, 0x10000, 0)
        lat_l1, _ = mem.load(0, 0x10000, 0)
        assert lat_nvm > lat_l1 > 0

    def test_l1_eviction_falls_back_to_l2(self):
        mem, _ = make_hierarchy()
        # L1 = 512B/64B = 8 lines (1 set x 8 ways); touch 9 lines.
        for i in range(9):
            mem.load(0, 0x10000 + i * 64, 0)
        _, level = mem.load(0, 0x10000, 0)  # evicted from L1, still in L2
        assert level == "l2"

    def test_store_write_allocates(self):
        mem, _ = make_hierarchy()
        _, hit = mem.store(0, 0x10000, 1)
        assert not hit
        _, hit = mem.store(0, 0x10000, 2)
        assert hit


class TestWritebackCascade:
    def test_dirty_data_reaches_nvm_through_all_levels(self):
        mem, received = make_hierarchy()
        mem.store(0, 0x10000, 99)
        mem.flush_all()
        flat = {}
        for _, words in received:
            flat.update(words)
        assert flat[0x10000] == 99

    def test_clean_lines_never_reach_nvm(self):
        mem, received = make_hierarchy()
        for i in range(50):  # loads only
            mem.load(0, 0x10000 + i * 64, 0)
        mem.flush_all()
        assert received == []

    def test_conflict_evictions_push_to_nvm_during_run(self):
        mem, received = make_hierarchy()
        # More dirty lines than the whole hierarchy holds (1024B dram = 16
        # lines): writebacks must reach NVM before any flush.
        for i in range(64):
            mem.store(0, 0x10000 + i * 64, i)
        assert received, "no regular-path writebacks despite overflow"


class TestDirtyMigration:
    """The exclusive-dirty invariant: after an L1 fill, no stale dirty
    copy of the line lingers below (regression test for the lost-update
    crash bug — see MemoryHierarchy._migrate_dirty_up)."""

    def _force_down_to(self, mem, addr, value):
        """Dirty a line and push it out of L1 (and L2) by conflicts."""
        mem.store(0, addr, value)
        # Evict from L1 (8 ways) and L2 (16 ways at 64 lines? tiny: 16
        # lines, 16 ways = 1 set): storm distinct lines far from addr.
        for i in range(1, 40):
            mem.load(0, addr + i * 64, 0)

    def test_refetched_line_reclaims_dirty_words(self):
        mem, received = make_hierarchy()
        addr = 0x10000
        self._force_down_to(mem, addr, 7)
        # The line now sits dirty somewhere below L1.  Re-touch it:
        mem.load(0, addr, 7)
        # Store a newer value; the stale 7 must ride *with* the line, not
        # linger below to be written back later.
        mem.store(0, addr, 8)
        mem.flush_all()
        flat = {}
        for _, words in received:
            flat.update(words)
        assert flat[addr] == 8

    def test_no_stale_writeback_after_newer_store(self):
        """The exact lost-update scenario: stale dirty copy below, newer
        store above, then the stale copy's eviction must not deliver the
        old value to NVM after the new one."""
        mem, received = make_hierarchy()
        addr = 0x10000
        self._force_down_to(mem, addr, 1)
        mem.store(0, addr, 2)  # refetch + store: dirty migrates up
        # Evict everything in cascade order.
        mem.flush_all()
        values = [w[addr] for _, w in received if addr in w]
        assert values, "line never reached NVM"
        # The *last* NVM arrival for addr is the newest value.
        assert values[-1] == 2
        # And the stale value 1 never arrives after 2.
        if 1 in values:
            assert values.index(1) < values.index(2)

    def test_migration_preserves_other_words_of_line(self):
        mem, received = make_hierarchy()
        addr = 0x10000
        mem.store(0, addr, 5)  # word 0 of the line
        for i in range(1, 40):  # push the line down
            mem.load(0, addr + i * 64, 0)
        mem.store(0, addr + 8, 6)  # word 1: refetches the line
        mem.flush_all()
        flat = {}
        for _, words in received:
            flat.update(words)
        assert flat[addr] == 5
        assert flat[addr + 8] == 6


class TestCoherence:
    def test_remote_dirty_flushed_before_local_write(self):
        mem, received = make_hierarchy(num_cores=2)
        mem.store(0, 0x10000, 1)  # core 0 dirties the line
        mem.store(1, 0x10000, 2)  # core 1 takes it over
        mem.flush_all()
        flat = {}
        for _, words in received:
            flat.update(words)
        assert flat[0x10000] == 2
        assert mem.coherence_transfers >= 1

    def test_remote_dirty_flushed_before_local_read(self):
        mem, received = make_hierarchy(num_cores=2)
        mem.store(0, 0x10000, 9)
        mem.load(1, 0x10000, 9)
        mem.flush_all()
        flat = {}
        for _, words in received:
            flat.update(words)
        assert flat[0x10000] == 9

    def test_disjoint_lines_no_transfers(self):
        mem, _ = make_hierarchy(num_cores=2)
        mem.store(0, 0x10000, 1)
        mem.store(1, 0x20000, 2)
        assert mem.coherence_transfers == 0
