"""Tests for the analysis modules: ablations, recovery latency, energy."""

import pytest

from repro.arch.params import SimParams
from repro.eval.ablations import (
    STREAM_PROBE,
    frontend_size_sweep,
    inlining_ablation,
    main as ablations_main,
    nvm_bandwidth_sweep,
    prevention_cost,
)
from repro.workloads.probes import build_stream_probe
from repro.eval.energy import ENTRY_BYTES, drain_budgets, main as energy_main
from repro.eval.recovery_analysis import (
    analyze_recovery,
    main as recovery_main,
)

SCALE = 0.25


class TestStreamProbe:
    def test_builds_and_runs(self):
        from repro.ir import verify_module
        from repro.isa import Machine, CountingObserver

        module, spawns = build_stream_probe(trips=100)
        verify_module(module)
        m = Machine(module)
        obs = CountingObserver()
        for fn, a in spawns:
            m.spawn(fn, a)
        m.run(obs)
        assert obs.stores == 100

    def test_distinct_addresses_no_merging(self):
        from repro.arch.system import run_workload
        from repro.compiler import CapriCompiler, OptConfig

        module, spawns = build_stream_probe(trips=200)
        capri = CapriCompiler(OptConfig.licm(256)).compile(module).module
        metrics, _ = run_workload(capri, spawns, threshold=256)
        assert metrics.proxy_merged == 0


class TestAblationSweeps:
    def test_frontend_sweep_structure(self):
        cells = frontend_size_sweep(
            sizes=(2, 32), benchmarks=(STREAM_PROBE,), scale=SCALE
        )
        assert set(cells[STREAM_PROBE]) == {"2", "32"}
        assert cells[STREAM_PROBE]["2"] >= cells[STREAM_PROBE]["32"] * 0.99

    def test_nvm_sweep_monotone(self):
        cells = nvm_bandwidth_sweep(
            parallelism=(16, 1024), benchmarks=(STREAM_PROBE,), scale=SCALE
        )
        assert cells[STREAM_PROBE]["x16"] >= cells[STREAM_PROBE]["x1024"]

    def test_prevention_never_stales(self):
        cells = prevention_cost(benchmarks=("genome",), scale=SCALE)
        assert cells["genome"]["stale_on"] == 0

    def test_inlining_never_hurts_loop_code(self):
        cells = inlining_ablation(benchmarks=("ssca2",), scale=SCALE)
        assert cells["ssca2"]["+inlining"] == pytest.approx(
            cells["ssca2"]["full"], rel=0.05
        )

    def test_cli(self, capsys):
        rc = ablations_main(["inlining", "--scale", str(SCALE)])
        assert rc == 0
        assert "inlining" in capsys.readouterr().out


class TestRecoveryAnalysis:
    def test_sweep_bounded_by_capacity(self):
        sweep = analyze_recovery("genome", threshold=32, scale=SCALE)
        assert sweep.costs
        assert sweep.max_entries <= 32 + 1 + 32  # BE+boundary + FE

    def test_estimates_positive(self):
        sweep = analyze_recovery("genome", threshold=64, scale=SCALE)
        for cost in sweep.costs:
            assert cost.estimated_ns > 0
            assert cost.ckpt_slots_reloaded >= 0

    def test_cli(self, capsys):
        rc = recovery_main(
            ["--workload", "genome", "--threshold", "64", "--scale", str(SCALE)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "independent of run length" in out


class TestEnergy:
    def test_capri_domain_much_smaller_than_eadr(self):
        budgets = drain_budgets(num_cores=8, threshold=256)
        assert budgets["Capri"].bytes_to_drain * 10 < budgets["eADR"].bytes_to_drain

    def test_memory_mode_makes_eadr_absurd(self):
        plain = drain_budgets(num_cores=8, include_dram_cache=False)
        mm = drain_budgets(num_cores=8, include_dram_cache=True)
        assert mm["eADR"].bytes_to_drain > plain["eADR"].bytes_to_drain * 100
        # Capri is unaffected: the DRAM cache stays volatile.
        assert mm["Capri"].bytes_to_drain == plain["Capri"].bytes_to_drain

    def test_capri_scales_with_threshold(self):
        small = drain_budgets(threshold=32)["Capri"].bytes_to_drain
        large = drain_budgets(threshold=1024)["Capri"].bytes_to_drain
        assert large > small
        # ... by roughly the back-end entry delta.
        assert large - small == pytest.approx(
            8 * (1024 - 32) * ENTRY_BYTES, rel=0.01
        )

    def test_budget_fields_consistent(self):
        b = drain_budgets()["Capri"]
        assert b.drain_time_us > 0
        assert b.energy_uj > 0

    def test_cli(self, capsys):
        rc = energy_main(["--cores", "8"])
        assert rc == 0
        assert "smaller" in capsys.readouterr().out
