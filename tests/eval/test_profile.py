"""Tests for the workload profiler — including the shape claims DESIGN.md
makes about the stand-ins, asserted quantitatively."""

import pytest

from repro.eval.profile import (
    CharacterizationObserver,
    WorkloadProfile,
    main,
    profile_workload,
)

SCALE = 0.3


@pytest.fixture(scope="module")
def profiles():
    names = [
        "519.lbm_r",
        "531.deepsjeng_r",
        "505.mcf_r",
        "508.namd_r",
        "oskernel",
        "radix",
    ]
    return {n: profile_workload(n, scale=SCALE) for n in names}


class TestObserver:
    def test_counts_and_working_set(self):
        obs = CharacterizationObserver()
        obs.on_retire(0, "BinOp")
        obs.on_retire(0, "Load")
        obs.on_load(0, 0x100)
        obs.on_retire(0, "Store")
        obs.on_store(0, 0x108, 1, 0)
        assert obs.retired == 3
        assert obs.loads == 1 and obs.stores == 1
        assert obs.lines_touched == 1  # same 64B line
        obs.on_load(0, 0x1000)
        assert obs.lines_touched == 2


class TestShapeClaims:
    """DESIGN.md's substitution table, checked against measurements."""

    def test_lbm_is_most_store_dense(self, profiles):
        lbm = profiles["519.lbm_r"].store_density
        assert lbm > 10
        for name, p in profiles.items():
            if name != "519.lbm_r":
                assert lbm > p.store_density, name

    def test_call_dense_workloads(self, profiles):
        # deepsjeng (recursion) and oskernel (syscalls) are the call-heavy
        # shapes; loop kernels make essentially no calls.
        assert profiles["531.deepsjeng_r"].call_density > 3
        assert profiles["oskernel"].call_density > 3
        assert profiles["519.lbm_r"].call_density < 1
        assert profiles["508.namd_r"].call_density < 1

    def test_mcf_is_load_heavy_pointer_chaser(self, profiles):
        mcf = profiles["505.mcf_r"]
        assert mcf.load_density > mcf.store_density

    def test_call_dense_code_has_short_regions(self, profiles):
        # Calls are mandatory boundaries: regions can't grow past them.
        assert (
            profiles["oskernel"].avg_region_instrs
            < profiles["519.lbm_r"].avg_region_instrs / 3
        )

    def test_region_stores_below_threshold(self, profiles):
        for name, p in profiles.items():
            assert p.avg_region_stores <= 256, name

    def test_ckpt_fraction_reasonable(self, profiles):
        for name, p in profiles.items():
            assert 0.0 <= p.ckpt_fraction < 0.25, name


class TestCLI:
    def test_main_single_workload(self, capsys):
        rc = main(["radix", "--scale", str(SCALE)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "radix" in out
        assert "st/100" in out
