"""Tests for report rendering: geometric means and table layout."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.report import add_suite_gmeans, format_table, geomean


class TestGeomean:
    def test_single_value(self):
        assert geomean([2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-1.0])

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1, max_size=20))
    def test_bounded_by_min_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1, max_size=20))
    def test_matches_log_definition(self, values):
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geomean(values) == pytest.approx(expected)

    def test_order_invariant(self):
        assert geomean([1.1, 1.5, 0.9]) == pytest.approx(geomean([0.9, 1.1, 1.5]))


class TestFormatTable:
    def test_basic_layout(self):
        cells = {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0}}
        text = format_table("T", ["a", "b"], ["x", "y"], cells)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "benchmark" in lines[1]
        assert "x" in lines[1] and "y" in lines[1]
        assert "1.000" in text and "3.000" in text

    def test_missing_cell_renders_dash(self):
        cells = {"a": {"x": 1.0}}
        text = format_table("T", ["a"], ["x", "y"], cells)
        assert "-" in text.splitlines()[-1]

    def test_custom_format(self):
        cells = {"a": {"x": 12.345}}
        text = format_table("T", ["a"], ["x"], cells, fmt="{:.1f}")
        assert "12.3" in text
        assert "12.345" not in text

    def test_columns_aligned(self):
        cells = {
            "short": {"col": 1.0},
            "a-much-longer-name": {"col": 2.0},
        }
        text = format_table("T", list(cells), ["col"], cells)
        lines = text.splitlines()[1:]
        assert len({len(l) for l in lines}) == 1  # all rows equal width


class TestRenderBars:
    def _cells(self):
        return {"bench": {"32": 1.2, "256": 1.05}}

    def test_bars_scale_with_values(self):
        from repro.eval.report import render_bars

        text = render_bars("T", ["bench"], ["32", "256"], self._cells())
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 2
        big = lines[0].count("#")
        small = lines[1].count("#")
        assert big > small

    def test_baseline_start(self):
        from repro.eval.report import render_bars

        # All values above 1.0: bars measure the overhead above baseline.
        text = render_bars(
            "T", ["bench"], ["32", "256"], self._cells(), baseline=1.0, width=10
        )
        # The 1.2 bar fills the full width, the 1.05 bar a quarter.
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].count("#") == 10
        assert 1 <= lines[1].count("#") <= 4

    def test_values_below_baseline_start_at_zero(self):
        from repro.eval.report import render_bars

        cells = {"b": {"x": 0.5, "y": 1.0}}
        text = render_bars("T", ["b"], ["x", "y"], cells, baseline=1.0)
        assert "0.500" in text  # rendered, not dropped

    def test_missing_cells_skipped(self):
        from repro.eval.report import render_bars

        cells = {"b": {"x": 1.0}}
        text = render_bars("T", ["b"], ["x", "y"], cells)
        assert "y" not in [l.strip().split(" ")[0] for l in text.splitlines()]

    def test_empty_cells(self):
        from repro.eval.report import render_bars

        assert render_bars("Title", [], [], {}) == "Title"

    def test_chart_cli_integration(self, capsys):
        from repro.eval.figures import main

        rc = main(["fig9", "--scale", "0.1", "--suite", "cpu2017", "--chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "|" in out and "#" in out


class TestSuiteGmeans:
    def test_gmean_rows_inserted_in_paper_order(self):
        cells = {
            "a1": {"x": 1.0},
            "a2": {"x": 4.0},
            "b1": {"x": 2.0},
        }
        suites = {"sa": ["a1", "a2"], "sb": ["b1"]}
        rows = add_suite_gmeans(cells, suites, ["x"])
        assert rows == ["a1", "a2", "sa_gmean", "b1", "sb_gmean", "overall_gmean"]
        assert cells["sa_gmean"]["x"] == pytest.approx(2.0)
        assert cells["sb_gmean"]["x"] == pytest.approx(2.0)
        assert cells["overall_gmean"]["x"] == pytest.approx(2.0)

    def test_missing_suite_members_skipped(self):
        cells = {"a1": {"x": 1.0}}
        suites = {"sa": ["a1", "ghost"], "sb": ["also-ghost"]}
        rows = add_suite_gmeans(cells, suites, ["x"])
        assert "sb_gmean" not in rows
        assert cells["sa_gmean"]["x"] == pytest.approx(1.0)

    def test_overall_covers_all_suites(self):
        cells = {"a": {"x": 1.0}, "b": {"x": 16.0}}
        suites = {"sa": ["a"], "sb": ["b"]}
        add_suite_gmeans(cells, suites, ["x"])
        assert cells["overall_gmean"]["x"] == pytest.approx(4.0)
