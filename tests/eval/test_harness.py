"""Tests for the evaluation harness and the figure entry points.

Figure functions run at a tiny scale here — these tests check wiring and
invariants (normalisation, caching, labels), not the published numbers;
the shape assertions live in benchmarks/.
"""

import pytest

from repro.arch.params import SimParams
from repro.compiler import OptConfig
from repro.eval.figures import (
    ALL_BENCHMARKS,
    FIG8_THRESHOLDS,
    FIGURE_SUITES,
    fig8,
    fig9,
    fig10,
    fig11,
    headline,
    main,
    render_figure,
)
from repro.eval.harness import EvalHarness

TINY = 0.1


@pytest.fixture(scope="module")
def harness():
    return EvalHarness(params=SimParams.scaled(), scale=TINY)


class TestHarness:
    def test_baseline_cached(self, harness):
        first = harness.baseline_cycles("ssca2")
        assert harness.baseline_cycles("ssca2") == first
        key = harness.spec("ssca2").baseline().fingerprint()
        assert key in harness._baseline_cache

    def test_baseline_cache_not_stale_after_mutation(self):
        """The footgun: name-keyed caching served stale cycles after a
        live harness's scale/params/quantum changed.  Fingerprint keying
        gets a fresh baseline per combination."""
        h = EvalHarness(params=SimParams.scaled(), scale=TINY)
        small = h.baseline_cycles("ssca2")
        h.scale = TINY * 4
        large = h.baseline_cycles("ssca2")
        assert large > small
        h.scale = TINY
        assert h.baseline_cycles("ssca2") == small
        assert len(h._baseline_cache) == 2

    def test_run_produces_normalized_cycles(self, harness):
        result = harness.run("ssca2", OptConfig.licm(64), "full")
        assert result.normalized_cycles >= 1.0
        assert result.overhead_pct == pytest.approx(
            (result.normalized_cycles - 1) * 100
        )
        assert result.config_label == "full"
        assert result.suite == "stamp"

    def test_region_stats_only_when_requested(self, harness):
        without = harness.run("ssca2", OptConfig.licm(64))
        with_stats = harness.run(
            "ssca2", OptConfig.licm(64), collect_region_stats=True
        )
        assert without.region_stats is None
        assert with_stats.region_stats is not None
        assert with_stats.region_stats.regions_executed > 0

    def test_volatile_config_normalizes_to_one(self, harness):
        result = harness.run("ssca2", OptConfig.volatile(), "volatile")
        assert result.normalized_cycles == pytest.approx(1.0)


class TestFigureFunctions:
    def test_figure_suites_exclude_os(self):
        assert "os" not in FIGURE_SUITES
        assert len(ALL_BENCHMARKS) == 19

    def test_fig8_structure(self, harness):
        cells = fig8(suite="cpu2017", thresholds=[32, 256], harness=harness)
        assert set(cells) == set(FIGURE_SUITES["cpu2017"])
        for row in cells.values():
            assert set(row) == {"32", "256"}
            assert all(v > 0 for v in row.values())

    def test_fig9_structure(self, harness):
        cells = fig9(suite="cpu2017", harness=harness)
        ladder = list(OptConfig.ladder().keys())
        for row in cells.values():
            assert list(row.keys()) == ladder

    def test_fig10_fig11_positive(self, harness):
        for fn in (fig10, fig11):
            cells = fn(suite="cpu2017", harness=harness)
            for row in cells.values():
                assert all(v >= 0 for v in row.values())

    def test_headline_keys(self, harness):
        out = headline(harness=harness)
        assert set(out) == {"cpu2017", "stamp", "splash3", "overall"}

    def test_fig8_threshold_constant(self):
        assert FIG8_THRESHOLDS == [32, 64, 128, 256, 512, 1024]


class TestCLI:
    def test_render_figure_produces_table(self):
        text = render_figure("fig8", scale=TINY, suite="cpu2017")
        assert "Figure 8" in text
        assert "cpu2017_gmean" in text
        assert "overall_gmean" in text

    def test_main_fig9(self, capsys):
        rc = main(["fig9", "--scale", str(TINY), "--suite", "stamp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "+licm" in out

    def test_main_headline(self, capsys):
        rc = main(["headline", "--scale", str(TINY)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overall" in out

    def test_main_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
