"""Test the one-shot report generator (tiny scale)."""

import os


def test_make_report(tmp_path):
    from repro.eval.make_report import main

    out = tmp_path / "REPORT.md"
    rc = main(["--out", str(out), "--scale", "0.1"])
    assert rc == 0
    text = out.read_text()
    for section in ["fig8", "fig9", "fig10", "fig11", "headline",
                    "naive comparison", "recovery latency",
                    "residual energy"]:
        assert section in text, section
    assert "overall_gmean" in text
