"""Unit tests for the reference persistency automaton.

These drive :class:`repro.check.model.PersistencyModel` directly with
hand-written event sequences — no simulator — so each taxonomy class is
pinned to the exact protocol rule that produces it.
"""

import pytest

from repro.check.model import MULTI_WRITER, PersistencyModel
from repro.check.violations import (
    CORRUPT_UNDO,
    LOST_REDO,
    OUT_OF_ORDER_DRAIN,
    PHANTOM_PERSIST,
    PREMATURE_PERSIST,
    STALE_BOUNDARY_PC,
    STALE_REDO_OVERWRITE,
    UNCOVERED_CKPT_SLOT,
)

CONT = "resume@loop"  # opaque continuation stand-in (proxy folds its repr)


def kinds(findings):
    return [kind for kind, _, _, _ in findings]


def commit_one_store(model, core=0, addr=0x100, old=0, new=7, region=1):
    """store -> entry -> boundary: one committed single-store region."""
    model.machine_store(core, addr, new, old)
    assert model.entry_created(core, 0, addr, old, new) == []
    model.machine_boundary(core, region, CONT)


class TestCleanLifecycle:
    def test_full_region_roundtrip_is_silent(self):
        m = PersistencyModel()
        commit_one_store(m)
        assert m.redo_drained(0, 0, 0x100, 7) == []
        assert m.boundary_drained(0, 0, 1, CONT, {}, True) == []
        cm = m.cores[0]
        assert not cm.emitted
        assert cm.drained_boundaries == 1
        assert m.committed_value[0x100] == 7

    def test_empty_region_does_not_commit(self):
        m = PersistencyModel()
        m.machine_boundary(0, 3, CONT)  # no stores, no staging
        assert 0 not in m.cores or not m.cores[0].emitted

    def test_spawn_boundary_always_commits(self):
        # region_id == -1 (the spawn prologue) emits even when empty.
        m = PersistencyModel()
        m.machine_boundary(0, -1, CONT)
        assert len(m.cores[0].emitted) == 1

    def test_merge_updates_redo(self):
        m = PersistencyModel()
        m.machine_store(0, 0x8, 1, 0)
        assert m.entry_created(0, 0, 0x8, 0, 1) == []
        m.machine_store(0, 0x8, 2, 1)
        assert m.entry_merged(0, 0, 0x8, 2) == []
        m.machine_boundary(0, 1, CONT)
        assert m.redo_drained(0, 0, 0x8, 2) == []


class TestEntryValidation:
    def test_wrong_undo_is_corrupt_undo(self):
        m = PersistencyModel()
        m.machine_store(0, 0x100, 7, 3)
        out = m.entry_created(0, 0, 0x100, 99, 7)
        assert kinds(out) == [CORRUPT_UNDO]

    def test_wrong_redo_is_lost_redo(self):
        m = PersistencyModel()
        m.machine_store(0, 0x100, 7, 3)
        out = m.entry_created(0, 0, 0x100, 3, 99)
        assert kinds(out) == [LOST_REDO]

    def test_entry_without_store_is_phantom(self):
        m = PersistencyModel()
        out = m.entry_created(0, 0, 0x100, 0, 7)
        assert kinds(out) == [PHANTOM_PERSIST]

    def test_entry_tagged_wrong_region_is_premature(self):
        m = PersistencyModel()
        m.machine_store(0, 0x100, 7, 0)
        out = m.entry_created(0, 5, 0x100, 0, 7)
        assert PREMATURE_PERSIST in kinds(out)

    def test_merge_after_commit_is_premature(self):
        m = PersistencyModel()
        commit_one_store(m)
        out = m.entry_merged(0, 0, 0x100, 8)
        assert kinds(out) == [PREMATURE_PERSIST]


class TestDrainOrder:
    def test_out_of_creation_order_drain(self):
        m = PersistencyModel()
        m.machine_store(0, 0x8, 1, 0)
        m.entry_created(0, 0, 0x8, 0, 1)
        m.machine_store(0, 0x10, 2, 0)
        m.entry_created(0, 0, 0x10, 0, 2)
        m.machine_boundary(0, 1, CONT)
        out = m.redo_drained(0, 0, 0x10, 2)  # younger entry first
        assert OUT_OF_ORDER_DRAIN in kinds(out)
        # The resync bounds cascade noise: the older entry still drains
        # cleanly afterwards.
        assert m.redo_drained(0, 0, 0x8, 1) == []

    def test_uncommitted_drain_is_premature(self):
        m = PersistencyModel()
        m.machine_store(0, 0x8, 1, 0)
        m.entry_created(0, 0, 0x8, 0, 1)
        out = m.redo_drained(0, 0, 0x8, 1)  # no boundary yet
        assert PREMATURE_PERSIST in kinds(out)

    def test_drained_value_mismatch_is_lost_redo(self):
        m = PersistencyModel()
        commit_one_store(m)
        out = m.redo_drained(0, 0, 0x100, 1234)
        assert LOST_REDO in kinds(out)


class TestWritebackInvalidation:
    def test_superseded_redo_draining_is_stale_overwrite(self):
        m = PersistencyModel(stale_read_prevention=True)
        commit_one_store(m)
        m.writeback(0x100, 7)
        out = m.redo_drained(0, 0, 0x100, 7)
        assert kinds(out) == [STALE_REDO_OVERWRITE]

    def test_skip_of_superseded_redo_is_fine(self):
        m = PersistencyModel()
        commit_one_store(m)
        m.writeback(0x100, 7)
        assert m.redo_skipped(0, 0, 0x100) == []

    def test_skip_of_valid_redo_is_lost_redo(self):
        m = PersistencyModel()
        commit_one_store(m)
        out = m.redo_skipped(0, 0, 0x100)
        assert kinds(out) == [LOST_REDO]

    def test_prevention_off_permits_stale_drain(self):
        m = PersistencyModel(stale_read_prevention=False)
        commit_one_store(m)
        m.writeback(0x100, 7)
        assert m.redo_drained(0, 0, 0x100, 7) == []


class TestBoundaryDrain:
    def _committed(self, ckpt=None):
        m = PersistencyModel()
        if ckpt:
            m.machine_ckpt(0, ckpt[0], ckpt[1])
        commit_one_store(m)
        m.redo_drained(0, 0, 0x100, 7)
        return m

    def test_missing_pc_checkpoint(self):
        m = self._committed()
        out = m.boundary_drained(0, 0, 1, CONT, {}, False)
        assert kinds(out) == [STALE_BOUNDARY_PC]

    def test_wrong_continuation(self):
        m = self._committed()
        out = m.boundary_drained(0, 0, 1, "elsewhere", {}, True)
        assert kinds(out) == [STALE_BOUNDARY_PC]

    def test_unflushed_ckpt_slot(self):
        m = self._committed(ckpt=(0x9000, 42))
        out = m.boundary_drained(0, 0, 1, CONT, {}, True)
        assert kinds(out) == [UNCOVERED_CKPT_SLOT]

    def test_flushed_ckpt_slot_ok(self):
        m = self._committed(ckpt=(0x9000, 42))
        out = m.boundary_drained(0, 0, 1, CONT, {0x9000: 42}, True)
        assert out == []

    def test_uncommitted_boundary_is_phantom(self):
        m = PersistencyModel()
        out = m.boundary_drained(0, 0, 1, CONT, {}, True)
        assert PHANTOM_PERSIST in kinds(out)


class TestReferenceRecovery:
    def test_committed_redo_and_uncommitted_undo(self):
        m = PersistencyModel()
        commit_one_store(m, addr=0x100, old=0, new=7)
        # An uncommitted (open-region) store on top.
        m.machine_store(0, 0x200, 9, 5)
        m.entry_created(0, 1, 0x200, 5, 9)
        image = m.reference_recovery({0x100: 0, 0x200: 9})
        assert image[0x100] == 7  # committed redo applied
        assert image[0x200] == 5  # uncommitted store rolled back

    def test_expected_value_falls_back_to_baseline(self):
        m = PersistencyModel()
        m.machine_store(0, 0x300, 1, 17)  # never committed
        assert m.expected_value(0x300) == 17

    def test_multi_writer_excluded_from_value_checks(self):
        m = PersistencyModel()
        m.machine_store(0, 0x400, 1, 0)
        m.machine_store(1, 0x400, 2, 1)
        assert m.writers[0x400] == MULTI_WRITER
        assert 0x400 not in m.single_writer_addrs()
