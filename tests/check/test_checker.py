"""End-to-end checker tests: clean runs, tamper detection, integration."""

import pytest

from repro.arch.crash import CrashPlan, run_built_until_crash
from repro.arch.persistence import ProtocolMutations
from repro.arch.system import build_system, run_workload
from repro.check import PersistencyViolationError
from repro.check.checker import PersistencyChecker
from repro.check.mutants import _build_workload, checked_run, matrix_params
from repro.check.violations import CORRUPT_UNDO, LOST_REDO, OUT_OF_ORDER_DRAIN

SCALE = 0.25
THRESHOLD = 32


@pytest.fixture(scope="module")
def genome():
    return _build_workload("genome", SCALE, THRESHOLD)


@pytest.fixture(scope="module")
def params():
    return matrix_params()


class TestCleanRuns:
    def test_clean_run_is_violation_free(self, genome, params):
        module, spawns = genome
        checker, error = checked_run(module, spawns, params, THRESHOLD)
        assert error is None
        assert checker.report.ok
        assert checker.report.events > 0
        assert checker.report.checks > 0

    def test_run_workload_check_flag(self, genome):
        module, spawns = genome
        metrics, _ = run_workload(
            module, spawns, threshold=THRESHOLD, check=True
        )
        assert metrics.exec_cycles > 0

    def test_attach_refuses_volatile_system(self, genome):
        module, spawns = genome
        _, system = build_system(module, spawns, persistence=False)
        with pytest.raises(ValueError):
            PersistencyChecker.attach(system)


class TestMutantsOnline:
    def test_skipped_undo_log_is_corrupt_undo(self, genome, params):
        module, spawns = genome
        checker, _ = checked_run(
            module,
            spawns,
            params,
            THRESHOLD,
            mutations=ProtocolMutations.single("skip_undo_log"),
        )
        assert CORRUPT_UNDO in checker.report.kinds()

    def test_reordered_drain_is_out_of_order(self, genome, params):
        module, spawns = genome
        checker, _ = checked_run(
            module,
            spawns,
            params,
            THRESHOLD,
            mutations=ProtocolMutations.single("reorder_phase2"),
        )
        assert OUT_OF_ORDER_DRAIN in checker.report.kinds()

    def test_violations_carry_witness_windows(self, genome, params):
        module, spawns = genome
        checker, _ = checked_run(
            module,
            spawns,
            params,
            THRESHOLD,
            mutations=ProtocolMutations.single("skip_undo_log"),
        )
        first = checker.report.violations[0]
        assert first.witness, "violation must carry a witness window"
        assert first.event_index > 0
        # The summary names the class; raise_if_violated raises typed.
        with pytest.raises(PersistencyViolationError):
            checker.report.raise_if_violated()


class TestCrashStateChecks:
    def test_crash_state_clean_then_tampered(self, genome, params):
        module, spawns = genome
        machine, system = build_system(
            module, spawns, params=params, threshold=THRESHOLD
        )
        checker = PersistencyChecker.attach(system)
        state = run_built_until_crash(
            machine, system, CrashPlan(1500), extra_observer=checker
        )
        assert state is not None
        checker.check_crash_state(state)
        assert checker.report.ok, checker.report.summary()

        tampered = state.clone()
        victim = next(
            e
            for entries in tampered.core_entries
            for e in entries
            if not e.is_boundary
        )
        victim.redo ^= 0xDEAD
        checker.check_crash_state(tampered)
        assert not checker.report.ok
        assert LOST_REDO in checker.report.kinds()


class TestApiIntegration:
    def test_runspec_check_round_trip(self):
        from repro.api import RunSpec, execute_spec

        spec = RunSpec(workload="genome", scale=SCALE, check=True)
        assert spec.fingerprint() != spec.with_(check=False).fingerprint()
        assert spec.baseline().check is False
        assert "check" in spec.describe()
        result = execute_spec(spec)
        assert result.metrics.exec_cycles > 0

    def test_harness_threads_check_flag(self):
        from repro.eval.harness import EvalHarness

        h = EvalHarness(scale=SCALE, check=True)
        assert h.spec("genome").check is True
        # Baselines are volatile — never checked.
        assert h.spec("genome").baseline().check is False

    def test_campaign_second_oracle_clean(self):
        from repro.fault.campaign import CampaignConfig, run_workload_campaign

        cc = CampaignConfig(sample=6, models=("clean",), check=True)
        res = run_workload_campaign("genome", cc, scale=0.1, cache=None)
        assert res.ok, res.summary()
        assert all(o.status in ("ok", "finished") for o in res.outcomes)

    def test_campaign_second_oracle_with_faults(self):
        from repro.fault.campaign import CampaignConfig, run_workload_campaign

        cc = CampaignConfig(
            sample=5,
            models=("dropped-valid-bits",),
            check=True,
            minimize=False,
        )
        res = run_workload_campaign("genome", cc, scale=0.1, cache=None)
        assert res.ok, res.summary()

    def test_model_violation_is_a_failure_status(self):
        from repro.fault.campaign import FAILURE_STATUSES

        assert "model-violation" in FAILURE_STATUSES
