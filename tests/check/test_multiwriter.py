"""Multi-writer membership checks (PR 10 first cut).

For addresses written by more than one core the cross-core commit
order is ambiguous, so the checker cannot demand an exact value — but
region-level strict persistency still pins the *candidate set*: every
touching core contributes exactly one value (its rollback target while
a region is open, its latest committed redo otherwise), and recovery
must land on one of them.  These tests drive
:meth:`PersistencyModel.allowed_values` directly, then stress the full
checker on a Splash-3 stand-in at 4 harts where lock words and shared
counters are genuinely contended.
"""

import pytest

from repro.arch.crash import CrashPlan, run_built_until_crash
from repro.arch.params import SimParams
from repro.arch.recovery import recover
from repro.arch.system import build_system
from repro.check.checker import PersistencyChecker
from repro.check.model import MULTI_WRITER, PersistencyModel
from repro.check.mutants import _build_workload, checked_run
from repro.check.violations import LOST_REDO

CONT = "resume@loop"
A = 0x100
THRESHOLD = 32
HARTS = 4


def stress_params() -> SimParams:
    """Full-size caches (no regular-path writebacks, so no membership
    skips) with a throttled write port to keep the proxy FIFOs deep."""
    return SimParams.scaled().with_(nvm_write_parallelism=8)


class TestAllowedValues:
    def test_untouched_addr_is_baseline(self):
        m = PersistencyModel()
        assert m.allowed_values(A) == {0}

    def test_committed_last_per_core(self):
        m = PersistencyModel()
        m.machine_store(0, A, 5, 0)
        m.machine_boundary(0, 1, CONT)
        m.machine_store(1, A, 9, 5)
        m.machine_boundary(1, 2, CONT)
        assert m.writers[A] == MULTI_WRITER
        assert m.allowed_values(A) == {5, 9}
        assert m.multi_writer_addrs() == [A]
        assert m.single_writer_addrs() == []

    def test_open_store_contributes_rollback_target(self):
        m = PersistencyModel()
        m.machine_store(0, A, 5, 0)
        m.machine_boundary(0, 1, CONT)
        # Core 1 stores over core 0's committed value but never commits:
        # recovery undoes it back to 5, so 9 must NOT be allowed.
        m.machine_store(1, A, 9, 5)
        assert m.allowed_values(A) == {5}
        # ... unless rollback is out of scope (finalize: nothing open).
        assert m.allowed_values(A, include_rollback=False) == {5}

    def test_rollback_target_is_first_old_of_open_run(self):
        m = PersistencyModel()
        m.machine_store(0, A, 5, 0)
        m.machine_store(0, A, 6, 5)  # same open region, merged store
        # Undo replays in reverse: the region rolls back to 0, not 5.
        assert m.allowed_values(A) == {0}

    def test_committed_last_tracks_latest_region(self):
        m = PersistencyModel()
        m.machine_store(0, A, 5, 0)
        m.machine_boundary(0, 1, CONT)
        m.machine_store(0, A, 7, 5)
        m.machine_boundary(0, 2, CONT)
        m.machine_store(1, A, 9, 7)
        m.machine_boundary(1, 3, CONT)
        # Core 0's older redo (5) is superseded in its own FIFO; only
        # each core's latest committed value can be the last to land.
        assert m.allowed_values(A) == {7, 9}

    def test_writeback_addrs_are_recorded_even_without_prevention(self):
        m = PersistencyModel(stale_read_prevention=False)
        m.writeback(A, 42)
        assert A in m.wb_addrs


@pytest.fixture(scope="module")
def ocean():
    module, spawns = _build_workload("ocean", 0.5, THRESHOLD)
    assert len(spawns) == HARTS
    return module, spawns


@pytest.fixture(scope="module")
def contended():
    """4 harts doing nothing but locked shared-counter updates
    (ocean's synchronisation phase, isolated), so the lock word and the
    counter slots are multi-writer from the first few quanta — unlike
    ocean itself, whose disjoint grid phase fills ~97% of the run.
    Returns (module, spawns, crash_point) with the crash landing
    mid-contention."""
    from repro.compiler import CapriCompiler, OptConfig
    from repro.ir.builder import IRBuilder
    from repro.ir.verifier import verify_module
    from repro.workloads.generators import emit_locked_update

    b = IRBuilder("mw_stress")
    lock = b.module.alloc("lock", 1)
    shared = b.module.alloc("shared", 8)
    with b.function("worker", params=["tid", "trips"]) as f:
        emit_locked_update(f, lock, f.li(shared), 8, f.param(1), f.param(0))
        f.ret(f.param(0))
    verify_module(b.module)
    config = OptConfig.licm().with_threshold(THRESHOLD)
    module = CapriCompiler(config).compile(b.module).module
    spawns = [("worker", [t, 12]) for t in range(HARTS)]
    checker, error = checked_run(module, spawns, stress_params(), THRESHOLD)
    assert error is None and checker.report.ok, checker.report.summary()
    assert checker.model.multi_writer_addrs()
    return module, spawns, int(checker.report.events * 0.6)


class TestSplashStress:
    def test_clean_run_checks_multi_writer_words(self, ocean):
        module, spawns = ocean
        checker, error = checked_run(module, spawns, stress_params(), THRESHOLD)
        assert error is None
        assert checker.report.ok, checker.report.summary()
        model = checker.model
        # The lock word and the shared counters are contended by all
        # 4 harts — the membership checks must actually have fired.
        assert model.multi_writer_addrs()
        assert model.multi_writer_checks > 0

    def test_crash_recover_membership_clean(self, contended):
        module, spawns, crash_point = contended
        machine, system = build_system(
            module, spawns, params=stress_params(), threshold=THRESHOLD
        )
        checker = PersistencyChecker.attach(system)
        state = run_built_until_crash(
            machine, system, CrashPlan(crash_point), extra_observer=checker
        )
        assert state is not None
        checker.check_crash_state(state)
        recovered = recover(state, module)
        checker.check_recovered(recovered)
        assert checker.report.ok, checker.report.summary()
        assert checker.model.multi_writer_checks > 0

    def test_tampered_multi_writer_word_is_flagged(self, contended):
        module, spawns, crash_point = contended
        machine, system = build_system(
            module, spawns, params=stress_params(), threshold=THRESHOLD
        )
        checker = PersistencyChecker.attach(system)
        state = run_built_until_crash(
            machine, system, CrashPlan(crash_point), extra_observer=checker
        )
        recovered = recover(state, module)
        victims = [
            addr
            for addr in checker.model.multi_writer_addrs()
            if addr not in checker.model.wb_addrs
        ]
        assert victims, "stress workload must leave checkable contended words"
        recovered.nvm_image[victims[0]] = 0xDEADBEEF
        checker.check_recovered(recovered)
        assert not checker.report.ok
        assert LOST_REDO in checker.report.kinds()

    def test_quarantine_skips_membership(self, contended):
        module, spawns, crash_point = contended
        machine, system = build_system(
            module, spawns, params=stress_params(), threshold=THRESHOLD
        )
        checker = PersistencyChecker.attach(system)
        state = run_built_until_crash(
            machine, system, CrashPlan(crash_point), extra_observer=checker
        )
        recovered = recover(state, module)
        recovered.report.quarantined_cores.append(0)
        victims = [
            addr
            for addr in checker.model.multi_writer_addrs()
            if addr not in checker.model.wb_addrs
        ]
        recovered.nvm_image[victims[0]] = 0xDEADBEEF
        before = checker.model.multi_writer_checks
        checker.check_recovered(recovered)
        assert checker.model.multi_writer_checks == before
