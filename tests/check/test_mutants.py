"""Planted-mutant matrix: the checker must catch what we plant.

The full 12-mutant matrix runs in CI (`python -m repro check --mutants`);
here a representative subset keeps the tier-1 suite fast while still
covering each detection path: an online pipeline mutant, a
boundary-metadata mutant, and a recovery-path mutant (crash/recover
probes).
"""

import pytest

from repro.check.mutants import (
    MUTANT_EXPECTATIONS,
    RECOVERY_MUTANTS,
    run_mutant_matrix,
)
from repro.check.violations import ALL_KINDS


def test_expectations_are_well_formed():
    assert len(MUTANT_EXPECTATIONS) >= 10
    for name, expected in MUTANT_EXPECTATIONS.items():
        assert expected, name
        for kind in expected:
            assert kind in ALL_KINDS
    for name in RECOVERY_MUTANTS:
        assert name in MUTANT_EXPECTATIONS


def test_unknown_mutant_is_rejected():
    with pytest.raises(ValueError):
        run_mutant_matrix(workloads=("genome",), mutants=("no_such_bug",))


def test_matrix_subset_detects_with_correct_class():
    subset = ("skip_undo_log", "skip_pc_checkpoint", "recovery_stale_pc")
    result = run_mutant_matrix(
        workloads=("genome",), scale=0.4, mutants=subset
    )
    assert result.baseline_ok, result.format()
    for outcome in result.outcomes:
        assert outcome.detected, outcome.format()
        assert any(k in outcome.expected for k in outcome.kinds)
        assert outcome.first is not None
        assert outcome.first.kind in outcome.expected
