"""Tests for the textual IR parser, including print/parse round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import IRBuilder, format_function, verify_function, verify_module
from repro.ir.instructions import (
    AtomicRMW,
    BinOp,
    Branch,
    Call,
    CheckpointStore,
    Fence,
    Halt,
    Jump,
    Load,
    Move,
    Nop,
    RegionBoundary,
    Ret,
    Store,
    UnOp,
)
from repro.ir.parser import (
    ParseError,
    parse_function,
    parse_instruction,
    parse_module,
)
from repro.ir.values import Imm, Reg


class TestParseInstruction:
    def test_binop(self):
        i = parse_instruction("r1 = add r2, #3")
        assert isinstance(i, BinOp)
        assert (i.op, i.dst, i.lhs, i.rhs) == ("add", Reg(1), Reg(2), Imm(3))

    def test_unop(self):
        i = parse_instruction("r1 = neg r2")
        assert isinstance(i, UnOp)
        assert (i.op, i.dst, i.src) == ("neg", Reg(1), Reg(2))

    def test_move_reg(self):
        i = parse_instruction("r1 = r2")
        assert isinstance(i, Move)

    def test_move_imm_negative(self):
        i = parse_instruction("r1 = #-5")
        assert isinstance(i, Move)
        assert i.src == Imm(-5)

    def test_load(self):
        i = parse_instruction("r1 = load [r2+16]")
        assert isinstance(i, Load)
        assert (i.dst, i.addr, i.offset) == (Reg(1), Reg(2), 16)

    def test_load_negative_offset(self):
        i = parse_instruction("r1 = load [r2-8]")
        assert i.offset == -8

    def test_store(self):
        i = parse_instruction("store [r2+0] = r3")
        assert isinstance(i, Store)
        assert (i.value, i.addr, i.offset) == (Reg(3), Reg(2), 0)

    def test_store_immediate_value(self):
        i = parse_instruction("store [r2+0] = #7")
        assert i.value == Imm(7)

    def test_atomic(self):
        i = parse_instruction("r1 = atomic_add [r2+0], #1")
        assert isinstance(i, AtomicRMW)
        assert (i.op, i.dst, i.value) == ("add", Reg(1), Imm(1))

    def test_jump(self):
        i = parse_instruction("jump loop.1")
        assert isinstance(i, Jump)
        assert i.target == "loop.1"

    def test_branch(self):
        i = parse_instruction("branch r1 ? a : b")
        assert isinstance(i, Branch)
        assert (i.cond, i.if_true, i.if_false) == (Reg(1), "a", "b")

    def test_call_with_result(self):
        i = parse_instruction("r1 = call f(r2, #3)")
        assert isinstance(i, Call)
        assert (i.callee, i.args, i.dst) == ("f", (Reg(2), Imm(3)), Reg(1))

    def test_call_void_no_args(self):
        i = parse_instruction("call f()")
        assert isinstance(i, Call)
        assert i.dst is None and i.args == ()

    def test_ret_variants(self):
        assert parse_instruction("ret").value is None
        assert parse_instruction("ret r1").value == Reg(1)
        assert parse_instruction("ret #42").value == Imm(42)

    def test_misc(self):
        assert isinstance(parse_instruction("nop"), Nop)
        assert isinstance(parse_instruction("fence"), Fence)
        assert isinstance(parse_instruction("halt"), Halt)

    def test_capri_instructions(self):
        b = parse_instruction("region_boundary #7")
        assert isinstance(b, RegionBoundary) and b.region_id == 7
        s = parse_instruction("region_boundary #-1")
        assert s.region_id == -1
        c = parse_instruction("ckpt r5")
        assert isinstance(c, CheckpointStore) and c.src == Reg(5)

    def test_errors(self):
        for bad in [
            "r1 = bogus r2, r3",
            "r1 = load r2",
            "store [r2+0]",
            "branch r1 ? only_one",
            "frobnicate",
            "r1 = #notanumber",
            "rX = add r1, r2",
        ]:
            with pytest.raises(ParseError):
                parse_instruction(bad)


class TestParseFunction:
    SAMPLE = """
    func count(params=1, regs=4):
      entry:
        r1 = #0
        jump loop
      loop:
        r2 = slt r1, r0   ; loop while r1 < r0
        branch r2 ? body : done
      body:
        r1 = add r1, #1
        jump loop
      done:
        ret r1
    """

    def test_parses_and_verifies(self):
        func = parse_function(self.SAMPLE)
        verify_function(func)
        assert func.name == "count"
        assert list(func.blocks) == ["entry", "loop", "body", "done"]

    def test_executes(self):
        from repro.isa import Machine
        from repro.ir.module import Module

        module = Module()
        module.add_function(parse_function(self.SAMPLE))
        assert Machine(module).run_function("count", [17]) == 17

    def test_comments_stripped(self):
        func = parse_function(self.SAMPLE)
        assert len(func.blocks["loop"].instrs) == 2

    def test_instruction_before_label_rejected(self):
        with pytest.raises(ParseError, match="before a label"):
            parse_function("func f(params=0, regs=1):\n  ret")

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError, match="func header"):
            parse_function("entry:\n  ret")


class TestRoundTrip:
    def _roundtrip(self, func):
        text = format_function(func)
        parsed = parse_function(text)
        assert format_function(parsed) == text

    def test_builder_function_roundtrips(self):
        b = IRBuilder("m")
        arr = b.module.alloc("arr", 8)
        with b.function("kernel", params=["base", "n"]) as f:
            acc = f.li(0)
            with f.for_range(f.param(1)) as i:
                v = f.load(f.add(f.param(0), f.shl(i, 3)))
                f.store(f.add(v, 1), f.add(f.param(0), f.shl(i, 3)))
                f.add(acc, v, dst=acc)
            f.ret(acc)
        self._roundtrip(b.module.function("kernel"))

    def test_instrumented_function_roundtrips(self):
        from repro.compiler import CapriCompiler, OptConfig

        b = IRBuilder("m")
        arr = b.module.alloc("arr", 8)
        with b.function("kernel", params=["base", "n"]) as f:
            with f.for_range(f.param(1)) as i:
                f.store(i, f.add(f.param(0), f.shl(f.and_(i, 7), 3)))
            f.ret()
        out = CapriCompiler(OptConfig.licm(16)).compile(b.module).module
        self._roundtrip(out.function("kernel"))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_program_roundtrips(self, seed):
        from tests.compiler.conftest import random_program

        module, _ = random_program(seed)
        for func in module.functions.values():
            self._roundtrip(func)

    def test_module_roundtrip_runs_identically(self):
        from repro.ir.module import Module
        from repro.isa import Machine
        from tests.compiler.conftest import random_program

        module, args = random_program(7)
        rv1 = Machine(module).run_function("main", args)

        text = "\n\n".join(
            format_function(f) for f in module.functions.values()
        )
        reparsed = parse_module(text)
        # Rebuild the data segment (not expressed in text).
        reparsed.initial_data = dict(module.initial_data)
        verify_module(reparsed)
        rv2 = Machine(reparsed).run_function("main", args)
        assert rv1 == rv2
