"""Tests for CFG construction, dominators, and natural-loop detection."""

import pytest

from repro.ir import CFG, DomTree, IRBuilder, natural_loops
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump, Move, Ret
from repro.ir.values import Imm, Reg


def diamond() -> Function:
    """entry -> (left | right) -> exit."""
    f = Function("diamond", num_regs=2)
    e = f.new_block("entry")
    e.append(Move(Reg(0), Imm(1)))
    e.append(Branch(Reg(0), "left", "right"))
    l = f.new_block("left")
    l.append(Jump("exit"))
    r = f.new_block("right")
    r.append(Jump("exit"))
    x = f.new_block("exit")
    x.append(Ret())
    return f


def simple_loop() -> Function:
    """entry -> header <-> body; header -> exit."""
    f = Function("loop", num_regs=2)
    f.new_block("entry").append(Jump("header"))
    h = f.new_block("header")
    h.append(Branch(Reg(0), "body", "exit"))
    b = f.new_block("body")
    b.append(Move(Reg(1), Imm(0)))
    b.append(Jump("header"))
    f.new_block("exit").append(Ret())
    return f


class TestCFG:
    def test_diamond_succs_preds(self):
        cfg = CFG(diamond())
        assert cfg.succs["entry"] == ["left", "right"]
        assert sorted(cfg.preds["exit"]) == ["left", "right"]
        assert cfg.preds["entry"] == []

    def test_rpo_starts_at_entry(self):
        cfg = CFG(diamond())
        assert cfg.rpo[0] == "entry"
        assert cfg.rpo[-1] == "exit"

    def test_rpo_visits_all_reachable(self):
        cfg = CFG(diamond())
        assert set(cfg.rpo) == {"entry", "left", "right", "exit"}

    def test_unreachable_blocks_excluded_from_rpo(self):
        f = diamond()
        dead = f.new_block("dead")
        dead.append(Jump("exit"))
        cfg = CFG(f)
        assert "dead" not in cfg.rpo
        assert "dead" not in cfg.reachable

    def test_unknown_branch_target_raises(self):
        f = Function("bad", num_regs=1)
        f.new_block("entry").append(Jump("nowhere"))
        with pytest.raises(KeyError):
            CFG(f)

    def test_deep_chain_no_recursion_error(self):
        f = Function("chain", num_regs=1)
        n = 5000
        for i in range(n):
            blk = f.new_block(f"b{i}") if i else f.new_block("entry")
            if i < n - 1:
                blk.append(Jump(f"b{i + 1}"))
            else:
                blk.append(Ret())
        cfg = CFG(f)
        assert len(cfg.rpo) == n


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = CFG(diamond())
        dom = DomTree(cfg)
        for label in cfg.rpo:
            assert dom.dominates("entry", label)

    def test_diamond_idoms(self):
        dom = DomTree(CFG(diamond()))
        assert dom.idom["left"] == "entry"
        assert dom.idom["right"] == "entry"
        assert dom.idom["exit"] == "entry"
        assert dom.idom["entry"] is None

    def test_branches_do_not_dominate_join(self):
        dom = DomTree(CFG(diamond()))
        assert not dom.dominates("left", "exit")
        assert not dom.dominates("right", "exit")

    def test_reflexive(self):
        dom = DomTree(CFG(diamond()))
        assert dom.dominates("left", "left")

    def test_loop_header_dominates_body(self):
        dom = DomTree(CFG(simple_loop()))
        assert dom.dominates("header", "body")
        assert not dom.dominates("body", "header")


class TestNaturalLoops:
    def test_simple_loop_found(self):
        cfg = CFG(simple_loop())
        loops = natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "header"
        assert loop.body == {"header", "body"}
        assert loop.latches == ("body",)

    def test_loop_exits(self):
        cfg = CFG(simple_loop())
        loop = natural_loops(cfg)[0]
        assert loop.exits(cfg) == [("header", "exit")]

    def test_no_loops_in_diamond(self):
        assert natural_loops(CFG(diamond())) == []

    def test_nested_loops_via_builder(self):
        b = IRBuilder("m")
        with b.function("f", params=["n"]) as f:
            with f.for_range(f.param(0)) as i:
                with f.for_range(f.param(0)) as j:
                    f.add(i, j)
            f.ret()
        loops = natural_loops(CFG(b.module.function("f")))
        assert len(loops) == 2
        outer = next(l for l in loops if l.depth == 1)
        inner = next(l for l in loops if l.depth == 2)
        assert inner.parent is outer
        assert inner.body < outer.body

    def test_self_loop(self):
        f = Function("selfloop", num_regs=1)
        f.new_block("entry").append(Jump("spin"))
        s = f.new_block("spin")
        s.append(Branch(Reg(0), "spin", "out"))
        f.new_block("out").append(Ret())
        loops = natural_loops(CFG(f))
        assert len(loops) == 1
        assert loops[0].body == {"spin"}
        assert loops[0].latches == ("spin",)

    def test_two_latches_merge_into_one_loop(self):
        f = Function("twolatch", num_regs=1)
        f.new_block("entry").append(Jump("h"))
        h = f.new_block("h")
        h.append(Branch(Reg(0), "a", "out"))
        a = f.new_block("a")
        a.append(Branch(Reg(0), "h", "b"))
        bb = f.new_block("b")
        bb.append(Jump("h"))
        f.new_block("out").append(Ret())
        loops = natural_loops(CFG(f))
        assert len(loops) == 1
        assert set(loops[0].latches) == {"a", "b"}
        assert loops[0].body == {"h", "a", "b"}

    def test_contains(self):
        loop = natural_loops(CFG(simple_loop()))[0]
        assert "body" in loop
        assert "exit" not in loop
