"""Print→parse round-trips over the litmus generator's seed space.

The litmus generator (`repro.litmus.generate`) emits every shape the
IR builder can produce for multi-hart persist-region programs —
atomics, checkpoint stores, explicit region boundaries, shared/private
address mixes — which makes its seed space a good property-test corpus
for the textual printer/parser pair: for any seed, printing the
program and parsing it back must reach a textual fixpoint, survive the
verifier, and (spot-checked) execute identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.parser import parse_module
from repro.ir.printer import format_function
from repro.ir.verifier import verify_module
from repro.litmus.generate import generate_program


def roundtrip(program):
    """Parse the program's own text() back; assert per-function textual
    fixpoint and return the reparsed module (sans data segment)."""
    reparsed = parse_module(program.text(), name=program.module.name)
    assert set(reparsed.functions) == set(program.module.functions)
    for name, func in program.module.functions.items():
        assert format_function(reparsed.functions[name]) == format_function(func)
    return reparsed


class TestLitmusRoundTrip:
    @pytest.mark.parametrize("seed", range(6))
    def test_corpus_seeds_roundtrip_and_verify(self, seed):
        p = generate_program(seed)
        reparsed = roundtrip(p)
        # The data segment is not expressed in text (parse_module
        # docstring) — restore it, then the verifier must accept the
        # reparsed module wholesale.
        reparsed.symbols = dict(p.module.symbols)
        reparsed.initial_data = dict(p.module.initial_data)
        verify_module(reparsed)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=4095))
    def test_seed_space_reaches_textual_fixpoint(self, seed):
        roundtrip(generate_program(seed))

    def test_reparsed_program_executes_identically(self):
        from repro.trace.record import capture_trace
        from repro.trace.replay import golden_from_trace

        p = generate_program(3)
        reparsed = roundtrip(p)
        reparsed.symbols = dict(p.module.symbols)
        reparsed.initial_data = dict(p.module.initial_data)
        verify_module(reparsed)

        golden = golden_from_trace(
            capture_trace(p.module, p.spawns, quantum=p.quantum)
        )
        again = golden_from_trace(
            capture_trace(reparsed, p.spawns, quantum=p.quantum)
        )
        assert again.data == golden.data
