"""Tests for the IR structural verifier and the pretty-printer."""

import pytest

from repro.ir import (
    IRBuilder,
    VerificationError,
    format_function,
    format_module,
    verify_function,
    verify_module,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Jump, Move, Nop, Ret
from repro.ir.module import MAX_REGS, Module, ckpt_slot_addr, is_ckpt_addr, CKPT_BASE
from repro.ir.values import Imm, Reg


class TestVerifier:
    def test_valid_function_passes(self):
        b = IRBuilder("m")
        with b.function("f", params=["a"]) as f:
            f.ret(f.param(0))
        verify_module(b.module)

    def test_no_blocks_rejected(self):
        f = Function("empty")
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(f)

    def test_empty_block_rejected(self):
        f = Function("f")
        f.new_block("entry")
        with pytest.raises(VerificationError, match="empty block"):
            verify_function(f)

    def test_missing_terminator_rejected(self):
        f = Function("f", num_regs=2)
        f.new_block("entry").append(Move(Reg(0), Imm(1)))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_mid_block_terminator_rejected(self):
        f = Function("f", num_regs=1)
        blk = f.new_block("entry")
        blk.append(Ret())
        blk.append(Nop())
        blk.append(Ret())
        with pytest.raises(VerificationError, match="mid-block"):
            verify_function(f)

    def test_unknown_label_rejected(self):
        f = Function("f", num_regs=1)
        f.new_block("entry").append(Jump("ghost"))
        with pytest.raises(VerificationError, match="unknown label"):
            verify_function(f)

    def test_register_out_of_range_rejected(self):
        f = Function("f", num_regs=1)
        blk = f.new_block("entry")
        blk.append(BinOp("add", Reg(5), Imm(1), Imm(2)))
        blk.append(Ret())
        with pytest.raises(VerificationError, match="out of range"):
            verify_function(f)

    def test_too_many_registers_rejected(self):
        f = Function("f", num_regs=MAX_REGS + 1)
        f.new_block("entry").append(Ret())
        with pytest.raises(VerificationError, match="checkpoint"):
            verify_function(f)

    def test_unknown_callee_rejected(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            f.call("ghost")
            f.ret()
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(b.module)


class TestCheckpointLayout:
    def test_slot_addresses_distinct_per_register(self):
        addrs = {ckpt_slot_addr(0, i) for i in range(32)}
        assert len(addrs) == 32

    def test_slot_addresses_distinct_per_core(self):
        assert ckpt_slot_addr(0, 0) != ckpt_slot_addr(1, 0)

    def test_slot_addresses_distinct_per_depth(self):
        assert ckpt_slot_addr(0, 0, depth=0) != ckpt_slot_addr(0, 0, depth=1)

    def test_depth_out_of_range_rejected(self):
        from repro.ir.module import MAX_CALL_DEPTH

        with pytest.raises(ValueError):
            ckpt_slot_addr(0, 0, depth=MAX_CALL_DEPTH)

    def test_slot_zero_is_base(self):
        assert ckpt_slot_addr(0, 0) == CKPT_BASE

    def test_out_of_range_register_rejected(self):
        with pytest.raises(ValueError):
            ckpt_slot_addr(0, MAX_REGS)

    def test_is_ckpt_addr(self):
        assert is_ckpt_addr(CKPT_BASE)
        assert is_ckpt_addr(ckpt_slot_addr(3, 7))
        assert not is_ckpt_addr(0x10000)


class TestPrinter:
    def test_format_function_contains_blocks_and_instrs(self):
        b = IRBuilder("m")
        with b.function("f", params=["a"]) as f:
            x = f.add(f.param(0), 1)
            f.ret(x)
        text = format_function(b.module.function("f"))
        assert "func f" in text
        assert "entry:" in text
        assert "add" in text

    def test_format_module_lists_symbols(self):
        b = IRBuilder("mod")
        b.module.alloc("table", 8)
        with b.function("f") as f:
            f.ret()
        text = format_module(b.module)
        assert "table" in text
        assert "func f" in text
