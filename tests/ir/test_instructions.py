"""Tests for the instruction set: defs/uses, traits, operator semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.instructions import (
    ATOMIC_OPS,
    BINARY_OPS,
    UNARY_OPS,
    AtomicRMW,
    BinOp,
    Branch,
    Call,
    CheckpointStore,
    Fence,
    Halt,
    Jump,
    Load,
    Move,
    Nop,
    RegionBoundary,
    Ret,
    Store,
    UnOp,
    eval_atomic,
    eval_binop,
    eval_unop,
    is_memory_access,
    terminator_targets,
)
from repro.ir.values import Imm, Reg

words = st.integers(min_value=-(2**63), max_value=2**63 - 1)


class TestDefsUses:
    def test_binop(self):
        i = BinOp("add", Reg(0), Reg(1), Imm(2))
        assert i.defs() == (Reg(0),)
        assert i.uses() == (Reg(1),)

    def test_binop_two_reg_uses(self):
        i = BinOp("mul", Reg(0), Reg(1), Reg(2))
        assert set(i.uses()) == {Reg(1), Reg(2)}

    def test_unop(self):
        i = UnOp("neg", Reg(5), Reg(6))
        assert i.defs() == (Reg(5),)
        assert i.uses() == (Reg(6),)

    def test_move_imm_has_no_uses(self):
        assert Move(Reg(0), Imm(1)).uses() == ()

    def test_load(self):
        i = Load(Reg(1), Reg(2), 8)
        assert i.defs() == (Reg(1),)
        assert i.uses() == (Reg(2),)

    def test_store_defines_nothing(self):
        i = Store(Reg(1), Reg(2))
        assert i.defs() == ()
        assert set(i.uses()) == {Reg(1), Reg(2)}

    def test_branch_uses_cond(self):
        assert Branch(Reg(3), "a", "b").uses() == (Reg(3),)

    def test_call_defs_uses(self):
        i = Call("f", (Reg(1), Imm(2)), Reg(0))
        assert i.defs() == (Reg(0),)
        assert i.uses() == (Reg(1),)

    def test_call_without_dst(self):
        assert Call("f", (Reg(1),)).defs() == ()

    def test_ret_value(self):
        assert Ret(Reg(2)).uses() == (Reg(2),)
        assert Ret().uses() == ()

    def test_atomic(self):
        i = AtomicRMW("add", Reg(0), Reg(1), Reg(2))
        assert i.defs() == (Reg(0),)
        assert set(i.uses()) == {Reg(1), Reg(2)}

    def test_checkpoint_store_uses_src(self):
        i = CheckpointStore(Reg(7))
        assert i.uses() == (Reg(7),)
        assert i.defs() == ()


class TestTraits:
    def test_store_counts(self):
        assert Store(Imm(0), Imm(0)).store_count == 1
        assert CheckpointStore(Reg(0)).store_count == 1
        assert AtomicRMW("add", Reg(0), Imm(0), Imm(1)).store_count == 1
        assert Load(Reg(0), Imm(0)).store_count == 0
        assert BinOp("add", Reg(0), Imm(0), Imm(0)).store_count == 0

    def test_region_boundary_points(self):
        assert Fence().is_region_boundary_point
        assert AtomicRMW("add", Reg(0), Imm(0), Imm(1)).is_region_boundary_point
        assert Call("f").is_region_boundary_point
        assert not Store(Imm(0), Imm(0)).is_region_boundary_point
        assert not Load(Reg(0), Imm(0)).is_region_boundary_point

    def test_terminators(self):
        assert Jump("x").is_terminator
        assert Branch(Imm(1), "a", "b").is_terminator
        assert Ret().is_terminator
        assert Halt().is_terminator
        assert not Fence().is_terminator
        assert not Nop().is_terminator
        assert not RegionBoundary(0).is_terminator

    def test_memory_access_predicate(self):
        assert is_memory_access(Load(Reg(0), Imm(0)))
        assert is_memory_access(Store(Imm(0), Imm(0)))
        assert is_memory_access(AtomicRMW("add", Reg(0), Imm(0), Imm(1)))
        assert is_memory_access(CheckpointStore(Reg(0)))
        assert not is_memory_access(Fence())

    def test_terminator_targets(self):
        assert terminator_targets(Jump("a")) == ("a",)
        assert terminator_targets(Branch(Imm(1), "a", "b")) == ("a", "b")
        assert terminator_targets(Ret()) == ()
        assert terminator_targets(Halt()) == ()
        with pytest.raises(TypeError):
            terminator_targets(Nop())


class TestValidation:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("bogus", Reg(0), Imm(0), Imm(0))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            UnOp("bogus", Reg(0), Imm(0))

    def test_unknown_atomic_rejected(self):
        with pytest.raises(ValueError):
            AtomicRMW("bogus", Reg(0), Imm(0), Imm(1))


class TestOperatorSemantics:
    @given(words, words)
    def test_binops_stay_in_word_range(self, a, b):
        for op in BINARY_OPS:
            r = eval_binop(op, a, b)
            assert -(2**63) <= r < 2**63

    @given(words)
    def test_unops_stay_in_word_range(self, a):
        for op in UNARY_OPS:
            r = eval_unop(op, a)
            assert -(2**63) <= r < 2**63

    @given(words, words)
    def test_atomics_stay_in_word_range(self, a, b):
        for op in ATOMIC_OPS:
            r = eval_atomic(op, a, b)
            assert -(2**63) <= r < 2**63

    def test_division_semantics(self):
        assert eval_binop("div", 7, 2) == 3
        assert eval_binop("div", -7, 2) == -3  # truncating, not floor
        assert eval_binop("div", 7, -2) == -3
        assert eval_binop("div", 7, 0) == 0  # ARM-style

    def test_rem_semantics(self):
        assert eval_binop("rem", 7, 2) == 1
        assert eval_binop("rem", -7, 2) == -1
        assert eval_binop("rem", 7, 0) == 0

    @given(words, st.integers(min_value=-(2**62), max_value=2**62).filter(lambda x: x != 0))
    def test_div_rem_identity(self, a, b):
        q = eval_binop("div", a, b)
        r = eval_binop("rem", a, b)
        assert eval_binop("add", eval_binop("mul", q, b), r) == a

    def test_comparisons_produce_bool_ints(self):
        assert eval_binop("slt", 1, 2) == 1
        assert eval_binop("slt", 2, 1) == 0
        assert eval_binop("seq", 5, 5) == 1
        assert eval_binop("sne", 5, 5) == 0
        assert eval_binop("sge", 5, 5) == 1
        assert eval_binop("sgt", 5, 5) == 0
        assert eval_binop("sle", 4, 5) == 1

    def test_shifts_mask_amount(self):
        assert eval_binop("shl", 1, 64) == 1  # 64 & 63 == 0
        assert eval_binop("shr", 8, 3) == 1

    def test_atomic_swap_ignores_old(self):
        assert eval_atomic("swap", 99, 5) == 5

    def test_atomic_add(self):
        assert eval_atomic("add", 10, 5) == 15
