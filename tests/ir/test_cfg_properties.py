"""Property tests for dominators and natural loops on random CFGs.

Random small CFGs are generated directly (blocks of jumps/branches), and
the iterative dominator algorithm is checked against a brute-force
definition: ``a dominates b`` iff removing ``a`` disconnects ``b`` from
the entry.
"""

from __future__ import annotations

from typing import Dict, List, Set

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import CFG, DomTree, natural_loops
from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump, Ret
from repro.ir.values import Reg


@st.composite
def random_cfg(draw) -> Function:
    """A random function of N blocks with arbitrary jump/branch edges."""
    n = draw(st.integers(min_value=1, max_value=8))
    labels = [f"b{i}" for i in range(n)]
    func = Function("rand", num_regs=1)
    for i, label in enumerate(labels):
        block = func.new_block(label)
        kind = draw(st.sampled_from(["ret", "jump", "branch"]))
        if kind == "ret" or n == 1:
            block.append(Ret())
        elif kind == "jump":
            target = draw(st.sampled_from(labels))
            block.append(Jump(target))
        else:
            t = draw(st.sampled_from(labels))
            f = draw(st.sampled_from(labels))
            block.append(Branch(Reg(0), t, f))
    return func


def reachable_without(cfg: CFG, banned: str) -> Set[str]:
    """Blocks reachable from entry when ``banned`` is removed."""
    if cfg.entry == banned:
        return set()
    seen = {cfg.entry}
    work = [cfg.entry]
    while work:
        node = work.pop()
        for succ in cfg.succs[node]:
            if succ != banned and succ not in seen and succ in cfg.rpo_index:
                seen.add(succ)
                work.append(succ)
    return seen


class TestDominatorProperties:
    @given(func=random_cfg())
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force_definition(self, func):
        cfg = CFG(func)
        dom = DomTree(cfg)
        for a in cfg.rpo:
            cut = reachable_without(cfg, a)
            for b in cfg.rpo:
                brute = (b == a) or (b not in cut)
                assert dom.dominates(a, b) == brute, (a, b)

    @given(func=random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_entry_dominates_all(self, func):
        cfg = CFG(func)
        dom = DomTree(cfg)
        for label in cfg.rpo:
            assert dom.dominates(cfg.entry, label)

    @given(func=random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_idom_is_strict_dominator(self, func):
        cfg = CFG(func)
        dom = DomTree(cfg)
        for label in cfg.rpo:
            idom = dom.idom[label]
            if label == cfg.entry:
                assert idom is None
            else:
                assert idom is not None
                assert idom != label
                assert dom.dominates(idom, label)


class TestLoopProperties:
    @given(func=random_cfg())
    @settings(max_examples=120, deadline=None)
    def test_headers_dominate_their_bodies(self, func):
        cfg = CFG(func)
        dom = DomTree(cfg)
        for loop in natural_loops(cfg, dom):
            for label in loop.body:
                assert dom.dominates(loop.header, label), (loop.header, label)

    @given(func=random_cfg())
    @settings(max_examples=120, deadline=None)
    def test_latches_are_in_body_and_edge_to_header(self, func):
        cfg = CFG(func)
        for loop in natural_loops(cfg):
            for latch in loop.latches:
                assert latch in loop.body
                assert loop.header in cfg.succs[latch]

    @given(func=random_cfg())
    @settings(max_examples=120, deadline=None)
    def test_every_cycle_contains_a_loop_header(self, func):
        """Region formation relies on this: boundaries at loop headers
        break every (reducible) cycle.  Natural-loop headers cover all
        back edges found by dominance; verify each back edge's cycle is
        covered."""
        cfg = CFG(func)
        dom = DomTree(cfg)
        headers = {l.header for l in natural_loops(cfg, dom)}
        for label in cfg.rpo:
            for succ in cfg.succs[label]:
                if succ in cfg.rpo_index and dom.dominates(succ, label):
                    assert succ in headers

    @given(func=random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_nesting_is_consistent(self, func):
        cfg = CFG(func)
        loops = natural_loops(cfg)
        for loop in loops:
            if loop.parent is not None:
                assert loop.body <= loop.parent.body
                assert loop.depth == loop.parent.depth + 1
            else:
                assert loop.depth == 1
