"""Tests for liveness, reaching definitions, and backward slicing."""

import pytest

from repro.ir import (
    CFG,
    IRBuilder,
    compute_liveness,
    compute_reaching_defs,
    backward_slice,
)
from repro.ir.slicing import slice_instructions, slice_is_reconstructible
from repro.ir.values import Reg


class TestLiveness:
    def test_straightline(self):
        b = IRBuilder("m")
        with b.function("f", params=["a"]) as f:
            x = f.add(f.param(0), 1)
            y = f.add(x, 2)
            f.ret(y)
        func = b.module.function("f")
        lv = compute_liveness(func)
        assert lv.live_in["entry"] == {0}
        assert lv.live_out["entry"] == frozenset()

    def test_loop_carried_values_live_at_header(self):
        b = IRBuilder("m")
        with b.function("f", params=["n"]) as f:
            acc = f.li(0)
            with f.for_range(f.param(0)) as i:
                f.add(acc, i, dst=acc)
            f.ret(acc)
        func = b.module.function("f")
        cfg = CFG(func)
        from repro.ir import natural_loops

        header = natural_loops(cfg)[0].header
        lv = compute_liveness(func, cfg)
        # n, acc, i all live at the loop header
        assert {0, acc.index}.issubset(lv.live_in[header])

    def test_dead_value_not_live(self):
        b = IRBuilder("m")
        with b.function("f", params=["a"]) as f:
            f.add(f.param(0), 1)  # dead
            f.ret(f.param(0))
        func = b.module.function("f")
        lv = compute_liveness(func)
        assert lv.live_in["entry"] == {0}

    def test_branch_merges_liveness(self):
        b = IRBuilder("m")
        with b.function("f", params=["c", "x", "y"]) as f:
            r = f.reg()
            with f.if_else(f.cmp("sgt", f.param(0), 0)) as h:
                f.move(r, f.param(1))  # uses x on the then-path
                h.otherwise()
                f.move(r, f.param(2))  # uses y on the else-path
            f.ret(r)
        func = b.module.function("f")
        lv = compute_liveness(func)
        # c, x, y all live into the entry block (both branch paths merge).
        assert {0, 1, 2}.issubset(lv.live_in["entry"])

    def test_live_before_index(self):
        b = IRBuilder("m")
        with b.function("f", params=["a", "b"]) as f:
            x = f.add(f.param(0), f.param(1))  # idx 0
            y = f.mul(x, x)  # idx 1
            f.ret(y)  # idx 2
        func = b.module.function("f")
        lv = compute_liveness(func)
        # Before instr 0: a, b live.
        assert lv.live_before_index(func, "entry", 0) == {0, 1}
        # Before instr 1: only x live.
        assert lv.live_before_index(func, "entry", 1) == {2}
        # Before ret: only y live.
        assert lv.live_before_index(func, "entry", 2) == {3}

    def test_live_before_index_bounds(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            f.ret()
        func = b.module.function("f")
        lv = compute_liveness(func)
        with pytest.raises(IndexError):
            lv.live_before_index(func, "entry", 5)


class TestReachingDefs:
    def test_single_def_reaches_use(self):
        b = IRBuilder("m")
        with b.function("f", params=["a"]) as f:
            x = f.add(f.param(0), 1)  # def at entry[0]
            f.ret(x)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        sites = rd.reaching_defs_of(func, "entry", 1, x.index)
        assert sites == {("entry", 0, x.index)}

    def test_redefinition_kills(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            x = f.li(1)  # entry[0]
            f.li(2, dst=x)  # entry[1] kills entry[0]
            f.ret(x)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        sites = rd.reaching_defs_of(func, "entry", 2, x.index)
        assert sites == {("entry", 1, x.index)}

    def test_branch_merges_defs(self):
        b = IRBuilder("m")
        with b.function("f", params=["c"]) as f:
            x = f.reg()
            with f.if_else(f.cmp("sgt", f.param(0), 0)) as h:
                f.move(x, 1)
                h.otherwise()
                f.move(x, 2)
            f.ret(x)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        # At the join, both defs reach.
        end_label = [l for l in func.blocks if l.startswith("if.end")][0]
        sites = rd.reaching_defs_of(func, end_label, 0, x.index)
        assert len(sites) == 2

    def test_param_has_no_reaching_def(self):
        b = IRBuilder("m")
        with b.function("f", params=["a"]) as f:
            f.ret(f.param(0))
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        assert rd.reaching_defs_of(func, "entry", 0, 0) == frozenset()

    def test_defs_of_index(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            x = f.li(1)
            f.li(2, dst=x)
            f.ret()
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        assert len(rd.defs_of[x.index]) == 2


class TestBackwardSlice:
    def test_pure_slice_is_reconstructible(self):
        b = IRBuilder("m")
        with b.function("f", params=["a"]) as f:
            x = f.add(f.param(0), 1)
            y = f.mul(x, 2)
            f.ret(y)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        # Slice of y at the ret: depends on the mul and the add, then hits
        # the parameter => incomplete.
        sites, complete = backward_slice(func, rd, "entry", 2, y.index)
        assert not complete  # reaches parameter a

    def test_slice_of_constant_chain_completes(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            x = f.li(5)
            y = f.add(x, 1)
            z = f.mul(y, y)
            f.ret(z)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        sites, complete = backward_slice(func, rd, "entry", 3, z.index)
        assert complete
        assert len(sites) == 3
        assert slice_is_reconstructible(func, sites)

    def test_slice_through_load_not_reconstructible(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            a = f.li(0x10000)
            v = f.load(a)
            w = f.add(v, 1)
            f.ret(w)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        sites, complete = backward_slice(func, rd, "entry", 3, w.index)
        assert complete
        assert not slice_is_reconstructible(func, sites)

    def test_slice_instruction_order(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            x = f.li(5)
            y = f.add(x, 1)
            f.ret(y)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        sites, complete = backward_slice(func, rd, "entry", 2, y.index)
        assert complete
        instrs = slice_instructions(func, sites)
        assert len(instrs) == 2
        # Producer before consumer.
        assert instrs[0].defs()[0] == x
        assert instrs[1].defs()[0] == y

    def test_slice_size_cap(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            x = f.li(1)
            for _ in range(100):
                x = f.add(x, 1)
            f.ret(x)
        func = b.module.function("f")
        rd = compute_reaching_defs(func)
        sites, complete = backward_slice(func, rd, "entry", 101, x.index, max_sites=10)
        assert not complete
