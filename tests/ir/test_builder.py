"""Tests for the fluent IR builder and its structured control flow."""

import pytest

from repro.ir import (
    CFG,
    IRBuilder,
    Jump,
    Branch,
    Ret,
    natural_loops,
    verify_module,
)
from repro.ir.builder import FunctionBuilder
from repro.ir.module import Module
from repro.ir.values import Reg


def build(name="m"):
    return IRBuilder(name)


class TestRegistersAndParams:
    def test_params_are_low_registers(self):
        b = build()
        with b.function("f", params=["a", "b"]) as f:
            assert f.param(0) == Reg(0)
            assert f.param(1) == Reg(1)
            f.ret()
        assert b.module.function("f").num_params == 2

    def test_param_out_of_range(self):
        b = build()
        with b.function("f", params=["a"]) as f:
            with pytest.raises(IndexError):
                f.param(1)
            f.ret()

    def test_fresh_registers_increment(self):
        b = build()
        with b.function("f") as f:
            r1 = f.reg()
            r2 = f.reg()
            assert r2.index == r1.index + 1
            f.ret()

    def test_num_regs_tracks_allocation(self):
        b = build()
        with b.function("f", params=["a"]) as f:
            f.reg()
            f.reg()
            f.ret()
        assert b.module.function("f").num_regs == 3


class TestBlocks:
    def test_entry_block_exists(self):
        b = build()
        with b.function("f") as f:
            f.ret()
        assert b.module.function("f").entry.label == "entry"

    def test_fallthrough_jump_inserted(self):
        b = build()
        with b.function("f") as f:
            f.li(1)
            f.start_block("next")
            f.ret()
        func = b.module.function("f")
        assert isinstance(func.blocks["entry"].terminator, Jump)
        assert func.blocks["entry"].terminator.target == "next"

    def test_finish_seals_open_block_with_ret(self):
        b = build()
        with b.function("f") as f:
            f.li(1)
        assert isinstance(b.module.function("f").entry.terminator, Ret)

    def test_emit_after_terminator_fails(self):
        b = build()
        with b.function("f") as f:
            f.ret()
            with pytest.raises(RuntimeError):
                f.li(1)
            f.start_block("unreachable")
            f.ret()

    def test_labels_unique(self):
        b = build()
        with b.function("f") as f:
            labels = {f.label("x") for _ in range(100)}
            assert len(labels) == 100
            f.ret()


class TestStructuredControlFlow:
    def test_for_range_builds_one_loop(self):
        b = build()
        with b.function("f", params=["n"]) as f:
            with f.for_range(f.param(0)):
                f.li(1)
            f.ret()
        verify_module(b.module)
        func = b.module.function("f")
        loops = natural_loops(CFG(func))
        assert len(loops) == 1

    def test_nested_for_range(self):
        b = build()
        with b.function("f", params=["n"]) as f:
            with f.for_range(f.param(0)):
                with f.for_range(f.param(0)):
                    f.li(1)
            f.ret()
        verify_module(b.module)
        loops = natural_loops(CFG(b.module.function("f")))
        assert len(loops) == 2
        depths = sorted(l.depth for l in loops)
        assert depths == [1, 2]

    def test_for_range_negative_step(self):
        b = build()
        with b.function("f", params=["n"]) as f:
            with f.for_range(0, start=f.param(0), step=-1):
                pass
            f.ret()
        verify_module(b.module)

    def test_for_range_zero_step_rejected(self):
        b = build()
        with b.function("f") as f:
            with pytest.raises(ValueError):
                with f.for_range(10, step=0):
                    pass
            if not f.terminated:
                f.ret()
        # module may be inconsistent after the failed context; don't verify

    def test_while_loop(self):
        b = build()
        with b.function("f", params=["n"]) as f:
            i = f.li(0)
            with f.while_loop(lambda: f.cmp("slt", i, f.param(0))):
                f.add(i, 1, dst=i)
            f.ret(i)
        verify_module(b.module)
        assert len(natural_loops(CFG(b.module.function("f")))) == 1

    def test_if_then(self):
        b = build()
        with b.function("f", params=["x"]) as f:
            r = f.li(0)
            with f.if_then(f.cmp("sgt", f.param(0), 5)):
                f.move(r, 1)
            f.ret(r)
        verify_module(b.module)

    def test_if_else(self):
        b = build()
        with b.function("f", params=["x"]) as f:
            r = f.reg()
            with f.if_else(f.cmp("sgt", f.param(0), 5)) as h:
                f.move(r, 1)
                h.otherwise()
                f.move(r, 2)
            f.ret(r)
        verify_module(b.module)
        func = b.module.function("f")
        # then/else/end plus entry
        assert len(func.blocks) == 4

    def test_if_else_without_otherwise(self):
        b = build()
        with b.function("f", params=["x"]) as f:
            r = f.li(0)
            with f.if_else(f.cmp("sgt", f.param(0), 5)):
                f.move(r, 1)
            f.ret(r)
        verify_module(b.module)

    def test_otherwise_twice_fails(self):
        b = build()
        with b.function("f", params=["x"]) as f:
            with f.if_else(f.cmp("sgt", f.param(0), 5)) as h:
                h.otherwise()
                with pytest.raises(RuntimeError):
                    h.otherwise()
            f.ret()

    def test_break_via_exit_label(self):
        b = build()
        with b.function("f", params=["n"]) as f:
            i = f.li(0)
            with f.while_loop(lambda: f.li(1)) as exit_label:
                f.add(i, 1, dst=i)
                with f.if_then(f.cmp("sge", i, f.param(0))):
                    f.jump(exit_label)
            f.ret(i)
        verify_module(b.module)


class TestModuleData:
    def test_alloc_returns_aligned_addresses(self):
        m = Module()
        a = m.alloc("a", 3)
        c = m.alloc("c", 1)
        assert a % 64 == 0
        assert c % 64 == 0
        assert c > a

    def test_alloc_with_init(self):
        m = Module()
        base = m.alloc("a", 4, init=[10, 20])
        assert m.initial_data[base] == 10
        assert m.initial_data[base + 8] == 20

    def test_duplicate_symbol_rejected(self):
        m = Module()
        m.alloc("a", 1)
        with pytest.raises(ValueError):
            m.alloc("a", 1)

    def test_oversized_init_rejected(self):
        m = Module()
        with pytest.raises(ValueError):
            m.alloc("a", 1, init=[1, 2])

    def test_zero_words_rejected(self):
        m = Module()
        with pytest.raises(ValueError):
            m.alloc("a", 0)

    def test_duplicate_function_rejected(self):
        b = build()
        with b.function("f") as f:
            f.ret()
        with pytest.raises(ValueError):
            with b.function("f") as f:
                f.ret()

    def test_call_arity_checked_by_verifier(self):
        from repro.ir import VerificationError

        b = build()
        with b.function("callee", params=["a", "b"]) as f:
            f.ret()
        with b.function("caller") as f:
            f.call("callee", [1])  # wrong arity
            f.ret()
        with pytest.raises(VerificationError):
            verify_module(b.module)
