"""Tests for operand value types and word arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.values import Imm, Reg, as_operand, wrap_word, WORD_BITS


class TestWrapWord:
    def test_identity_in_range(self):
        assert wrap_word(42) == 42
        assert wrap_word(-42) == -42

    def test_wraps_positive_overflow(self):
        assert wrap_word(2**63) == -(2**63)

    def test_wraps_negative_overflow(self):
        assert wrap_word(-(2**63) - 1) == 2**63 - 1

    def test_extremes(self):
        assert wrap_word(2**63 - 1) == 2**63 - 1
        assert wrap_word(-(2**63)) == -(2**63)

    @given(st.integers())
    def test_always_in_word_range(self, v):
        w = wrap_word(v)
        assert -(2**63) <= w < 2**63

    @given(st.integers())
    def test_idempotent(self, v):
        assert wrap_word(wrap_word(v)) == wrap_word(v)

    @given(st.integers(), st.integers())
    def test_addition_congruence(self, a, b):
        assert wrap_word(wrap_word(a) + wrap_word(b)) == wrap_word(a + b)


class TestReg:
    def test_repr(self):
        assert repr(Reg(3)) == "r3"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Reg(-1)

    def test_hashable_and_equal(self):
        assert Reg(2) == Reg(2)
        assert len({Reg(1), Reg(1), Reg(2)}) == 2


class TestImm:
    def test_repr(self):
        assert repr(Imm(5)) == "#5"

    def test_wraps_on_construction(self):
        assert Imm(2**63).value == -(2**63)

    def test_equality(self):
        assert Imm(7) == Imm(7)
        assert Imm(7) != Imm(8)


class TestAsOperand:
    def test_int_becomes_imm(self):
        assert as_operand(9) == Imm(9)

    def test_bool_becomes_imm(self):
        assert as_operand(True) == Imm(1)

    def test_reg_passthrough(self):
        r = Reg(4)
        assert as_operand(r) is r

    def test_imm_passthrough(self):
        i = Imm(1)
        assert as_operand(i) is i

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_operand("r1")
        with pytest.raises(TypeError):
            as_operand(1.5)
