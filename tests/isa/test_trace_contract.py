"""Pins the observer event-ordering contract (repro.isa.trace docstring).

Every downstream consumer — the Capri system, the crash injector, the
persistency checker — relies on these properties; a machine change that
breaks one must fail here, not in a flaky campaign.
"""

import pytest

from repro.compiler import CapriCompiler, OptConfig
from repro.isa.machine import Machine
from repro.isa.trace import (
    EV_BOUNDARY,
    EV_CKPT,
    EV_RETIRE,
    EV_STORE,
    CollectingObserver,
    TeeObserver,
    TickCountingObserver,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def compiled():
    module, spawns = get_workload("genome").build(0.15)
    module = CapriCompiler(OptConfig.licm(64)).compile(module).module
    return module, spawns


def _run(module, spawns, observer):
    machine = Machine(module, quantum=32)
    for name, args in spawns:
        machine.spawn(name, args)
    machine.run(observer)
    return machine


def test_store_old_value_is_architectural(compiled):
    """Rule 1: on_store's ``old`` is the value the store overwrote."""
    module, spawns = compiled
    obs = CollectingObserver()
    _run(module, spawns, obs)
    stores = obs.of_kind(EV_STORE)
    assert stores, "workload must store"
    last = {}
    checked = 0
    for _, core, addr, value, old in stores:
        if addr in last:
            assert old == last[addr], (
                f"store to {addr:#x} reports old={old}, last written "
                f"value was {last[addr]}"
            )
            checked += 1
        last[addr] = value
    assert checked > 0


def test_per_core_event_order_is_deterministic(compiled):
    """Rule 2: two identical runs deliver identical per-core streams."""
    module, spawns = compiled
    a, b = CollectingObserver(), CollectingObserver()
    _run(module, spawns, a)
    _run(module, spawns, b)
    assert a.events == b.events


def test_spawn_prologue_ckpts_then_spawn_boundary(compiled):
    """Rule 3: a hart's first events are its spawn-argument checkpoints
    followed by the implicit region_id == -1 boundary, before any
    retire."""
    module, spawns = compiled
    obs = CollectingObserver()
    _run(module, spawns, obs)
    cores = {e[1] for e in obs.events}
    for core in cores:
        stream = [e for e in obs.events if e[1] == core]
        i = 0
        while i < len(stream) and stream[i][0] == EV_CKPT:
            i += 1
        assert i < len(stream) and stream[i][0] == EV_BOUNDARY
        assert stream[i][2] == -1, "spawn boundary must carry region -1"
        assert all(e[0] != EV_RETIRE for e in stream[:i])


def test_tee_observer_is_transparent(compiled):
    """TeeObserver delivers every event to every branch, in order."""
    module, spawns = compiled
    solo = CollectingObserver()
    _run(module, spawns, solo)
    first, second = CollectingObserver(), CollectingObserver()
    _run(module, spawns, TeeObserver(first, second))
    assert first.events == solo.events
    assert second.events == solo.events


def test_tick_counter_matches_crash_index_universe(compiled):
    """Rule 5: one tick per callback — TickCountingObserver's total is
    the number of events any observer sees (the CrashPlan universe)."""
    module, spawns = compiled
    tick, collect = TickCountingObserver(), CollectingObserver()
    _run(module, spawns, TeeObserver(tick, collect))
    assert tick.events == len(collect.events)


def test_columnar_trace_is_verbatim_transcript(compiled):
    """Rule 6 (repro.trace): the columnar ``ExecTrace`` is a lossless
    transcript of the observer stream — ``trace.event(i)`` must equal
    the ``CollectingObserver`` tuple ``i``, element for element, for
    every event of the run."""
    from repro.trace.record import capture_trace

    module, spawns = compiled
    obs = CollectingObserver()
    _run(module, spawns, obs)
    trace = capture_trace(module, spawns, quantum=32)
    assert len(trace) == len(obs.events)
    for i, expected in enumerate(obs.events):
        got = trace.event(i)
        assert got == expected, (
            f"event {i}: trace {got!r} != observer {expected!r}"
        )
    # Every event kind the workload exercises must appear in the trace
    # under the same tag; a silently dropped callback would shrink the
    # crash-index universe.
    assert {e[0] for e in obs.events} == {
        trace.event(i)[0] for i in range(len(trace))
    }


def test_columnar_deliver_replays_the_stream(compiled):
    """Rule 6, replay side: ``trace.deliver(observer)`` re-drives an
    observer with the exact stream the machine produced, and slicing by
    ``start``/``stop`` concatenates back to the whole."""
    from repro.trace.record import capture_trace

    module, spawns = compiled
    obs = CollectingObserver()
    _run(module, spawns, obs)
    trace = capture_trace(module, spawns, quantum=32)

    replayed = CollectingObserver()
    trace.deliver(replayed)
    assert replayed.events == obs.events

    sliced = CollectingObserver()
    mid = len(trace) // 3
    trace.deliver(sliced, 0, mid)
    trace.deliver(sliced, mid, len(trace))
    assert sliced.events == obs.events


def test_boundary_before_drain(compiled):
    """Rule 4: no region's redo data drains before its boundary event.

    Pinned end-to-end: the persistency checker's model flags any
    pre-boundary drain as premature-persist, so a clean checked run is
    the contract's witness.
    """
    from repro.check.mutants import checked_run, matrix_params

    module, spawns = compiled
    checker, error = checked_run(module, spawns, matrix_params(), 64)
    assert error is None
    assert checker.report.ok, checker.report.summary()
