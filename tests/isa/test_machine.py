"""Tests for the functional machine: semantics, calls, events, multi-hart."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import IRBuilder, verify_module
from repro.ir.instructions import RegionBoundary
from repro.ir.module import ckpt_slot_addr
from repro.isa import (
    CollectingObserver,
    CountingObserver,
    EV_ATOMIC,
    EV_BOUNDARY,
    EV_CKPT,
    EV_FENCE,
    EV_HALT,
    EV_LOAD,
    EV_STORE,
    Machine,
    MachineError,
)


def run_main(builder, args=(), observer=None):
    verify_module(builder.module)
    m = Machine(builder.module)
    rv = m.run_function("main", args, observer=observer)
    return m, rv


class TestArithmetic:
    def test_constant_return(self):
        b = IRBuilder("m")
        with b.function("main") as f:
            f.ret(f.li(42))
        _, rv = run_main(b)
        assert rv == 42

    def test_arith_chain(self):
        b = IRBuilder("m")
        with b.function("main", params=["a", "b"]) as f:
            x = f.add(f.param(0), f.param(1))
            y = f.mul(x, 3)
            z = f.sub(y, 5)
            f.ret(z)
        _, rv = run_main(b, [10, 4])
        assert rv == (10 + 4) * 3 - 5

    def test_unop(self):
        b = IRBuilder("m")
        with b.function("main", params=["a"]) as f:
            f.ret(f.unop("neg", f.param(0)))
        _, rv = run_main(b, [17])
        assert rv == -17

    @given(st.integers(-(2**63), 2**63 - 1), st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=25, deadline=None)
    def test_add_matches_python_mod_2_64(self, a, c):
        from repro.ir.values import wrap_word

        b = IRBuilder("m")
        with b.function("main", params=["a", "b"]) as f:
            f.ret(f.add(f.param(0), f.param(1)))
        _, rv = run_main(b, [a, c])
        assert rv == wrap_word(a + c)

    def test_wraparound(self):
        b = IRBuilder("m")
        with b.function("main") as f:
            big = f.li(2**63 - 1)
            f.ret(f.add(big, 1))
        _, rv = run_main(b)
        assert rv == -(2**63)


class TestMemory:
    def test_store_then_load(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 1)
        with b.function("main") as f:
            f.store(99, addr)
            f.ret(f.load(addr))
        m, rv = run_main(b)
        assert rv == 99
        assert m.read_word(addr) == 99

    def test_initialized_data(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 2, init=[7, 8])
        with b.function("main") as f:
            f.ret(f.add(f.load(addr), f.load(addr, offset=8)))
        _, rv = run_main(b)
        assert rv == 15

    def test_uninitialized_memory_reads_zero(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 1)
        with b.function("main") as f:
            f.ret(f.load(addr))
        _, rv = run_main(b)
        assert rv == 0

    def test_store_events_carry_old_value(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 1, init=[5])
        with b.function("main") as f:
            f.store(6, addr)
            f.store(7, addr)
            f.ret()
        obs = CollectingObserver()
        run_main(b, observer=obs)
        stores = obs.of_kind(EV_STORE)
        assert stores[0][2:] == (addr, 6, 5)
        assert stores[1][2:] == (addr, 7, 6)


class TestControlFlow:
    def test_branch_taken(self):
        b = IRBuilder("m")
        with b.function("main", params=["x"]) as f:
            r = f.reg()
            with f.if_else(f.cmp("sgt", f.param(0), 10)) as h:
                f.move(r, 1)
                h.otherwise()
                f.move(r, 2)
            f.ret(r)
        _, rv = run_main(b, [20])
        assert rv == 1
        _, rv = run_main(b, [5])
        assert rv == 2

    def test_loop_sum(self):
        b = IRBuilder("m")
        with b.function("main", params=["n"]) as f:
            acc = f.li(0)
            with f.for_range(f.param(0)) as i:
                f.add(acc, i, dst=acc)
            f.ret(acc)
        _, rv = run_main(b, [10])
        assert rv == 45

    def test_while_loop(self):
        b = IRBuilder("m")
        with b.function("main", params=["n"]) as f:
            x = f.move(f.reg(), f.param(0))
            count = f.li(0)
            with f.while_loop(lambda: f.cmp("sgt", x, 1)):
                with f.if_else(f.cmp("seq", f.rem(x, 2), 0)) as h:
                    f.div(x, 2, dst=x)
                    h.otherwise()
                    f.add(f.mul(x, 3), 1, dst=x)
                f.add(count, 1, dst=count)
            f.ret(count)
        _, rv = run_main(b, [6])
        assert rv == 8  # collatz(6) = 8 steps

    def test_infinite_loop_hits_step_limit(self):
        b = IRBuilder("m")
        with b.function("main") as f:
            f.start_block("spin")
            f.jump("spin")
        verify_module(b.module)
        m = Machine(b.module)
        m.spawn("main")
        with pytest.raises(MachineError, match="max_steps"):
            m.run(max_steps=1000)


class TestCalls:
    def test_call_and_return_value(self):
        b = IRBuilder("m")
        with b.function("double", params=["x"]) as f:
            f.ret(f.mul(f.param(0), 2))
        with b.function("main", params=["x"]) as f:
            r = f.call("double", [f.param(0)], returns=True)
            f.ret(r)
        _, rv = run_main(b, [21])
        assert rv == 42

    def test_nested_calls(self):
        b = IRBuilder("m")
        with b.function("inc", params=["x"]) as f:
            f.ret(f.add(f.param(0), 1))
        with b.function("inc2", params=["x"]) as f:
            r = f.call("inc", [f.param(0)], returns=True)
            r2 = f.call("inc", [r], returns=True)
            f.ret(r2)
        with b.function("main") as f:
            f.ret(f.call("inc2", [40], returns=True))
        _, rv = run_main(b)
        assert rv == 42

    def test_recursion(self):
        b = IRBuilder("m")
        with b.function("fib", params=["n"]) as f:
            with f.if_then(f.cmp("sle", f.param(0), 1)):
                f.ret(f.param(0))
            a = f.call("fib", [f.sub(f.param(0), 1)], returns=True)
            c = f.call("fib", [f.sub(f.param(0), 2)], returns=True)
            f.ret(f.add(a, c))
        with b.function("main") as f:
            f.ret(f.call("fib", [10], returns=True))
        _, rv = run_main(b)
        assert rv == 55

    def test_caller_registers_preserved_across_call(self):
        b = IRBuilder("m")
        with b.function("clobber", params=["x"]) as f:
            # uses many registers internally
            t = f.param(0)
            for _ in range(10):
                t = f.add(t, 1)
            f.ret(t)
        with b.function("main") as f:
            keep = f.li(777)
            f.call("clobber", [1], returns=True)
            f.ret(keep)
        _, rv = run_main(b)
        assert rv == 777

    def test_stack_overflow_detected(self):
        b = IRBuilder("m")
        with b.function("spin", params=["n"]) as f:
            r = f.call("spin", [f.param(0)], returns=True)
            f.ret(r)
        with b.function("main") as f:
            f.ret(f.call("spin", [1], returns=True))
        verify_module(b.module)
        m = Machine(b.module)
        m.spawn("main")
        with pytest.raises(MachineError, match="overflow"):
            m.run()

    def test_call_emits_argument_checkpoints(self):
        b = IRBuilder("m")
        with b.function("f", params=["a", "b"]) as f:
            f.ret(f.add(f.param(0), f.param(1)))
        with b.function("main") as f:
            f.ret(f.call("f", [3, 4], returns=True))
        obs = CollectingObserver()
        run_main(b, observer=obs)
        ckpts = obs.of_kind(EV_CKPT)
        # spawn ckpts: none (main has no params); call ckpts: a and b at depth 1
        call_ckpts = [c for c in ckpts if c[4] >= ckpt_slot_addr(0, 0, 1)]
        assert [(c[2], c[3]) for c in call_ckpts] == [(0, 3), (1, 4)]


class TestEvents:
    def test_spawn_emits_boundary_and_arg_ckpts(self):
        b = IRBuilder("m")
        with b.function("main", params=["a"]) as f:
            f.ret(f.param(0))
        obs = CollectingObserver()
        run_main(b, [5], observer=obs)
        boundaries = obs.of_kind(EV_BOUNDARY)
        assert boundaries[0][2] == -1  # implicit spawn boundary
        ckpts = obs.of_kind(EV_CKPT)
        assert ckpts[0][2:4] == (0, 5)

    def test_fence_event(self):
        b = IRBuilder("m")
        with b.function("main") as f:
            f.fence()
            f.ret()
        obs = CollectingObserver()
        run_main(b, observer=obs)
        assert len(obs.of_kind(EV_FENCE)) == 1

    def test_halt_event(self):
        b = IRBuilder("m")
        with b.function("main") as f:
            f.halt()
        obs = CollectingObserver()
        run_main(b, observer=obs)
        assert len(obs.of_kind(EV_HALT)) == 1

    def test_region_boundary_continuation_points_past_boundary(self):
        b = IRBuilder("m")
        with b.function("main") as f:
            f.emit(RegionBoundary(7))
            f.ret(f.li(1))
        obs = CollectingObserver()
        run_main(b, observer=obs)
        boundaries = obs.of_kind(EV_BOUNDARY)
        explicit = [e for e in boundaries if e[2] == 7]
        assert len(explicit) == 1
        cont = explicit[0][3]
        assert cont.func_name == "main"
        assert cont.index == 1  # instruction after the boundary
        assert cont.callstack == ()

    def test_counting_observer(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 1)
        with b.function("main") as f:
            f.store(1, addr)
            f.load(addr)
            f.fence()
            f.ret()
        obs = CountingObserver()
        run_main(b, observer=obs)
        assert obs.stores == 1
        assert obs.loads == 1
        assert obs.fences == 1
        assert obs.retired > 3


class TestAtomics:
    def test_atomic_add_returns_old(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 1, init=[10])
        with b.function("main") as f:
            old = f.atomic("add", addr, 5)
            f.ret(old)
        m, rv = run_main(b)
        assert rv == 10
        assert m.read_word(addr) == 15

    def test_atomic_swap(self):
        b = IRBuilder("m")
        addr = b.module.alloc("lock", 1)
        with b.function("main") as f:
            old = f.atomic("swap", addr, 1)
            f.ret(old)
        m, rv = run_main(b)
        assert rv == 0
        assert m.read_word(addr) == 1

    def test_atomic_event(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 1)
        with b.function("main") as f:
            f.atomic("add", addr, 3)
            f.ret()
        obs = CollectingObserver()
        run_main(b, observer=obs)
        atomics = obs.of_kind(EV_ATOMIC)
        assert atomics == [(EV_ATOMIC, 0, addr, 3, 0)]


class TestMultiHart:
    def _counter_module(self):
        b = IRBuilder("m")
        addr = b.module.alloc("counter", 1)
        with b.function("worker", params=["n"]) as f:
            with f.for_range(f.param(0)):
                f.atomic("add", addr, 1)
            f.ret()
        verify_module(b.module)
        return b.module, addr

    def test_two_harts_atomic_increment(self):
        module, addr = self._counter_module()
        m = Machine(module)
        m.spawn("worker", [100])
        m.spawn("worker", [100])
        m.run()
        assert m.read_word(addr) == 200

    def test_harts_round_robin_interleave(self):
        b = IRBuilder("m")
        log = b.module.alloc("log", 64)
        idx = b.module.alloc("idx", 1)
        with b.function("worker", params=["tag"]) as f:
            with f.for_range(4):
                slot = f.atomic("add", idx, 1)
                a = f.add(log, f.shl(slot, 3))
                f.store(f.param(0), a)
            f.ret()
        verify_module(b.module)
        m = Machine(b.module, quantum=8)
        m.spawn("worker", [1])
        m.spawn("worker", [2])
        m.run()
        tags = [m.read_word(log + i * 8) for i in range(8)]
        assert sorted(tags) == [1, 1, 1, 1, 2, 2, 2, 2]
        # with quantum 8 both tags appear before the end: interleaving real
        assert tags[0] != tags[-1]

    def test_determinism(self):
        module, addr = self._counter_module()
        results = []
        for _ in range(2):
            m = Machine(module, quantum=5)
            m.spawn("worker", [37])
            m.spawn("worker", [53])
            retired = m.run()
            results.append((retired, m.read_word(addr)))
        assert results[0] == results[1]

    def test_spawn_arity_checked(self):
        module, _ = self._counter_module()
        m = Machine(module)
        with pytest.raises(MachineError, match="args"):
            m.spawn("worker", [1, 2])

    def test_quantum_validation(self):
        module, _ = self._counter_module()
        with pytest.raises(ValueError):
            Machine(module, quantum=0)
