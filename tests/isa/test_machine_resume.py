"""Tests for Machine.resume — the recovery protocol's re-entry point."""

import pytest

from repro.ir import IRBuilder, verify_module
from repro.isa import Machine
from repro.isa.machine import Continuation, MachineError


def build_counter():
    b = IRBuilder("m")
    out = b.module.alloc("out", 4)
    with b.function("helper", params=["x"]) as f:
        f.store(f.param(0), out, offset=8)
        f.ret(f.mul(f.param(0), 2))
    with b.function("main", params=["n"]) as f:
        acc = f.li(0)
        with f.for_range(f.param(0)) as i:
            f.add(acc, i, dst=acc)
        r = f.call("helper", [acc], returns=True)
        f.store(r, out)
        f.ret(r)
    verify_module(b.module)
    return b.module, out


class TestResume:
    def test_resume_mid_function(self):
        module, out = build_counter()
        # Resume at the loop header with i=7, acc=21, n=10: finishes the
        # remaining iterations then calls helper.
        func = module.functions["main"]
        header = [l for l in func.blocks if "for.header" in l][0]
        machine = Machine(module)
        cont = Continuation("main", header, 0, ())
        # regs: n=10, acc(r1)=21, i(r2)=7 — mirror builder allocation order.
        regs = [10, 21, 7] + [0] * (func.num_regs - 3)
        machine.resume(0, cont, regs)
        machine.run()
        expected = (21 + sum(range(7, 10))) * 2
        assert machine.read_word(out) == expected

    def test_resume_inside_callee_with_caller_frame(self):
        module, out = build_counter()
        helper = module.functions["helper"]
        main = module.functions["main"]
        # Fabricate the frame: caller suspended right after its call
        # (which sits somewhere in main); find the call instruction.
        from repro.ir.instructions import Call

        call_site = None
        for label, block in main.blocks.items():
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, Call):
                    call_site = (label, i, instr.dst.index)
        assert call_site
        label, index, dst = call_site
        frame = ("main", label, index + 1, tuple([0] * main.num_regs), dst)
        cont = Continuation("helper", helper.entry.label, 0, (frame,))
        machine = Machine(module)
        machine.resume(0, cont, [21] + [0] * (helper.num_regs - 1))
        machine.run()
        assert machine.read_word(out) == 42
        assert machine.read_word(out + 8) == 21

    def test_resume_pads_missing_registers(self):
        module, _ = build_counter()
        func = module.functions["main"]
        cont = Continuation("main", func.entry.label, 0, ())
        machine = Machine(module)
        hart = machine.resume(0, cont, [5])  # only r0 supplied
        assert len(hart.regs) == func.num_regs
        machine.run()  # runs main(5) to completion

    def test_resume_pads_hart_list(self):
        module, _ = build_counter()
        func = module.functions["main"]
        cont = Continuation("main", func.entry.label, 0, ())
        machine = Machine(module)
        machine.resume(3, cont, [2])
        assert machine.harts[3] is not None
        assert machine.harts[0] is None
        machine.run()  # None slots are skipped

    def test_resumed_hart_emits_no_spawn_events(self):
        from repro.isa import CollectingObserver
        from repro.isa.trace import EV_BOUNDARY

        module, _ = build_counter()
        func = module.functions["main"]
        cont = Continuation("main", func.entry.label, 0, ())
        machine = Machine(module)
        machine.resume(0, cont, [3])
        obs = CollectingObserver()
        machine.run(obs)
        spawn_boundaries = [e for e in obs.of_kind(EV_BOUNDARY) if e[2] == -1]
        assert spawn_boundaries == []

    def test_resume_unknown_function_raises(self):
        module, _ = build_counter()
        cont = Continuation("ghost", "entry", 0, ())
        machine = Machine(module)
        with pytest.raises(KeyError):
            machine.resume(0, cont, [])
