"""Tests for the small-function inlining extension."""

import pytest

from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.clone import clone_module
from repro.compiler.inlining import inline_small_functions
from repro.ir import IRBuilder, verify_module
from repro.ir.instructions import Call
from repro.isa import CountingObserver, Machine

from tests.compiler.conftest import run_main


def call_count(module):
    return sum(
        isinstance(i, Call)
        for f in module.functions.values()
        for i in f.instructions()
    )


class TestInlineSmallFunctions:
    def _module(self):
        b = IRBuilder("m")
        out = b.module.alloc("out", 8)
        with b.function("leaf", params=["x"]) as f:
            with f.if_else(f.cmp("sgt", f.param(0), 10)) as h:
                f.store(f.param(0), out)
                h.otherwise()
                f.store(0, out, offset=8)
            f.ret(f.mul(f.param(0), 2))
        with b.function("main", params=["n"]) as f:
            acc = f.li(0)
            with f.for_range(f.param(0)) as i:
                r = f.call("leaf", [i], returns=True)
                f.add(acc, r, dst=acc)
            f.ret(acc)
        verify_module(b.module)
        return b.module

    def test_inlines_leaf_call(self):
        module = clone_module(self._module())
        assert call_count(module) == 1
        inlined = inline_small_functions(module)
        assert inlined == 1
        assert call_count(module) == 0
        verify_module(module)

    def test_semantics_preserved(self):
        module = self._module()
        rv0, d0 = run_main(module, [25])
        inlined = clone_module(module)
        inline_small_functions(inlined)
        rv1, d1 = run_main(inlined, [25])
        assert (rv0, d0) == (rv1, d1)

    def test_void_callee(self):
        b = IRBuilder("m")
        out = b.module.alloc("out", 2)
        with b.function("bump", params=["addr"]) as f:
            f.store(f.add(f.load(f.param(0)), 1), f.param(0))
            f.ret()
        with b.function("main") as f:
            f.call("bump", [out])
            f.call("bump", [out])
            f.ret(f.load(out))
        verify_module(b.module)
        rv0, d0 = run_main(b.module)
        inlined = clone_module(b.module)
        assert inline_small_functions(inlined) == 2
        rv1, d1 = run_main(inlined)
        assert (rv0, d0) == (rv1, d1)
        assert rv1 == 2

    def test_recursive_callee_not_inlined(self):
        b = IRBuilder("m")
        with b.function("fib", params=["n"]) as f:
            with f.if_then(f.cmp("sle", f.param(0), 1)):
                f.ret(f.param(0))
            a = f.call("fib", [f.sub(f.param(0), 1)], returns=True)
            c = f.call("fib", [f.sub(f.param(0), 2)], returns=True)
            f.ret(f.add(a, c))
        with b.function("main") as f:
            f.ret(f.call("fib", [10], returns=True))
        verify_module(b.module)
        inlined = clone_module(b.module)
        # fib calls itself -> not a leaf -> nothing inlinable anywhere.
        assert inline_small_functions(inlined) == 0
        rv, _ = run_main(inlined)
        assert rv == 55

    def test_large_callee_not_inlined(self):
        b = IRBuilder("m")
        with b.function("big", params=["x"]) as f:
            t = f.param(0)
            for _ in range(60):
                t = f.add(t, 1)
            f.ret(t)
        with b.function("main") as f:
            f.ret(f.call("big", [1], returns=True))
        verify_module(b.module)
        inlined = clone_module(b.module)
        assert inline_small_functions(inlined, max_callee_instrs=32) == 0

    def test_nested_callers_inline_independently(self):
        b = IRBuilder("m")
        with b.function("leaf", params=["x"]) as f:
            f.ret(f.add(f.param(0), 1))
        with b.function("mid", params=["x"]) as f:
            r = f.call("leaf", [f.param(0)], returns=True)
            f.ret(f.mul(r, 2))
        with b.function("main") as f:
            a = f.call("mid", [5], returns=True)
            c = f.call("leaf", [a], returns=True)
            f.ret(c)
        verify_module(b.module)
        rv0, _ = run_main(b.module)
        inlined = clone_module(b.module)
        n = inline_small_functions(inlined)
        # leaf into mid, leaf into main, and (mid now leaf-free but has no
        # calls left) mid into main on the next sweep.
        assert n >= 2
        rv1, _ = run_main(inlined)
        assert rv0 == rv1 == 13


class TestInlinedConfig:
    def test_reduces_boundary_events_for_call_dense_code(self):
        from repro.workloads import get_workload

        module, spawns = get_workload("oskernel").build(scale=0.3)

        def boundaries(cfg):
            out = CapriCompiler(cfg).compile(module).module
            m = Machine(out)
            obs = CountingObserver()
            for fn, a in spawns:
                m.spawn(fn, a)
            m.run(obs)
            return obs.boundaries

        assert boundaries(OptConfig.inlined(256)) < boundaries(OptConfig.licm(256))

    def test_inlined_config_preserves_results(self):
        from repro.ir.module import is_ckpt_addr
        from repro.workloads import get_workload

        module, spawns = get_workload("oskernel").build(scale=0.3)

        def run(mod):
            m = Machine(mod)
            for fn, a in spawns:
                m.spawn(fn, a)
            m.run()
            return {a: v for a, v in m.memory.items() if not is_ckpt_addr(a)}

        base = run(module)
        inl = run(CapriCompiler(OptConfig.inlined(64)).compile(module).module)
        assert base == inl

    def test_crash_recovery_still_exact_with_inlining(self):
        from repro.arch.crash import CrashPlan, run_until_crash
        from repro.arch.recovery import recover, resume_and_finish
        from repro.ir.module import is_ckpt_addr
        from repro.workloads import get_workload

        module, spawns = get_workload("oskernel").build(scale=0.2)
        capri = CapriCompiler(OptConfig.inlined(32)).compile(module).module
        ref = Machine(capri)
        for fn, a in spawns:
            ref.spawn(fn, a)
        ref.run()
        ref_data = {
            a: v for a, v in ref.memory.items() if not is_ckpt_addr(a)
        }
        for at in [40, 400, 1200]:
            state = run_until_crash(capri, spawns, CrashPlan(at), threshold=32)
            if state is None:
                continue
            rec = recover(state, capri)
            fin = resume_and_finish(rec, capri, spawns)
            data = {
                a: v for a, v in fin.memory.items() if not is_ckpt_addr(a)
            }
            assert data == ref_data, f"at={at}"
