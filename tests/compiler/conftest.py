"""Shared fixtures: example kernels and a random structured-program generator.

The random generator builds small but control-flow-rich programs through
the public IRBuilder API (nested loops, branches, calls, stores), used for
semantics-preservation property tests: every compiler configuration must
compute exactly what the uninstrumented program computes.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.ir import IRBuilder, verify_module
from repro.ir.module import Module
from repro.isa import Machine


def build_loop_kernel(n: int = 50, threshold_data: int = 64) -> Tuple[Module, int]:
    """A store-heavy loop kernel over an array; returns (module, array base)."""
    b = IRBuilder("loop_kernel")
    arr = b.module.alloc("arr", max(n, 1))
    with b.function("kernel", params=["base", "n"]) as f:
        acc = f.li(0)
        with f.for_range(f.param(1)) as i:
            addr = f.add(f.param(0), f.shl(i, 3))
            v = f.load(addr)
            f.store(f.add(v, i), addr)
            f.add(acc, v, dst=acc)
        f.ret(acc)
    with b.function("main") as f:
        s = f.call("kernel", [arr, n], returns=True)
        f.ret(s)
    verify_module(b.module)
    return b.module, arr


def build_branchy_kernel() -> Module:
    """Kernel with reconstructible values (pruning fodder, cf. Figure 3)."""
    b = IRBuilder("branchy")
    out = b.module.alloc("out", 8)
    with b.function("main", params=["x"]) as f:
        r1 = f.add(f.param(0), 10)
        r3 = f.mul(f.param(0), 3)
        r2 = f.add(r1, r3)  # reconstructible from r1 and r3
        with f.for_range(8) as i:
            f.store(f.add(r2, i), f.add(out, f.shl(i, 3)))
        f.ret(f.add(r2, r1))
    verify_module(b.module)
    return b.module


def random_program(seed: int, max_funcs: int = 3) -> Tuple[Module, List[int]]:
    """Generate a random structured program; returns (module, arg list).

    The program is deterministic given the seed, always terminates (loops
    are bounded counted loops), and touches memory through a shared array
    so that stores and loads are exercised.
    """
    rng = random.Random(seed)
    b = IRBuilder(f"rand{seed}")
    arr_words = 64
    arr = b.module.alloc("arr", arr_words, init=[rng.randrange(100) for _ in range(arr_words)])

    n_helpers = rng.randrange(0, max_funcs)
    helper_names = []
    for h in range(n_helpers):
        name = f"helper{h}"
        with b.function(name, params=["a", "b"]) as f:
            x = f.binop(rng.choice(["add", "sub", "mul", "xor"]), f.param(0), f.param(1))
            if rng.random() < 0.5:
                with f.if_then(f.cmp("sgt", x, 0)):
                    idx = f.and_(x, arr_words - 1)
                    f.store(x, f.add(arr, f.shl(idx, 3)))
            f.ret(x)
        helper_names.append(name)

    def emit_body(f, depth: int, vars_: List) -> None:
        for _ in range(rng.randrange(1, 5)):
            choice = rng.random()
            if choice < 0.35:  # arithmetic
                op = rng.choice(["add", "sub", "mul", "and", "or", "xor", "min", "max"])
                a = rng.choice(vars_)
                bb = rng.choice(vars_ + [rng.randrange(1, 16)])
                vars_.append(f.binop(op, a, bb))
            elif choice < 0.5:  # memory
                idx = f.and_(rng.choice(vars_), arr_words - 1)
                addr = f.add(arr, f.shl(idx, 3))
                if rng.random() < 0.5:
                    vars_.append(f.load(addr))
                else:
                    f.store(rng.choice(vars_), addr)
            elif choice < 0.65 and depth < 2:  # counted loop
                trip = rng.randrange(1, 8)
                with f.for_range(trip):
                    emit_body(f, depth + 1, vars_)
            elif choice < 0.8 and depth < 3:  # branch
                cond = f.cmp(
                    rng.choice(["slt", "sgt", "seq", "sne"]),
                    rng.choice(vars_),
                    rng.randrange(0, 50),
                )
                with f.if_else(cond) as handle:
                    emit_body(f, depth + 1, list(vars_))
                    if rng.random() < 0.7:
                        handle.otherwise()
                        emit_body(f, depth + 1, list(vars_))
            elif helper_names:  # call
                callee = rng.choice(helper_names)
                vars_.append(
                    f.call(callee, [rng.choice(vars_), rng.choice(vars_)], returns=True)
                )

    with b.function("main", params=["a0", "a1"]) as f:
        vars_ = [f.param(0), f.param(1), f.li(rng.randrange(100))]
        emit_body(f, 0, vars_)
        # Fold everything into a single result so all paths matter.
        result = vars_[0]
        for v in vars_[1:]:
            result = f.xor(result, v)
        # Also hash the array contents into the result.
        with f.for_range(arr_words) as i:
            v = f.load(f.add(arr, f.shl(i, 3)))
            result = f.xor(f.mul(result, 31), v)
        f.ret(result)
    verify_module(b.module)
    args = [rng.randrange(0, 100), rng.randrange(0, 100)]
    return b.module, args


def run_main(module: Module, args=()) -> Tuple[int, dict]:
    """Run ``main`` to completion; return (result, final data memory)."""
    m = Machine(module)
    rv = m.run_function("main", args)
    from repro.ir.module import is_ckpt_addr

    data = {a: v for a, v in m.memory.items() if not is_ckpt_addr(a)}
    return rv, data


@pytest.fixture
def loop_kernel():
    return build_loop_kernel()


@pytest.fixture
def branchy_kernel():
    return build_branchy_kernel()
