"""Tests for checkpoint insertion, pruning, and LICM (Sections 4.2/4.4)."""

import pytest

from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.checkpoints import checkpoint_sites
from repro.ir import CFG, IRBuilder, natural_loops, verify_module
from repro.ir.instructions import CheckpointStore, RegionBoundary
from tests.compiler.conftest import build_branchy_kernel, build_loop_kernel, run_main


def compile_with(module, cfg):
    return CapriCompiler(cfg).compile(module)


class TestCheckpointInsertion:
    def test_checkpoints_follow_defs(self):
        module, _ = build_loop_kernel()
        out = compile_with(module, OptConfig.ckpt(64)).module
        for func in out.functions.values():
            for label, block in func.blocks.items():
                for i, instr in enumerate(block.instrs):
                    if isinstance(instr, CheckpointStore):
                        reg = instr.src.index
                        # A def of reg precedes in the same block.
                        defs_before = [
                            j
                            for j in range(i)
                            if any(d.index == reg for d in block.instrs[j].defs())
                        ]
                        assert defs_before, (
                            f"{func.name}/{label}[{i}] ckpt r{reg} has no "
                            "preceding def"
                        )

    def test_live_in_recorded_per_region(self):
        module, _ = build_loop_kernel()
        out = compile_with(module, OptConfig.ckpt(64)).module
        func = out.function("kernel")
        regions = func.meta["regions"]
        # At least the loop-header region carries live-ins.
        assert any(region.live_in for region in regions)

    def test_loop_carried_register_checkpointed_in_loop(self):
        """The loop counter is live at the header boundary => checkpointed
        once per iteration without further optimisation (Section 4.3's
        motivating overhead)."""
        from repro.isa import Machine, CountingObserver

        module, _ = build_loop_kernel(n=25)
        out = compile_with(module, OptConfig.ckpt(64)).module
        obs = CountingObserver()
        Machine(out).run_function("main", observer=obs)
        # >= one checkpoint per loop iteration
        assert obs.ckpts >= 25

    def test_semantics_preserved(self):
        module, _ = build_loop_kernel()
        rv0, d0 = run_main(module)
        out = compile_with(module, OptConfig.ckpt(32)).module
        rv1, d1 = run_main(out)
        assert (rv0, d0) == (rv1, d1)

    def test_requires_region_formation_first(self):
        from repro.compiler import insert_checkpoints

        module, _ = build_loop_kernel()
        func = module.function("kernel")
        with pytest.raises(ValueError, match="form_regions"):
            insert_checkpoints(func)


class TestUnrolling:
    def test_unroll_reduces_boundary_executions(self):
        from repro.isa import Machine, CountingObserver

        module, _ = build_loop_kernel(n=60)
        base = compile_with(module, OptConfig.ckpt(256)).module
        unrolled = compile_with(module, OptConfig.unrolling(256)).module
        obs_b, obs_u = CountingObserver(), CountingObserver()
        Machine(base).run_function("main", observer=obs_b)
        Machine(unrolled).run_function("main", observer=obs_u)
        assert obs_u.boundaries < obs_b.boundaries

    def test_unroll_reduces_checkpoints(self):
        from repro.isa import Machine, CountingObserver

        module, _ = build_loop_kernel(n=60)
        base = compile_with(module, OptConfig.ckpt(256)).module
        unrolled = compile_with(module, OptConfig.unrolling(256)).module
        obs_b, obs_u = CountingObserver(), CountingObserver()
        Machine(base).run_function("main", observer=obs_b)
        Machine(unrolled).run_function("main", observer=obs_u)
        assert obs_u.ckpts < obs_b.ckpts

    def test_unroll_preserves_semantics_dynamic_trip_counts(self):
        # Trip count is a runtime parameter: exactly the case traditional
        # unrolling cannot handle (Figure 2b) but speculative unrolling can.
        for n in [0, 1, 2, 3, 7, 8, 9, 63]:
            module, _ = build_loop_kernel(n=n)
            rv0, d0 = run_main(module)
            out = compile_with(module, OptConfig.unrolling(256)).module
            rv1, d1 = run_main(out)
            assert (rv0, d0) == (rv1, d1), f"n={n}"

    def test_unrolled_loop_body_duplicated(self):
        from repro.compiler import speculative_unroll
        from repro.compiler.clone import clone_module

        module, _ = build_loop_kernel(n=60)
        cloned = clone_module(module)
        func = cloned.function("kernel")
        before = func.num_instrs
        unrolled = speculative_unroll(func, threshold=256, max_unroll=4)
        assert unrolled == 1
        assert func.num_instrs > before * 2
        verify_module(cloned)

    def test_loops_with_calls_not_unrolled(self):
        b = IRBuilder("m")
        with b.function("leaf", params=["x"]) as f:
            f.ret(f.add(f.param(0), 1))
        with b.function("main", params=["n"]) as f:
            acc = f.li(0)
            with f.for_range(f.param(0)):
                acc = f.call("leaf", [acc], returns=True)
            f.ret(acc)
        verify_module(b.module)
        res = compile_with(b.module, OptConfig.unrolling(256))
        assert res.function_stats["main"].get("loops_unrolled", 0) == 0

    def test_max_unroll_respected(self):
        from repro.compiler.unrolling import choose_unroll_factor
        from repro.compiler.clone import clone_module

        module, _ = build_loop_kernel(n=60)
        cloned = clone_module(module)
        func = cloned.function("kernel")
        loop = natural_loops(CFG(func))[0]
        k = choose_unroll_factor(func, loop, threshold=10_000, max_unroll=6)
        assert k == 6


class TestPruning:
    def test_reconstructible_checkpoint_pruned(self, branchy_kernel):
        res_no = compile_with(branchy_kernel, OptConfig.pruning(64))
        assert res_no.total.get("checkpoints_pruned", 0) >= 1

    def test_recovery_blocks_generated(self, branchy_kernel):
        out = compile_with(branchy_kernel, OptConfig.pruning(64)).module
        func = out.function("main")
        assert func.recovery_blocks  # at least one region has recovery code

    def test_recovery_block_is_pure(self, branchy_kernel):
        from repro.ir.instructions import BinOp, Move, UnOp

        out = compile_with(branchy_kernel, OptConfig.pruning(64)).module
        func = out.function("main")
        for blocks in func.recovery_blocks.values():
            for rb in blocks:
                for instr in rb.instrs:
                    assert isinstance(instr, (BinOp, Move, UnOp))

    def test_pruning_preserves_semantics(self, branchy_kernel):
        rv0, d0 = run_main(branchy_kernel, [7])
        out = compile_with(branchy_kernel, OptConfig.pruning(64)).module
        rv1, d1 = run_main(out, [7])
        assert (rv0, d0) == (rv1, d1)

    def test_pruning_never_increases_checkpoints(self):
        from repro.isa import Machine, CountingObserver

        module = build_branchy_kernel()
        base = compile_with(module, OptConfig.unrolling(64)).module
        pruned = compile_with(module, OptConfig.pruning(64)).module
        obs_b, obs_p = CountingObserver(), CountingObserver()
        Machine(base).run_function("main", [7], observer=obs_b)
        Machine(pruned).run_function("main", [7], observer=obs_p)
        assert obs_p.ckpts <= obs_b.ckpts


class TestLICM:
    def _motion_module(self):
        """Value defined per-iteration but consumed only after the loop:
        the Figure 4 pattern."""
        b = IRBuilder("licm")
        arr = b.module.alloc("arr", 64, init=list(range(64)))
        out = b.module.alloc("out", 64)
        with b.function("main", params=["n"]) as f:
            last = f.li(0)
            with f.for_range(f.param(0)) as i:
                addr = f.add(arr, f.shl(f.and_(i, 63), 3))
                f.move(last, f.load(addr))  # redefined every iteration
                f.store(i, f.add(out, f.shl(f.and_(i, 63), 3)))
            # `last` only used after the loop.
            f.store(last, out, offset=63 * 8)
            f.ret(last)
        verify_module(b.module)
        return b.module

    def test_licm_reduces_dynamic_checkpoints(self):
        from repro.isa import Machine, CountingObserver

        module = self._motion_module()
        no_licm = compile_with(module, OptConfig.pruning(256)).module
        licm = compile_with(module, OptConfig.licm(256)).module
        obs_n, obs_l = CountingObserver(), CountingObserver()
        Machine(no_licm).run_function("main", [50], observer=obs_n)
        Machine(licm).run_function("main", [50], observer=obs_l)
        assert obs_l.ckpts < obs_n.ckpts

    def test_licm_preserves_semantics(self):
        module = self._motion_module()
        for n in [0, 1, 13, 50]:
            rv0, d0 = run_main(module, [n])
            out = compile_with(module, OptConfig.licm(256)).module
            rv1, d1 = run_main(out, [n])
            assert (rv0, d0) == (rv1, d1), f"n={n}"

    def test_dedupe_in_block(self):
        from repro.compiler.licm import _dedupe_in_block
        from repro.ir.function import Function
        from repro.ir.instructions import Move, Ret
        from repro.ir.values import Imm, Reg

        func = Function("f", num_regs=2)
        blk = func.new_block("entry")
        blk.append(Move(Reg(0), Imm(1)))
        blk.append(CheckpointStore(Reg(0)))
        blk.append(CheckpointStore(Reg(0)))  # duplicate, no redef between
        blk.append(Ret())
        removed = _dedupe_in_block(func)
        assert removed == 1
        ckpts = [i for i in blk.instrs if isinstance(i, CheckpointStore)]
        assert len(ckpts) == 1

    def test_dedupe_keeps_ckpts_across_redefs(self):
        from repro.compiler.licm import _dedupe_in_block
        from repro.ir.function import Function
        from repro.ir.instructions import Move, Ret
        from repro.ir.values import Imm, Reg

        func = Function("f", num_regs=2)
        blk = func.new_block("entry")
        blk.append(Move(Reg(0), Imm(1)))
        blk.append(CheckpointStore(Reg(0)))
        blk.append(Move(Reg(0), Imm(2)))  # redefinition
        blk.append(CheckpointStore(Reg(0)))
        blk.append(Ret())
        removed = _dedupe_in_block(func)
        assert removed == 0
