"""Tests for the compiler pipeline facade and the Figure 9 ladder,
plus randomized semantics-preservation property tests."""

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.stats import RegionStatsObserver, static_region_stats
from repro.isa import CountingObserver, Machine
from tests.compiler.conftest import build_loop_kernel, random_program, run_main


class TestOptConfig:
    def test_volatile_is_uninstrumented(self):
        cfg = OptConfig.volatile()
        assert not cfg.instrumented

    def test_ladder_order_and_names(self):
        ladder = OptConfig.ladder()
        assert list(ladder.keys()) == [
            "region",
            "+ckpt",
            "+unrolling",
            "+pruning",
            "+licm",
        ]

    def test_ladder_is_accumulative(self):
        ladder = OptConfig.ladder()
        flags = [
            (c.checkpoints, c.unroll, c.prune, c.licm_opt)
            for c in ladder.values()
        ]
        for earlier, later in zip(flags, flags[1:]):
            # Later configs enable a superset of passes.
            assert all(not e or l for e, l in zip(earlier, later))

    def test_with_threshold(self):
        cfg = OptConfig.licm().with_threshold(512)
        assert cfg.threshold == 512
        assert cfg.licm_opt

    def test_full_alias(self):
        assert OptConfig.full() == OptConfig.licm()


class TestPipeline:
    def test_volatile_config_returns_clone_without_boundaries(self):
        from repro.ir.instructions import RegionBoundary

        module, _ = build_loop_kernel()
        out = CapriCompiler(OptConfig.volatile()).compile(module).module
        assert out is not module
        for func in out.functions.values():
            assert not any(
                isinstance(i, RegionBoundary) for i in func.instructions()
            )

    def test_input_module_never_mutated(self):
        module, _ = build_loop_kernel()
        before = sum(f.num_instrs for f in module.functions.values())
        CapriCompiler(OptConfig.licm(32)).compile(module)
        after = sum(f.num_instrs for f in module.functions.values())
        assert before == after

    def test_compiled_module_verifies(self):
        from repro.ir import verify_module

        module, _ = build_loop_kernel()
        for cfg in OptConfig.ladder(32).values():
            out = CapriCompiler(cfg).compile(module).module
            verify_module(out)

    def test_function_stats_collected(self):
        module, _ = build_loop_kernel()
        res = CapriCompiler(OptConfig.licm(64)).compile(module)
        assert "kernel" in res.function_stats
        assert res.function_stats["kernel"]["regions"] >= 1

    def test_ladder_monotone_checkpoint_reduction(self):
        """Dynamic checkpoint counts shrink (weakly) along the opt ladder
        after +ckpt — the paper's Figure 9 direction."""
        module, _ = build_loop_kernel(n=60)
        counts = {}
        for name, cfg in OptConfig.ladder(256).items():
            out = CapriCompiler(cfg).compile(module).module
            obs = CountingObserver()
            Machine(out).run_function("main", observer=obs)
            counts[name] = obs.ckpts
        assert counts["+unrolling"] <= counts["+ckpt"]
        assert counts["+pruning"] <= counts["+unrolling"]
        assert counts["+licm"] <= counts["+pruning"]


class TestRegionStats:
    def test_dynamic_stats_basic(self):
        module, _ = build_loop_kernel(n=40)
        out = CapriCompiler(OptConfig.licm(256)).compile(module).module
        obs = RegionStatsObserver()
        Machine(out).run_function("main", observer=obs)
        stats = obs.stats
        assert stats.regions_executed > 0
        assert stats.avg_instructions > 0
        assert stats.avg_stores >= 0

    def test_unrolling_grows_average_region_length(self):
        module, _ = build_loop_kernel(n=60)
        lengths = {}
        for name in ["+ckpt", "+unrolling"]:
            cfg = OptConfig.ladder(256)[name]
            out = CapriCompiler(cfg).compile(module).module
            obs = RegionStatsObserver()
            Machine(out).run_function("main", observer=obs)
            lengths[name] = obs.stats.avg_instructions
        assert lengths["+unrolling"] > lengths["+ckpt"]

    def test_static_stats(self):
        module, _ = build_loop_kernel()
        out = CapriCompiler(OptConfig.ckpt(64)).compile(module).module
        s = static_region_stats(out.function("kernel"))
        assert s.num_regions == s.num_boundaries
        assert s.num_checkpoints > 0
        assert s.avg_static_instrs > 0

    def test_stores_per_region_below_threshold(self):
        module, _ = build_loop_kernel(n=60)
        threshold = 32
        out = CapriCompiler(OptConfig.licm(threshold)).compile(module).module
        obs = RegionStatsObserver()
        Machine(out).run_function("main", observer=obs)
        # Average is necessarily <= max <= threshold.
        assert obs.stats.avg_stores <= threshold


class TestSemanticsPreservationRandom:
    """Property: every config computes exactly the baseline's results."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_all_configs(self, seed):
        module, args = random_program(seed)
        rv0, data0 = run_main(module, args)
        for name, cfg in OptConfig.ladder(32).items():
            out = CapriCompiler(cfg).compile(module).module
            rv1, data1 = run_main(out, args)
            assert rv1 == rv0, f"seed={seed} config={name}"
            assert data1 == data0, f"seed={seed} config={name}"

    @given(seed=st.integers(min_value=100, max_value=10_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_programs_full_capri(self, seed):
        module, args = random_program(seed)
        rv0, data0 = run_main(module, args)
        out = CapriCompiler(OptConfig.licm(16)).compile(module).module
        rv1, data1 = run_main(out, args)
        assert (rv1, data1) == (rv0, data0)

    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        threshold=st.sampled_from([8, 16, 64, 256, 1024]),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_threshold_never_affects_results(self, seed, threshold):
        module, args = random_program(seed)
        rv0, data0 = run_main(module, args)
        out = CapriCompiler(OptConfig.licm(threshold)).compile(module).module
        rv1, data1 = run_main(out, args)
        assert (rv1, data1) == (rv0, data0)
