"""Edge cases of region formation: irreducible CFGs, unroll corner cases,
multi-exit loops, break statements."""

import pytest

from repro.compiler import CapriCompiler, OptConfig, form_regions, speculative_unroll
from repro.compiler.clone import clone_module
from repro.compiler.regions import RegionFormationError, _check_acyclic_regions
from repro.ir import CFG, IRBuilder, verify_module
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump, Move, Ret
from repro.ir.values import Imm, Reg

from tests.compiler.conftest import run_main


def irreducible_function() -> Function:
    """Two-entry cycle a <-> b — no natural-loop header covers it."""
    f = Function("irr", num_regs=2)
    e = f.new_block("entry")
    e.append(Move(Reg(0), Imm(1)))
    e.append(Branch(Reg(0), "a", "b"))
    a = f.new_block("a")
    a.append(Branch(Reg(1), "b", "out"))
    bb = f.new_block("b")
    bb.append(Branch(Reg(1), "a", "out"))
    f.new_block("out").append(Ret())
    return f


class TestIrreducibleCFG:
    def test_acyclic_check_detects_headerless_cycle(self):
        func = irreducible_function()
        cfg = CFG(func)
        # Natural-loop detection finds no header covering the a<->b cycle
        # when neither dominates the other, so with boundaries only at the
        # entry the region subgraph is cyclic.
        with pytest.raises(RegionFormationError, match="irreducible"):
            _check_acyclic_regions(cfg, {"entry"})

    def test_acyclic_check_passes_with_cycle_broken(self):
        func = irreducible_function()
        cfg = CFG(func)
        _check_acyclic_regions(cfg, {"entry", "a"})  # boundary breaks it

    def test_builder_programs_are_always_reducible(self):
        # The structured builder cannot express irreducible flow; region
        # formation therefore never raises for builder/workload programs.
        from repro.workloads import all_workloads

        for workload in all_workloads():
            module, _ = workload.build(scale=0.05)
            for func in clone_module(module).functions.values():
                form_regions(func, threshold=64)


class TestUnrollEdgeCases:
    def test_loop_with_break_unrolls_correctly(self):
        b = IRBuilder("m")
        out = b.module.alloc("out", 2)
        with b.function("main", params=["n", "limit"]) as f:
            acc = f.li(0)
            with f.while_loop(lambda: f.li(1)) as exit_label:
                f.add(acc, 1, dst=acc)
                f.store(acc, out)
                with f.if_then(f.cmp("sge", acc, f.param(1))):
                    f.jump(exit_label)
                with f.if_then(f.cmp("sge", acc, f.param(0))):
                    f.jump(exit_label)
            f.ret(acc)
        verify_module(b.module)
        for args in ([10, 5], [3, 100], [1, 1]):
            rv0, d0 = run_main(b.module, args)
            out_mod = CapriCompiler(OptConfig.licm(64)).compile(b.module).module
            rv1, d1 = run_main(out_mod, args)
            assert (rv0, d0) == (rv1, d1), args

    def test_zero_trip_loop_after_unroll(self):
        b = IRBuilder("m")
        arr = b.module.alloc("arr", 8)
        with b.function("main", params=["n"]) as f:
            with f.for_range(f.param(0)) as i:
                f.store(i, f.add(arr, f.shl(f.and_(i, 7), 3)))
            f.ret()
        verify_module(b.module)
        rv0, d0 = run_main(b.module, [0])
        out = CapriCompiler(OptConfig.licm(256)).compile(b.module).module
        rv1, d1 = run_main(out, [0])
        assert (rv0, d0) == (rv1, d1)

    def test_unroll_factor_one_is_noop(self):
        b = IRBuilder("m")
        arr = b.module.alloc("arr", 8)
        with b.function("main", params=["n"]) as f:
            with f.for_range(f.param(0)) as i:
                for k in range(8):  # heavy body: budget forbids k>=2
                    f.store(i, f.add(arr, f.shl(f.and_(i, 7), 3)), offset=0)
            f.ret()
        verify_module(b.module)
        cloned = clone_module(b.module)
        func = cloned.function("main")
        before = func.num_instrs
        unrolled = speculative_unroll(func, threshold=8, max_unroll=32)
        assert unrolled == 0
        assert func.num_instrs == before

    def test_multi_block_loop_body_unrolls(self):
        b = IRBuilder("m")
        arr = b.module.alloc("arr", 16)
        with b.function("main", params=["n"]) as f:
            acc = f.li(0)
            with f.for_range(f.param(0)) as i:
                with f.if_else(f.cmp("seq", f.and_(i, 1), 0)) as h:
                    f.store(i, f.add(arr, f.shl(f.and_(i, 15), 3)))
                    h.otherwise()
                    f.add(acc, i, dst=acc)
            f.ret(acc)
        verify_module(b.module)
        for n in [0, 1, 7, 20]:
            rv0, d0 = run_main(b.module, [n])
            out = CapriCompiler(OptConfig.licm(128)).compile(b.module).module
            rv1, d1 = run_main(out, [n])
            assert (rv0, d0) == (rv1, d1), n

    def test_unrolled_region_budget_still_holds_dynamically(self):
        from repro.isa import Machine, Observer

        b = IRBuilder("m")
        arr = b.module.alloc("arr", 64)
        with b.function("main", params=["n"]) as f:
            with f.for_range(f.param(0)) as i:
                for k in range(3):
                    f.store(i, f.add(arr, f.shl(f.and_(i, 63), 3)), offset=k % 2 * 8)
            f.ret()
        verify_module(b.module)
        threshold = 16
        out = CapriCompiler(OptConfig.licm(threshold)).compile(b.module).module

        class MaxRun(Observer):
            run = 0
            max_run = 0

            def on_store(self, core, addr, value, old):
                self.run += 1
                self.max_run = max(self.max_run, self.run)

            def on_ckpt(self, core, reg, value, addr):
                self.on_store(core, addr, value, 0)

            def on_boundary(self, core, region_id, continuation):
                self.run = 0

        obs = MaxRun()
        Machine(out).run_function("main", [40], observer=obs)
        assert obs.max_run <= threshold
