"""Tests for region formation (Section 4.1)."""

import pytest

from repro.compiler import CapriCompiler, OptConfig, form_regions
from repro.compiler.clone import clone_module
from repro.compiler.regions import (
    MIN_THRESHOLD,
    RegionFormationError,
    region_of_block,
    split_blocks,
)
from repro.ir import CFG, IRBuilder, natural_loops, verify_module
from repro.ir.instructions import (
    AtomicRMW,
    Call,
    Fence,
    RegionBoundary,
    Ret,
    Store,
)
from tests.compiler.conftest import build_loop_kernel, run_main


def instrument(module, threshold=64, ckpt=False):
    cfg = OptConfig.ckpt(threshold) if ckpt else OptConfig.region(threshold)
    return CapriCompiler(cfg).compile(module).module


def boundaries_in(func):
    return [
        (label, i)
        for label, block in func.blocks.items()
        for i, instr in enumerate(block.instrs)
        if isinstance(instr, RegionBoundary)
    ]


class TestMandatoryBoundaries:
    def test_function_entry_has_boundary(self):
        module, _ = build_loop_kernel()
        out = instrument(module)
        func = out.function("kernel")
        assert isinstance(func.entry.instrs[0], RegionBoundary)

    def test_loop_header_has_boundary(self):
        module, _ = build_loop_kernel()
        out = instrument(module)
        func = out.function("kernel")
        cfg = CFG(func)
        for loop in natural_loops(cfg):
            assert isinstance(func.blocks[loop.header].instrs[0], RegionBoundary)

    def test_call_preceded_by_boundary(self):
        module, _ = build_loop_kernel()
        out = instrument(module)
        func = out.function("main")
        for label, block in func.blocks.items():
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, Call):
                    # Call must be right after its block-leading boundary.
                    assert isinstance(block.instrs[0], RegionBoundary)
                    assert i == 1

    def test_ret_preceded_by_boundary(self):
        module, _ = build_loop_kernel()
        out = instrument(module)
        func = out.function("kernel")
        for label, block in func.blocks.items():
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, Ret):
                    assert isinstance(block.instrs[0], RegionBoundary)

    def test_fence_and_atomic_start_regions(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 1)
        with b.function("main") as f:
            f.store(1, addr)
            f.fence()
            f.store(2, addr)
            f.atomic("add", addr, 1)
            f.store(3, addr)
            f.ret()
        verify_module(b.module)
        out = instrument(b.module)
        func = out.function("main")
        for label, block in func.blocks.items():
            for i, instr in enumerate(block.instrs):
                if isinstance(instr, (Fence, AtomicRMW)):
                    assert isinstance(block.instrs[0], RegionBoundary)
                    assert i == 1

    def test_region_ids_unique(self):
        module, _ = build_loop_kernel()
        out = instrument(module)
        for func in out.functions.values():
            ids = [
                instr.region_id
                for _, block in func.blocks.items()
                for instr in block.instrs
                if isinstance(instr, RegionBoundary)
            ]
            assert len(ids) == len(set(ids))


class TestThresholdContract:
    """The back-end proxy sizing contract: no region exceeds the threshold."""

    @pytest.mark.parametrize("threshold", [8, 32, 64, 256])
    def test_no_region_exceeds_threshold_statically(self, threshold):
        module, _ = build_loop_kernel(n=50)
        out = instrument(module, threshold=threshold, ckpt=True)
        for func in out.functions.values():
            for region in func.meta["regions"]:
                assert region.max_store_weight <= threshold

    def test_dynamic_store_runs_respect_threshold(self):
        """Count dynamic stores between consecutive boundary events."""
        from repro.isa import Machine, Observer

        threshold = 16
        module, _ = build_loop_kernel(n=40)
        out = instrument(module, threshold=threshold, ckpt=True)

        class MaxRun(Observer):
            def __init__(self):
                self.run = 0
                self.max_run = 0

            def on_store(self, core, addr, value, old):
                self.run += 1
                self.max_run = max(self.max_run, self.run)

            def on_ckpt(self, core, reg, value, addr):
                self.run += 1
                self.max_run = max(self.max_run, self.run)

            def on_atomic(self, core, addr, value, old):
                self.run += 1
                self.max_run = max(self.max_run, self.run)

            def on_boundary(self, core, region_id, continuation):
                self.run = 0

        obs = MaxRun()
        m = Machine(out)
        m.run_function("main", observer=obs)
        assert obs.max_run <= threshold

    def test_too_small_threshold_rejected(self):
        module, _ = build_loop_kernel()
        with pytest.raises(RegionFormationError):
            instrument(module, threshold=MIN_THRESHOLD - 1)

    def test_oversized_straightline_block_is_split(self):
        b = IRBuilder("m")
        addr = b.module.alloc("x", 200)
        with b.function("main") as f:
            for i in range(150):  # 150 stores in one basic block
                f.store(i, addr, offset=i * 8)
            f.ret()
        verify_module(b.module)
        out = instrument(b.module, threshold=32, ckpt=True)
        func = out.function("main")
        for region in func.meta["regions"]:
            assert region.max_store_weight <= 32
        # Semantics preserved.
        rv, data = run_main(out)
        assert data[addr + 149 * 8] == 149

    def test_larger_threshold_fewer_regions(self):
        module, _ = build_loop_kernel(n=50)
        small = instrument(module, threshold=8, ckpt=True)
        large = instrument(module, threshold=256, ckpt=True)
        n_small = sum(len(f.meta["regions"]) for f in small.functions.values())
        n_large = sum(len(f.meta["regions"]) for f in large.functions.values())
        assert n_large <= n_small


class TestSplitBlocks:
    def test_split_preserves_semantics(self):
        module, arr = build_loop_kernel(n=20)
        rv0, data0 = run_main(module)
        cloned = clone_module(module)
        for func in cloned.functions.values():
            split_blocks(func)
        verify_module(cloned)
        rv1, data1 = run_main(cloned)
        assert rv0 == rv1
        assert data0 == data1

    def test_split_marks_entry_mandatory(self):
        module, _ = build_loop_kernel()
        cloned = clone_module(module)
        func = cloned.function("kernel")
        mandatory = split_blocks(func)
        assert func.entry.label in mandatory


class TestRegionOfBlock:
    def test_every_reachable_block_mapped(self):
        module, _ = build_loop_kernel()
        out = instrument(module)
        func = out.function("kernel")
        mapping = region_of_block(func)
        cfg = CFG(func)
        for label in cfg.rpo:
            assert label in mapping

    def test_boundary_blocks_map_to_own_region(self):
        module, _ = build_loop_kernel()
        out = instrument(module)
        func = out.function("kernel")
        mapping = region_of_block(func)
        for region in func.meta["regions"]:
            assert mapping[region.entry_block] == region.region_id


class TestSemanticsPreservation:
    def test_loop_kernel_result_unchanged(self, loop_kernel):
        module, arr = loop_kernel
        rv0, data0 = run_main(module)
        out = instrument(module, threshold=32, ckpt=True)
        rv1, data1 = run_main(out)
        assert rv0 == rv1
        assert data0 == data1

    @pytest.mark.parametrize("threshold", [8, 16, 64, 1024])
    def test_thresholds_do_not_change_results(self, threshold):
        module, _ = build_loop_kernel(n=30)
        rv0, data0 = run_main(module)
        out = instrument(module, threshold=threshold, ckpt=True)
        rv1, data1 = run_main(out)
        assert (rv0, data0) == (rv1, data1)
