"""Tests for region-length distributions (the Section 4.3 motivation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.stats import RegionDynStats, RegionStatsObserver, _RESERVOIR
from repro.isa import Machine

from tests.compiler.conftest import build_loop_kernel


class TestRegionDynStats:
    def test_record_aggregates(self):
        s = RegionDynStats()
        s.record(10, 2)
        s.record(20, 4)
        assert s.regions_executed == 2
        assert s.avg_instructions == 15
        assert s.avg_stores == 3

    def test_percentiles_on_known_data(self):
        s = RegionDynStats()
        for v in [10, 20, 30, 40, 50]:
            s.record(v, v // 10)
        assert s.percentile_instructions(0.0) == 10
        assert s.percentile_instructions(1.0) == 50
        assert s.percentile_instructions(0.5) == 30
        assert s.percentile_stores(0.5) == 3

    def test_percentile_interpolates(self):
        s = RegionDynStats()
        s.record(0, 0)
        s.record(100, 0)
        assert s.percentile_instructions(0.25) == pytest.approx(25.0)

    def test_bad_quantile_rejected(self):
        s = RegionDynStats()
        s.record(1, 0)
        with pytest.raises(ValueError):
            s.percentile_instructions(1.5)

    def test_empty_stats(self):
        s = RegionDynStats()
        assert s.avg_instructions == 0.0
        assert s.percentile_instructions(0.5) == 0.0

    def test_reservoir_bounded(self):
        s = RegionDynStats()
        for i in range(_RESERVOIR * 3):
            s.record(i, 0)
        assert len(s.samples) == _RESERVOIR
        assert s.regions_executed == _RESERVOIR * 3

    def test_histogram_buckets(self):
        s = RegionDynStats()
        for v in [1, 5, 15, 50, 500]:
            s.record(v, 0)
        hist = s.histogram_instructions([10, 100])
        assert hist == {"0-10": 2, "11-100": 2, ">100": 1}

    @given(
        values=st.lists(st.integers(0, 1000), min_size=1, max_size=200),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_percentile_bounded_by_extremes(self, values, q):
        s = RegionDynStats()
        for v in values:
            s.record(v, 0)
        p = s.percentile_instructions(q)
        assert min(values) <= p <= max(values)


class TestDistributionMatchesPaperStory:
    def test_region_length_tail_grows_with_unrolling(self):
        """Section 4.3: 'many regions have fewer stores than the threshold
        because of short loops.'  The distribution shows it: without
        unrolling *every* region is short (p90 == a single loop body);
        with unrolling the upper tail grows by an order of magnitude —
        while the count-median actually *drops*, because the loop
        collapses into a few huge regions and the remaining samples are
        the tiny call-site stubs.  Means alone (Figure 10) hide this."""
        module, _ = build_loop_kernel(n=60)

        def dist(config):
            out = CapriCompiler(config).compile(module).module
            obs = RegionStatsObserver()
            Machine(out).run_function("main", observer=obs)
            return obs.stats

        before = dist(OptConfig.ckpt(256))
        after = dist(OptConfig.unrolling(256))
        assert after.percentile_instructions(0.9) > 5 * before.percentile_instructions(0.9)
        assert after.avg_instructions > 3 * before.avg_instructions
        # The short-loop ceiling before unrolling: p90 == p50 == body size.
        assert before.percentile_instructions(0.9) == pytest.approx(
            before.percentile_instructions(0.5)
        )

    def test_p90_below_threshold_bound(self):
        module, _ = build_loop_kernel(n=60)
        out = CapriCompiler(OptConfig.licm(32)).compile(module).module
        obs = RegionStatsObserver()
        Machine(out).run_function("main", observer=obs)
        assert obs.stats.percentile_stores(1.0) <= 32
