"""Tests for the static Capri-invariant verifier.

Positive: every compiled configuration of every workload passes.
Negative: hand-sabotaged instrumentation is caught — deleted checkpoints,
oversized regions, impure recovery blocks.
"""

import pytest

from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.verify_capri import (
    CapriInvariantError,
    check_checkpoint_coverage,
    check_recovery_blocks,
    check_region_budget,
    verify_capri_function,
    verify_capri_module,
)
from repro.ir import IRBuilder, verify_module
from repro.ir.function import RecoveryBlock
from repro.ir.instructions import CheckpointStore, Load, Move, Store
from repro.ir.values import Imm, Reg

from tests.compiler.conftest import build_loop_kernel, random_program


def compile_kernel(threshold=32, config=None):
    module, _ = build_loop_kernel(n=30)
    cfg = config or OptConfig.licm(threshold)
    return CapriCompiler(cfg).compile(module).module


class TestPositive:
    @pytest.mark.parametrize("threshold", [16, 64, 256])
    def test_loop_kernel_all_thresholds(self, threshold):
        out = compile_kernel(threshold)
        verify_capri_module(out, threshold)

    @pytest.mark.parametrize(
        "config_name", ["+ckpt", "+unrolling", "+pruning", "+licm"]
    )
    def test_every_ladder_config(self, config_name):
        cfg = OptConfig.ladder(32)[config_name]
        out = compile_kernel(config=cfg)
        verify_capri_module(out, 32)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs(self, seed):
        module, _ = random_program(seed)
        out = CapriCompiler(OptConfig.licm(16)).compile(module).module
        verify_capri_module(out, 16)

    def test_inlined_config(self):
        from repro.workloads import get_workload

        module, _ = get_workload("oskernel").build(0.2)
        out = CapriCompiler(OptConfig.inlined(64)).compile(module).module
        verify_capri_module(out, 64)


def find_checkpoint(func):
    for label, block in func.blocks.items():
        for i, instr in enumerate(block.instrs):
            if isinstance(instr, CheckpointStore):
                return label, i
    return None


class TestNegative:
    def test_deleted_checkpoint_detected(self):
        out = compile_kernel(32, OptConfig.ckpt(32))
        func = out.function("kernel")
        site = find_checkpoint(func)
        assert site, "kernel has no checkpoints to sabotage"
        label, i = site
        del func.blocks[label].instrs[i]
        with pytest.raises(CapriInvariantError, match="no checkpoint"):
            check_checkpoint_coverage(func)

    def test_oversized_region_detected(self):
        out = compile_kernel(32)
        func = out.function("kernel")
        # Inject a burst of stores right after some boundary.
        from repro.ir.instructions import RegionBoundary

        for label, block in func.blocks.items():
            if block.instrs and isinstance(block.instrs[0], RegionBoundary):
                for k in range(40):
                    block.instrs.insert(
                        1, Store(Imm(k), Imm(0x9000), offset=k * 8)
                    )
                break
        with pytest.raises(CapriInvariantError, match="stores"):
            check_region_budget(func, 32)

    def test_impure_recovery_block_detected(self):
        out = compile_kernel(32)
        func = out.function("kernel")
        regions = func.meta["regions"]
        func.recovery_blocks[regions[0].region_id] = [
            RecoveryBlock(1, [Load(Reg(1), Imm(0x1000), 0)])
        ]
        with pytest.raises(CapriInvariantError, match="impure"):
            check_recovery_blocks(func)

    def test_recovery_block_missing_target_detected(self):
        out = compile_kernel(32)
        func = out.function("kernel")
        regions = func.meta["regions"]
        func.recovery_blocks[regions[0].region_id] = [
            RecoveryBlock(1, [Move(Reg(2), Imm(5))])  # defines r2, not r1
        ]
        with pytest.raises(CapriInvariantError, match="never"):
            check_recovery_blocks(func)

    def test_uncompiled_function_rejected(self):
        b = IRBuilder("m")
        with b.function("f") as f:
            f.ret()
        with pytest.raises(CapriInvariantError, match="region metadata"):
            check_checkpoint_coverage(b.module.function("f"))

    def test_missing_boundary_cycle_detected(self):
        """Strip a loop header's boundary: the budget check must see the
        unbounded cycle."""
        from repro.ir.instructions import RegionBoundary
        from repro.ir import CFG, natural_loops

        out = compile_kernel(32)
        func = out.function("kernel")
        loops = natural_loops(CFG(func))
        header = loops[0].header
        block = func.blocks[header]
        assert isinstance(block.instrs[0], RegionBoundary)
        del block.instrs[0]
        with pytest.raises(CapriInvariantError, match="cycle"):
            check_region_budget(func, 32)


class TestPipelineIntegration:
    def test_compiler_validate_flag(self):
        module, _ = build_loop_kernel(n=20)
        result = CapriCompiler(OptConfig.licm(32)).compile(module, validate=True)
        assert result.module is not None

    def test_validate_skipped_for_volatile(self):
        module, _ = build_loop_kernel(n=20)
        CapriCompiler(OptConfig.volatile()).compile(module, validate=True)
