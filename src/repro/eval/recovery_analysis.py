"""Recovery-latency analysis (extension over the paper's Section 5.4).

The paper describes the recovery protocol but does not quantify its cost.
A useful property falls out of the design: recovery work is bounded by
the *proxy buffer capacity*, not by how long the program ran — everything
older is already durable in NVM, so the recovery threads only scan the
surviving front-/back-end entries (at most FE + BE ≈ threshold + 33
entries per core) plus one register reload and the region's recovery
blocks.

:func:`analyze_recovery` sweeps crash points over a workload and reports,
per crash: entries scanned, undo/redo words written, checkpoint slots
reloaded, recovery-block instructions executed, and a wall-clock estimate
under the Table 1 latencies.  :func:`recovery_latency_model` turns one
:class:`~repro.arch.recovery.RecoveredState` into nanoseconds.

Command line::

    python -m repro.eval.recovery_analysis [--workload N] [--threshold T]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.arch.crash import CrashPlan, CrashState, run_until_crash
from repro.arch.params import SimParams
from repro.arch.recovery import RecoveredState, recover
from repro.compiler import CapriCompiler, OptConfig
from repro.workloads import get_workload


@dataclass
class RecoveryCost:
    """Work and estimated time for one recovery."""

    crash_at: int
    entries_scanned: int
    redo_words: int
    undo_words: int
    ckpt_slots_reloaded: int
    recovery_block_instrs: int
    estimated_ns: float


@dataclass
class RecoverySweep:
    """Aggregate over a crash-point sweep."""

    workload: str
    threshold: int
    costs: List[RecoveryCost] = field(default_factory=list)

    @property
    def max_entries(self) -> int:
        return max((c.entries_scanned for c in self.costs), default=0)

    @property
    def max_ns(self) -> float:
        return max((c.estimated_ns for c in self.costs), default=0.0)

    @property
    def mean_ns(self) -> float:
        if not self.costs:
            return 0.0
        return sum(c.estimated_ns for c in self.costs) / len(self.costs)


def recovery_latency_model(
    state: CrashState,
    recovered: RecoveredState,
    params: Optional[SimParams] = None,
) -> RecoveryCost:
    """Estimate one recovery's latency under the Table 1 device numbers.

    Model: scan every surviving entry (one SRAM read each, ~1 ns), issue
    one NVM write per applied undo/redo word and restored checkpoint slot
    (pipelined at the write port's sustained interval), one NVM read per
    architectural register reload, and one core cycle per recovery-block
    instruction.
    """
    p = params or SimParams.paper()
    entries = sum(len(core) for core in state.core_entries)
    nvm_writes = recovered.redo_words + recovered.undo_words
    ckpt_slots = 0
    rb_instrs = 0
    for resume in recovered.resumes:
        if resume is None:
            continue
        ckpt_slots += len(resume.registers)
    # Checkpoint values applied from boundary entries count as writes too.
    for core in state.core_entries:
        for entry in core:
            if entry.is_boundary:
                nvm_writes += len(entry.ckpts)
    from repro.ir.module import Module  # recovery blocks live on functions

    rb_instrs = recovered.recovery_blocks_run  # blocks, ≈ instrs (small)

    scan_ns = entries * 1.0
    write_ns = nvm_writes * (p.nvm_write_ns / p.nvm_write_parallelism)
    reload_ns = ckpt_slots * p.nvm_read_ns / 8  # slots share cache lines
    rb_ns = rb_instrs * (1.0 / p.clock_ghz)
    return RecoveryCost(
        crash_at=-1,
        entries_scanned=entries,
        redo_words=recovered.redo_words,
        undo_words=recovered.undo_words,
        ckpt_slots_reloaded=ckpt_slots,
        recovery_block_instrs=rb_instrs,
        estimated_ns=scan_ns + write_ns + reload_ns + rb_ns,
    )


def analyze_recovery(
    workload_name: str = "genome",
    threshold: int = 256,
    scale: float = 0.4,
    crash_points: Optional[Sequence[int]] = None,
    params: Optional[SimParams] = None,
) -> RecoverySweep:
    """Sweep crash points and collect recovery costs."""
    workload = get_workload(workload_name)
    module, spawns = workload.build(scale)
    capri = CapriCompiler(OptConfig.licm(threshold)).compile(module).module
    sweep = RecoverySweep(workload=workload_name, threshold=threshold)
    points = list(crash_points) if crash_points else list(range(50, 6000, 450))
    for at in points:
        state = run_until_crash(
            capri,
            spawns,
            CrashPlan(at),
            params=params or SimParams.scaled(),
            threshold=threshold,
        )
        if state is None:
            break
        recovered = recover(state, capri)
        cost = recovery_latency_model(state, recovered)
        cost.crash_at = at
        sweep.costs.append(cost)
    return sweep


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.eval.recovery_analysis")
    parser.add_argument("--workload", default="genome")
    parser.add_argument("--threshold", type=int, default=256)
    parser.add_argument("--scale", type=float, default=0.4)
    args = parser.parse_args(argv)
    sweep = analyze_recovery(args.workload, args.threshold, args.scale)
    print(
        f"Recovery-cost sweep: {sweep.workload}, threshold {sweep.threshold} "
        f"({len(sweep.costs)} crash points)\n"
    )
    print(f"{'crash@':>8s} {'entries':>8s} {'redo':>6s} {'undo':>6s} "
          f"{'slots':>6s} {'est_us':>8s}")
    for c in sweep.costs:
        print(f"{c.crash_at:8d} {c.entries_scanned:8d} {c.redo_words:6d} "
              f"{c.undo_words:6d} {c.ckpt_slots_reloaded:6d} "
              f"{c.estimated_ns / 1000:8.2f}")
    cap = sweep.threshold + 1 + 32  # BE + boundary slot + FE
    print(f"\nmax entries scanned: {sweep.max_entries} "
          f"(buffer capacity bound: {cap})")
    print(f"estimated recovery time: mean {sweep.mean_ns / 1000:.2f} us, "
          f"max {sweep.max_ns / 1000:.2f} us — independent of run length.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
