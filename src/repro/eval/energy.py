"""Residual-energy analysis: why Capri's buffers beat eADR (Section 1.2).

The paper's motivation: whole-system persistence by "flush everything on
power failure" (Narayanan & Hodson's WSP, Intel eADR) must hold enough
residual energy to drain the entire volatile hierarchy — which "turns out
to be an excessive amount" for deep HPC hierarchies and becomes absurd
with an off-chip DRAM cache in the persistent domain.  Capri instead
keeps only the small proxy buffers (and checkpoint staging) battery
backed.

This module quantifies that argument under the Table 1 configuration:
bytes that must drain to NVM at power-fail time, the drain time at NVM
write bandwidth, and an energy estimate.  Constants are order-of-
magnitude figures from the public literature (DDR/NVM write energy in
nJ/64B-line range); the *ratios* are the result.

Command line::

    python -m repro.eval.energy [--cores N] [--threshold T]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.arch.params import SimParams

#: Energy to write one 64-byte line to NVM (nJ) — order of magnitude for
#: PCM-class media (set/reset energy dominates).
NVM_WRITE_NJ_PER_LINE = 5.0

#: Energy to read one 64-byte line from SRAM/DRAM while draining (nJ).
READ_NJ_PER_LINE = 0.5

#: Bytes of one proxy entry (Figure 5): 8B address + undo + redo lines.
ENTRY_BYTES = 136


@dataclass
class DrainBudget:
    """What one scheme must drain at the instant power is cut."""

    scheme: str
    bytes_to_drain: int
    #: worst-case drain time at the NVM port (us).
    drain_time_us: float
    #: energy to read + write everything (uJ).
    energy_uj: float

    def row(self) -> Dict[str, float]:
        return {
            "KB": self.bytes_to_drain / 1024,
            "drain_us": self.drain_time_us,
            "energy_uJ": self.energy_uj,
        }


def _budget(scheme: str, nbytes: int, params: SimParams) -> DrainBudget:
    lines = max(1, nbytes // params.line_bytes)
    # Sustained line-write interval: one entry per nvm_write_interval is a
    # word in our simulator; a line is 8 of those.
    line_interval_ns = params.nvm_write_interval_cycles / params.clock_ghz * 8
    drain_us = lines * line_interval_ns / 1000
    energy = lines * (NVM_WRITE_NJ_PER_LINE + READ_NJ_PER_LINE) / 1000
    return DrainBudget(scheme, nbytes, drain_us, energy)


def drain_budgets(
    params: Optional[SimParams] = None,
    num_cores: int = 8,
    threshold: int = 256,
    include_dram_cache: bool = False,
) -> Dict[str, DrainBudget]:
    """Drain budgets for the three schemes the paper contrasts.

    * ``eADR`` — all on-chip caches persistent: every dirty byte of
      L1 x cores + L2 must flush (worst case: everything dirty).  With
      ``include_dram_cache`` the off-chip DRAM cache joins the persistent
      domain — the memory-mode scenario the paper calls impractical.
    * ``BBB`` — battery-backed buffer alongside each L1 (we size it like
      our front end) plus the same L2 problem solved by *not* covering
      L2: only the per-core buffer drains (cf. Alshboul et al.).
    * ``Capri`` — front-end + back-end proxy buffers + checkpoint staging
      per core; nothing else is in the persistent domain.
    """
    p = params or SimParams.paper()
    out: Dict[str, DrainBudget] = {}

    eadr_bytes = num_cores * p.l1_size_bytes + p.l2_size_bytes
    if include_dram_cache:
        eadr_bytes += p.dram_cache_size_bytes
    out["eADR"] = _budget("eADR", eadr_bytes, p)

    bbb_bytes = num_cores * p.frontend_entries * ENTRY_BYTES
    out["BBB"] = _budget("BBB", bbb_bytes, p)

    capri_bytes = num_cores * (
        p.frontend_entries * ENTRY_BYTES  # front-end proxy
        + p.backend_capacity(threshold) * ENTRY_BYTES  # back-end proxy
        + 512 * 8  # checkpoint staging (register-file storage)
    )
    out["Capri"] = _budget("Capri", capri_bytes, p)
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.eval.energy")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--threshold", type=int, default=256)
    parser.add_argument(
        "--memory-mode",
        action="store_true",
        help="put the off-chip DRAM cache in eADR's persistent domain",
    )
    args = parser.parse_args(argv)
    budgets = drain_budgets(
        num_cores=args.cores,
        threshold=args.threshold,
        include_dram_cache=args.memory_mode,
    )
    from repro.eval.report import format_table

    cells = {name: b.row() for name, b in budgets.items()}
    print(
        format_table(
            f"Residual-energy requirement at power failure "
            f"({args.cores} cores, threshold {args.threshold}"
            f"{', DRAM cache persistent' if args.memory_mode else ''})",
            list(budgets),
            ["KB", "drain_us", "energy_uJ"],
            cells,
            fmt="{:,.1f}",
            row_header="scheme",
        )
    )
    eadr = budgets["eADR"].bytes_to_drain
    capri = budgets["Capri"].bytes_to_drain
    print(f"\nCapri's persistent domain is {eadr / capri:,.0f}x smaller "
          f"than eADR's — the Section 1.2 argument, quantified.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
