"""Ablation studies over Capri's design choices.

The paper fixes several hardware parameters (front-end proxy of 32
entries, a 20 ns proxy path, back-end sized by the threshold, stale-read
prevention on) and motivates them qualitatively.  These sweeps quantify
each choice on our substrate — the "what if" companion to Figure 8:

* :func:`frontend_size_sweep` — Section 5.2.1's fixed 32-entry front end:
  how small can it go before phase-1 back-pressure stalls the pipeline?
* :func:`proxy_bandwidth_sweep` — the dedicated path's initiation
  interval: when does the FE->BE link become the bottleneck?
* :func:`nvm_bandwidth_sweep` — the shared write port behind phase 2.
* :func:`prevention_cost` — redo-valid invalidation (Section 5.3.2) is
  scanning work in hardware; in our model it should be performance-free,
  trading only NVM write *savings* (skipped redos).
* :func:`inlining_ablation` — the extension pass: what call-boundary
  removal buys on call-dense code.

Command line::

    python -m repro.eval.ablations {frontend,proxybw,nvmbw,prevention,inlining,all}
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.arch.params import SimParams
from repro.arch.system import run_workload
from repro.compiler import CapriCompiler, OptConfig
from repro.eval.report import format_table
from repro.workloads import get_workload

#: Store-dense benchmarks stress the proxy pipeline hardest.
DEFAULT_BENCHMARKS = ["519.lbm_r", "radix", "508.namd_r"]

#: Named probe: pure streaming writes to distinct words.  The benchmark
#: suite's recurring store addresses merge in the front-end proxy — an
#: elastic relief valve (Section 5.2.1) that masks raw pipeline limits —
#: so hardware-parameter sweeps use this merge-proof microkernel.
STREAM_PROBE = "stream-write"


def _stream_probe_module(trips: int = 4000):
    from repro.ir import IRBuilder, verify_module

    b = IRBuilder(STREAM_PROBE)
    words = 8192
    arr = b.module.alloc("arr", words)
    with b.function("main") as f:
        with f.for_range(trips) as i:
            addr = f.add(arr, f.shl(f.and_(i, words - 1), 3))
            f.store(i, addr)
        f.ret()
    verify_module(b.module)
    return b.module, [("main", [])]


def _build(name: str, scale: float):
    if name == STREAM_PROBE:
        return _stream_probe_module(trips=int(4000 * scale))
    return get_workload(name).build(scale)


def _run(name: str, params: SimParams, config: OptConfig, scale: float):
    module, spawns = _build(name, scale)
    compiled = CapriCompiler(config).compile(module).module
    metrics, _ = run_workload(
        compiled, spawns, params=params, threshold=config.threshold
    )
    base, _ = run_workload(module, spawns, params=params, persistence=False)
    return metrics, metrics.exec_cycles / base.exec_cycles


def frontend_size_sweep(
    sizes: Sequence[int] = (1, 2, 4, 8, 32),
    benchmarks: Sequence[str] = (STREAM_PROBE, *DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 256,
) -> Dict[str, Dict[str, float]]:
    """Normalised cycles vs front-end proxy entries (paper default: 32).

    Swept with a slowed proxy path (8 ns initiation) — at the default
    path bandwidth even a handful of entries absorbs store bursts, which
    is itself the finding: the paper's 32-entry front end is generous.
    """
    cells: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        cells[name] = {}
        for size in sizes:
            params = SimParams.scaled().with_(
                frontend_entries=size, proxy_xfer_ns=8.0
            )
            _, norm = _run(name, params, OptConfig.licm(threshold), scale)
            cells[name][str(size)] = norm
    return cells


def proxy_bandwidth_sweep(
    intervals_ns: Sequence[float] = (1.0, 8.0, 16.0, 32.0, 64.0),
    benchmarks: Sequence[str] = (STREAM_PROBE, *DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 256,
) -> Dict[str, Dict[str, float]]:
    """Normalised cycles vs proxy-path initiation interval per entry."""
    cells: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        cells[name] = {}
        for interval in intervals_ns:
            params = SimParams.scaled().with_(proxy_xfer_ns=interval)
            _, norm = _run(name, params, OptConfig.licm(threshold), scale)
            cells[name][f"{interval}ns"] = norm
    return cells


def nvm_bandwidth_sweep(
    parallelism: Sequence[int] = (16, 64, 256, 1024),
    benchmarks: Sequence[str] = (STREAM_PROBE, *DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 256,
) -> Dict[str, Dict[str, float]]:
    """Normalised cycles vs effective NVM write parallelism."""
    cells: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        cells[name] = {}
        for p in parallelism:
            params = SimParams.scaled().with_(nvm_write_parallelism=p)
            _, norm = _run(name, params, OptConfig.licm(threshold), scale)
            cells[name][f"x{p}"] = norm
    return cells


def prevention_cost(
    benchmarks: Sequence[str] = tuple(DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 64,
) -> Dict[str, Dict[str, float]]:
    """Stale-read prevention on/off: cycles, skipped redos, stale reads.

    Uses a shrunken hierarchy so regular-path writebacks actually race the
    proxy path.
    """
    tiny = SimParams.scaled().with_(
        l1_size_bytes=512,
        l2_size_bytes=1024,
        dram_cache_size_bytes=1024,
        nvm_write_parallelism=8,
    )
    cells: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        cells[name] = {}
        for prevention in (True, False):
            params = tiny.with_(stale_read_prevention=prevention)
            metrics, norm = _run(name, params, OptConfig.licm(threshold), scale)
            tag = "on" if prevention else "off"
            cells[name][f"cycles_{tag}"] = norm
            cells[name][f"skipped_{tag}"] = float(metrics.nvm_writes_skipped)
            cells[name][f"stale_{tag}"] = float(metrics.stale_reads)
    return cells


def inlining_ablation(
    benchmarks: Sequence[str] = ("oskernel", "531.deepsjeng_r", "genome"),
    scale: float = 0.5,
    threshold: int = 256,
) -> Dict[str, Dict[str, float]]:
    """Full Capri vs full Capri + small-function inlining (extension)."""
    cells: Dict[str, Dict[str, float]] = {}
    params = SimParams.scaled()
    for name in benchmarks:
        _, base = _run(name, params, OptConfig.licm(threshold), scale)
        _, inl = _run(name, params, OptConfig.inlined(threshold), scale)
        cells[name] = {"full": base, "+inlining": inl}
    return cells


def core_scaling(
    threads: Sequence[int] = (1, 2, 4, 8),
    benchmarks: Sequence[str] = ("ocean", "radix", "water-nsquared"),
    scale: float = 0.5,
    threshold: int = 256,
) -> Dict[str, Dict[str, float]]:
    """Capri overhead vs core count for the multi-threaded suite.

    The paper simulates 8 cores; each core gets its own proxy pipeline
    while the NVM write port is shared, so overhead should stay roughly
    flat with core count unless the write port saturates.
    """
    cells: Dict[str, Dict[str, float]] = {}
    params = SimParams.scaled()
    for name in benchmarks:
        workload = get_workload(name)
        cells[name] = {}
        for t in threads:
            module, spawns = workload.build(scale, threads=t)
            compiled = CapriCompiler(
                OptConfig.licm(threshold)
            ).compile(module).module
            metrics, _ = run_workload(
                compiled, spawns, params=params, threshold=threshold
            )
            base, _ = run_workload(
                module, spawns, params=params, persistence=False
            )
            cells[name][f"{t}c"] = metrics.exec_cycles / base.exec_cycles
    return cells


_ABLATIONS = {
    "frontend": (
        frontend_size_sweep,
        "Front-end proxy size sweep (normalized cycles; paper default 32)",
    ),
    "cores": (
        core_scaling,
        "Core-count scaling: Capri overhead vs threads (normalized cycles)",
    ),
    "proxybw": (
        proxy_bandwidth_sweep,
        "Proxy-path initiation interval sweep (normalized cycles)",
    ),
    "nvmbw": (
        nvm_bandwidth_sweep,
        "NVM write parallelism sweep (normalized cycles)",
    ),
    "prevention": (
        prevention_cost,
        "Stale-read prevention on/off (tiny hierarchy, throttled NVM port)",
    ),
    "inlining": (
        inlining_ablation,
        "Small-function inlining extension (normalized cycles)",
    ),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.eval.ablations")
    parser.add_argument("ablation", choices=[*_ABLATIONS, "all"])
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args(argv)
    names = list(_ABLATIONS) if args.ablation == "all" else [args.ablation]
    for name in names:
        fn, title = _ABLATIONS[name]
        cells = fn(scale=args.scale)
        rows = list(cells.keys())
        columns: List[str] = list(next(iter(cells.values())).keys())
        print(format_table(title, rows, columns, cells))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
