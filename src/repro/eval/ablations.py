"""Ablation studies over Capri's design choices.

The paper fixes several hardware parameters (front-end proxy of 32
entries, a 20 ns proxy path, back-end sized by the threshold, stale-read
prevention on) and motivates them qualitatively.  These sweeps quantify
each choice on our substrate — the "what if" companion to Figure 8:

* :func:`frontend_size_sweep` — Section 5.2.1's fixed 32-entry front end:
  how small can it go before phase-1 back-pressure stalls the pipeline?
* :func:`proxy_bandwidth_sweep` — the dedicated path's initiation
  interval: when does the FE->BE link become the bottleneck?
* :func:`nvm_bandwidth_sweep` — the shared write port behind phase 2.
* :func:`prevention_cost` — redo-valid invalidation (Section 5.3.2) is
  scanning work in hardware; in our model it should be performance-free,
  trading only NVM write *savings* (skipped redos).
* :func:`inlining_ablation` — the extension pass: what call-boundary
  removal buys on call-dense code.

Every sweep builds :class:`~repro.api.RunSpec` lists and routes them
through the :mod:`repro.sweep` engine, so ``workers=N`` parallelises the
grid and completed cells are served from the on-disk result cache.

Command line::

    python -m repro.eval.ablations {frontend,proxybw,nvmbw,prevention,inlining,all}
        [--workers N]
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.api import RunResult, RunSpec
from repro.arch.params import SimParams
from repro.compiler import OptConfig
from repro.eval.report import format_table
from repro.workloads.probes import STREAM_PROBE

#: Store-dense benchmarks stress the proxy pipeline hardest.
DEFAULT_BENCHMARKS = ["519.lbm_r", "radix", "508.namd_r"]


def _sweep(specs: Sequence[RunSpec], workers: int) -> List[RunResult]:
    """Run specs through the engine; raise on any failure."""
    from repro.sweep.engine import SweepError, run_specs

    report = run_specs(specs, workers=workers, cache="default")
    if not report.ok:
        raise SweepError(report)
    return report.results


def _cells_from(
    specs: Sequence[RunSpec], results: Sequence[RunResult]
) -> Dict[str, Dict[str, float]]:
    cells: Dict[str, Dict[str, float]] = {}
    for spec, result in zip(specs, results):
        cells.setdefault(spec.workload, {})[spec.label] = result.normalized_cycles
    return cells


def frontend_size_sweep(
    sizes: Sequence[int] = (1, 2, 4, 8, 32),
    benchmarks: Sequence[str] = (STREAM_PROBE, *DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 256,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Normalised cycles vs front-end proxy entries (paper default: 32).

    Swept with a slowed proxy path (8 ns initiation) — at the default
    path bandwidth even a handful of entries absorbs store bursts, which
    is itself the finding: the paper's 32-entry front end is generous.
    """
    specs = [
        RunSpec(
            workload=name,
            scale=scale,
            config=OptConfig.licm(threshold),
            params=SimParams.scaled().with_(
                frontend_entries=size, proxy_xfer_ns=8.0
            ),
            label=str(size),
        )
        for name in benchmarks
        for size in sizes
    ]
    return _cells_from(specs, _sweep(specs, workers))


def proxy_bandwidth_sweep(
    intervals_ns: Sequence[float] = (1.0, 8.0, 16.0, 32.0, 64.0),
    benchmarks: Sequence[str] = (STREAM_PROBE, *DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 256,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Normalised cycles vs proxy-path initiation interval per entry."""
    specs = [
        RunSpec(
            workload=name,
            scale=scale,
            config=OptConfig.licm(threshold),
            params=SimParams.scaled().with_(proxy_xfer_ns=interval),
            label=f"{interval}ns",
        )
        for name in benchmarks
        for interval in intervals_ns
    ]
    return _cells_from(specs, _sweep(specs, workers))


def nvm_bandwidth_sweep(
    parallelism: Sequence[int] = (16, 64, 256, 1024),
    benchmarks: Sequence[str] = (STREAM_PROBE, *DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 256,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Normalised cycles vs effective NVM write parallelism."""
    specs = [
        RunSpec(
            workload=name,
            scale=scale,
            config=OptConfig.licm(threshold),
            params=SimParams.scaled().with_(nvm_write_parallelism=p),
            label=f"x{p}",
        )
        for name in benchmarks
        for p in parallelism
    ]
    return _cells_from(specs, _sweep(specs, workers))


def prevention_cost(
    benchmarks: Sequence[str] = tuple(DEFAULT_BENCHMARKS),
    scale: float = 0.5,
    threshold: int = 64,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Stale-read prevention on/off: cycles, skipped redos, stale reads.

    Uses a shrunken hierarchy so regular-path writebacks actually race the
    proxy path.
    """
    tiny = SimParams.scaled().with_(
        l1_size_bytes=512,
        l2_size_bytes=1024,
        dram_cache_size_bytes=1024,
        nvm_write_parallelism=8,
    )
    specs = [
        RunSpec(
            workload=name,
            scale=scale,
            config=OptConfig.licm(threshold),
            params=tiny.with_(stale_read_prevention=prevention),
            label="on" if prevention else "off",
        )
        for name in benchmarks
        for prevention in (True, False)
    ]
    results = _sweep(specs, workers)
    cells: Dict[str, Dict[str, float]] = {}
    for spec, result in zip(specs, results):
        row = cells.setdefault(spec.workload, {})
        tag = spec.label
        row[f"cycles_{tag}"] = result.normalized_cycles
        row[f"skipped_{tag}"] = float(result.metrics.nvm_writes_skipped)
        row[f"stale_{tag}"] = float(result.metrics.stale_reads)
    return cells


def inlining_ablation(
    benchmarks: Sequence[str] = ("oskernel", "531.deepsjeng_r", "genome"),
    scale: float = 0.5,
    threshold: int = 256,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Full Capri vs full Capri + small-function inlining (extension)."""
    specs = [
        RunSpec(
            workload=name,
            scale=scale,
            config=config,
            label=label,
        )
        for name in benchmarks
        for label, config in (
            ("full", OptConfig.licm(threshold)),
            ("+inlining", OptConfig.inlined(threshold)),
        )
    ]
    return _cells_from(specs, _sweep(specs, workers))


def core_scaling(
    threads: Sequence[int] = (1, 2, 4, 8),
    benchmarks: Sequence[str] = ("ocean", "radix", "water-nsquared"),
    scale: float = 0.5,
    threshold: int = 256,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Capri overhead vs core count for the multi-threaded suite.

    The paper simulates 8 cores; each core gets its own proxy pipeline
    while the NVM write port is shared, so overhead should stay roughly
    flat with core count unless the write port saturates.
    """
    specs = [
        RunSpec(
            workload=name,
            scale=scale,
            config=OptConfig.licm(threshold),
            threads=t,
            label=f"{t}c",
        )
        for name in benchmarks
        for t in threads
    ]
    return _cells_from(specs, _sweep(specs, workers))


_ABLATIONS = {
    "frontend": (
        frontend_size_sweep,
        "Front-end proxy size sweep (normalized cycles; paper default 32)",
    ),
    "cores": (
        core_scaling,
        "Core-count scaling: Capri overhead vs threads (normalized cycles)",
    ),
    "proxybw": (
        proxy_bandwidth_sweep,
        "Proxy-path initiation interval sweep (normalized cycles)",
    ),
    "nvmbw": (
        nvm_bandwidth_sweep,
        "NVM write parallelism sweep (normalized cycles)",
    ),
    "prevention": (
        prevention_cost,
        "Stale-read prevention on/off (tiny hierarchy, throttled NVM port)",
    ),
    "inlining": (
        inlining_ablation,
        "Small-function inlining extension (normalized cycles)",
    ),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.eval.ablations")
    parser.add_argument("ablation", choices=[*_ABLATIONS, "all"])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--workers", type=int, default=0,
                        help="sweep-engine worker processes (0 = serial)")
    args = parser.parse_args(argv)
    names = list(_ABLATIONS) if args.ablation == "all" else [args.ablation]
    for name in names:
        fn, title = _ABLATIONS[name]
        cells = fn(scale=args.scale, workers=args.workers)
        rows = list(cells.keys())
        columns: List[str] = list(next(iter(cells.values())).keys())
        print(format_table(title, rows, columns, cells))
        print()
    return 0


if __name__ == "__main__":
    print(
        "note: `python -m repro ablations …` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
