"""Report rendering: geometric means and paper-style text tables."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for normalised cycles)."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    title: str,
    rows: Sequence[str],
    columns: Sequence[str],
    cells: Mapping[str, Mapping[str, float]],
    fmt: str = "{:.3f}",
    row_header: str = "benchmark",
) -> str:
    """Render ``cells[row][column]`` as an aligned text table."""
    widths = [max(len(row_header), max((len(r) for r in rows), default=0))]
    for col in columns:
        w = len(col)
        for row in rows:
            value = cells.get(row, {}).get(col)
            if value is not None:
                w = max(w, len(fmt.format(value)))
        widths.append(w)

    def line(parts: List[str]) -> str:
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = [title, line([row_header, *columns]), line(["-" * w for w in widths])]
    for row in rows:
        parts = [row]
        for col in columns:
            value = cells.get(row, {}).get(col)
            parts.append(fmt.format(value) if value is not None else "-")
        out.append(line(parts))
    return "\n".join(out)


def render_bars(
    title: str,
    rows: Sequence[str],
    columns: Sequence[str],
    cells: Mapping[str, Mapping[str, float]],
    width: int = 48,
    baseline: float = 1.0,
    fmt: str = "{:.3f}",
) -> str:
    """Render grouped horizontal bars (the figures' bar-chart view).

    Bars start at ``baseline`` (normalised-cycles charts grow from 1.0)
    when every value exceeds it; otherwise they start at zero.
    """
    values = [
        cells[r][c] for r in rows for c in columns if c in cells.get(r, {})
    ]
    if not values:
        return title
    vmax = max(values)
    start = baseline if all(v >= baseline for v in values) else 0.0
    span = max(vmax - start, 1e-9)
    label_w = max(len(c) for c in columns)
    out: List[str] = [title, ""]
    for row in rows:
        out.append(row)
        for col in columns:
            value = cells.get(row, {}).get(col)
            if value is None:
                continue
            filled = int(round((value - start) / span * width))
            bar = "#" * filled
            out.append(
                f"  {col.rjust(label_w)} |{bar.ljust(width)}| "
                + fmt.format(value)
            )
    return "\n".join(out)


def add_suite_gmeans(
    cells: Dict[str, Dict[str, float]],
    suites: Mapping[str, Sequence[str]],
    columns: Sequence[str],
    overall_key: str = "overall_gmean",
) -> List[str]:
    """Append per-suite and overall geometric-mean rows (paper layout).

    Returns the full row order: members interleaved with their suite
    gmeans, then the overall gmean — matching Figure 8's x-axis.
    """
    order: List[str] = []
    all_members: List[str] = []
    for suite, members in suites.items():
        present = [m for m in members if m in cells]
        if not present:
            continue
        order.extend(present)
        all_members.extend(present)
        gm_row = f"{suite}_gmean"
        cells[gm_row] = {
            col: geomean(
                cells[m][col] for m in present if col in cells[m]
            )
            for col in columns
        }
        order.append(gm_row)
    cells[overall_key] = {
        col: geomean(
            cells[m][col] for m in all_members if col in cells[m]
        )
        for col in columns
    }
    order.append(overall_key)
    return order
