"""Per-figure reproduction entry points.

Each ``fig*`` function regenerates one evaluation artefact of the paper,
printing the same rows/series the paper plots:

========  ================================================================
fig8      normalised execution cycles at store thresholds 32…1024
fig9      normalised cycles under the accumulative optimisation ladder
fig10     average dynamic instructions per region, per optimisation
fig11     average dynamic stores (incl. checkpoints) per region
headline  the abstract's 0% / 12.4% / 9.1% per-suite overheads (+5.1%)
naive     async two-phase stores vs. the naive synchronous design ("2x")
========  ================================================================

Run as a module::

    python -m repro.eval.figures fig8 --scale 1.0
    python -m repro.eval.figures all
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.arch.params import PersistMode, SimParams
from repro.compiler import OptConfig
from repro.eval.harness import EvalHarness
from repro.eval.report import add_suite_gmeans, format_table, geomean
from repro.workloads import SUITES

#: The threshold series of Figure 8 (the text also discusses 32 and 64).
FIG8_THRESHOLDS = [32, 64, 128, 256, 512, 1024]

#: Benchmark suites plotted in Figures 8-11 (the OS workload is part of
#: the methodology — kernel recompiled — not a plotted suite).
FIGURE_SUITES = {k: v for k, v in SUITES.items() if k != "os"}

ALL_BENCHMARKS = [name for members in FIGURE_SUITES.values() for name in members]


def _harness(scale: float, params: Optional[SimParams] = None) -> EvalHarness:
    return EvalHarness(params=params or SimParams.scaled(), scale=scale)


def _benchmarks(suite: Optional[str]) -> List[str]:
    if suite is None:
        return list(ALL_BENCHMARKS)
    return list(FIGURE_SUITES[suite])


def fig8(
    scale: float = 1.0,
    suite: Optional[str] = None,
    thresholds: Sequence[int] = tuple(FIG8_THRESHOLDS),
    harness: Optional[EvalHarness] = None,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Figure 8: normalised cycles vs region store threshold.

    Routed through the :mod:`repro.sweep` engine: ``workers`` fans the
    (benchmark × threshold) grid out across processes, and completed
    cells are memoised in the on-disk result cache.
    """
    h = harness or _harness(scale)
    configs = {str(t): OptConfig.licm(t) for t in thresholds}
    table = h.sweep(_benchmarks(suite), configs, workers=workers)
    return {
        name: {label: r.normalized_cycles for label, r in row.items()}
        for name, row in table.items()
    }


def fig9(
    scale: float = 1.0,
    suite: Optional[str] = None,
    threshold: int = 256,
    harness: Optional[EvalHarness] = None,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Figure 9: normalised cycles, accumulative compiler optimisations.

    Routed through the :mod:`repro.sweep` engine (see :func:`fig8`).
    """
    h = harness or _harness(scale)
    table = h.sweep(_benchmarks(suite), OptConfig.ladder(threshold), workers=workers)
    return {
        name: {label: r.normalized_cycles for label, r in row.items()}
        for name, row in table.items()
    }


def _region_stat_figure(
    attr: str,
    scale: float,
    suite: Optional[str],
    threshold: int,
    harness: Optional[EvalHarness] = None,
) -> Dict[str, Dict[str, float]]:
    # Region-statistic collection needs the in-process observer, so these
    # figures stay serial regardless of --workers.
    h = harness or _harness(scale)
    ladder = OptConfig.ladder(threshold)
    cells: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(suite):
        cells[name] = {}
        for label, config in ladder.items():
            result = h.run(name, config, label, collect_region_stats=True)
            assert result.region_stats is not None
            cells[name][label] = getattr(result.region_stats, attr)
    return cells


def fig10(
    scale: float = 1.0,
    suite: Optional[str] = None,
    threshold: int = 256,
    harness: Optional[EvalHarness] = None,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Figure 10: average dynamic instructions per region (always serial)."""
    return _region_stat_figure("avg_instructions", scale, suite, threshold, harness)


def fig11(
    scale: float = 1.0,
    suite: Optional[str] = None,
    threshold: int = 256,
    harness: Optional[EvalHarness] = None,
    workers: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Figure 11: average dynamic stores (incl. checkpoints) per region (serial)."""
    return _region_stat_figure("avg_stores", scale, suite, threshold, harness)


def headline(
    scale: float = 1.0,
    threshold: int = 256,
    harness: Optional[EvalHarness] = None,
) -> Dict[str, float]:
    """The abstract's per-suite overheads at the default threshold.

    Paper: 0% (SPEC CPU2017), 12.4% (STAMP), 9.1% (Splash-3); 5.1% overall.
    """
    h = harness or _harness(scale)
    out: Dict[str, float] = {}
    all_norms: List[float] = []
    for suite, members in FIGURE_SUITES.items():
        norms = [
            h.run(name, OptConfig.licm(threshold), "capri").normalized_cycles
            for name in members
        ]
        out[suite] = (geomean(norms) - 1.0) * 100.0
        all_norms.extend(norms)
    out["overall"] = (geomean(all_norms) - 1.0) * 100.0
    return out


def naive_comparison(
    scale: float = 1.0,
    suite: Optional[str] = None,
    threshold: int = 256,
) -> Dict[str, Dict[str, float]]:
    """Async Capri vs naive synchronous persistence.

    Section 1.4: "a naive approach may slow down the benchmark up to 2x,"
    while Capri's asynchronous two-phase store stays in low single digits.
    """
    async_h = _harness(scale)
    sync_h = _harness(
        scale, SimParams.scaled().with_(persist_mode=PersistMode.SYNC)
    )
    cells: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(suite):
        capri = async_h.run(name, OptConfig.licm(threshold), "capri")
        naive = sync_h.run(name, OptConfig.ckpt(threshold), "naive-sync")
        cells[name] = {
            "capri": capri.normalized_cycles,
            "naive-sync": naive.normalized_cycles,
        }
    return cells


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

_FIGS = {
    "fig8": (fig8, [str(t) for t in FIG8_THRESHOLDS],
             "Figure 8: normalized execution cycles by store threshold"),
    "fig9": (fig9, list(OptConfig.ladder().keys()),
             "Figure 9: normalized execution cycles by compiler optimization"),
    "fig10": (fig10, list(OptConfig.ladder().keys()),
              "Figure 10: average instructions per region"),
    "fig11": (fig11, list(OptConfig.ladder().keys()),
              "Figure 11: average stores (incl. checkpoints) per region"),
}


def render_figure(
    fig: str,
    scale: float = 1.0,
    suite: Optional[str] = None,
    chart: bool = False,
    workers: int = 0,
) -> str:
    """Run one figure and render its paper-style table (or bar chart)."""
    from repro.eval.report import render_bars

    fn, columns, title = _FIGS[fig]
    cells = fn(scale=scale, suite=suite, workers=workers)
    suites = (
        FIGURE_SUITES if suite is None else {suite: FIGURE_SUITES[suite]}
    )
    rows = add_suite_gmeans(cells, suites, columns)
    fmt = "{:.3f}" if fig in ("fig8", "fig9") else "{:.1f}"
    if chart:
        baseline = 1.0 if fig in ("fig8", "fig9") else 0.0
        return render_bars(title, rows, columns, cells, baseline=baseline, fmt=fmt)
    return format_table(title, rows, columns, cells, fmt=fmt)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.eval.figures",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=[*_FIGS.keys(), "headline", "naive", "all"],
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--suite", choices=list(FIGURE_SUITES), default=None)
    parser.add_argument("--chart", action="store_true",
                        help="render bar charts instead of tables")
    parser.add_argument("--workers", type=int, default=0,
                        help="sweep-engine worker processes (0 = serial)")
    args = parser.parse_args(argv)

    figures = list(_FIGS) if args.figure == "all" else [args.figure]
    if args.figure == "all":
        figures += ["headline", "naive"]

    for fig in figures:
        if fig == "headline":
            over = headline(scale=args.scale)
            print("Headline per-suite overheads at threshold 256 "
                  "(paper: cpu2017 0%, stamp 12.4%, splash3 9.1%, overall 5.1%)")
            for suite, pct in over.items():
                print(f"  {suite:10s} {pct:6.1f}%")
        elif fig == "naive":
            cells = naive_comparison(scale=args.scale, suite=args.suite)
            suites = (
                FIGURE_SUITES
                if args.suite is None
                else {args.suite: FIGURE_SUITES[args.suite]}
            )
            rows = add_suite_gmeans(cells, suites, ["capri", "naive-sync"])
            print(format_table(
                "Capri (async) vs naive synchronous persistence "
                "(paper: naive up to 2x)",
                rows, ["capri", "naive-sync"], cells,
            ))
        else:
            print(render_figure(
                fig, scale=args.scale, suite=args.suite, chart=args.chart,
                workers=args.workers,
            ))
        print()
    return 0


if __name__ == "__main__":
    print(
        "note: `python -m repro figures …` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
