"""Benchmark execution harness.

One :class:`EvalHarness` owns the methodology of Section 6.1 translated to
our substrate: every benchmark runs uninstrumented once per parameter set
(the volatile baseline) and instrumented once per (config, threshold);
results are normalised execution cycles plus compiler/persistence
statistics.  Baselines are cached, and the paper's convention of
*excluding* boundary and checkpoint instructions from the instruction
budget is honoured by normalising cycles rather than instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.arch.params import SimParams
from repro.arch.system import SystemMetrics, run_workload
from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.stats import RegionDynStats, RegionStatsObserver
from repro.isa.machine import Machine
from repro.workloads import Workload, get_workload


@dataclass
class BenchmarkResult:
    """One benchmark x configuration measurement."""

    name: str
    suite: str
    config_label: str
    threshold: int
    metrics: SystemMetrics
    baseline_cycles: float
    region_stats: Optional[RegionDynStats] = None

    @property
    def normalized_cycles(self) -> float:
        """Execution cycles relative to the volatile baseline (Figures 8/9)."""
        return self.metrics.exec_cycles / self.baseline_cycles

    @property
    def overhead_pct(self) -> float:
        return (self.normalized_cycles - 1.0) * 100.0


class EvalHarness:
    """Runs benchmarks at configurations, caching volatile baselines."""

    def __init__(
        self,
        params: Optional[SimParams] = None,
        scale: float = 1.0,
        quantum: int = 32,
    ) -> None:
        self.params = params or SimParams.scaled()
        self.scale = scale
        self.quantum = quantum
        self._baseline_cache: Dict[str, float] = {}

    # -- baseline -----------------------------------------------------------

    def baseline_cycles(self, name: str) -> float:
        """Volatile (uninstrumented, no persistence) execution cycles."""
        cached = self._baseline_cache.get(name)
        if cached is not None:
            return cached
        workload = get_workload(name)
        module, spawns = workload.build(self.scale)
        metrics, _ = run_workload(
            module,
            spawns,
            params=self.params,
            persistence=False,
            quantum=self.quantum,
        )
        self._baseline_cache[name] = metrics.exec_cycles
        return metrics.exec_cycles

    # -- instrumented runs ------------------------------------------------------

    def run(
        self,
        name: str,
        config: OptConfig,
        config_label: str = "",
        collect_region_stats: bool = False,
    ) -> BenchmarkResult:
        """Compile with ``config`` and simulate under the Capri system."""
        workload = get_workload(name)
        module, spawns = workload.build(self.scale)
        compiled = CapriCompiler(config).compile(module).module

        region_stats: Optional[RegionDynStats] = None
        if collect_region_stats and config.instrumented:
            # Dedicated functional pass for region statistics (cheap).
            obs = RegionStatsObserver()
            machine = Machine(compiled, quantum=self.quantum)
            for func_name, args in spawns:
                machine.spawn(func_name, args)
            machine.run(obs)
            region_stats = obs.stats

        metrics, _ = run_workload(
            compiled,
            spawns,
            params=self.params,
            threshold=config.threshold,
            persistence=config.instrumented,
            quantum=self.quantum,
        )
        return BenchmarkResult(
            name=name,
            suite=workload.suite,
            config_label=config_label or repr(config),
            threshold=config.threshold,
            metrics=metrics,
            baseline_cycles=self.baseline_cycles(name),
            region_stats=region_stats,
        )

    # -- robustness ---------------------------------------------------------

    def fault_campaign(self, name: str, campaign_config=None):
        """Run a crash-consistency fault-injection campaign on a benchmark.

        Compiles ``name`` the same way :meth:`run` does and sweeps crash
        points under :mod:`repro.fault` with this harness's parameters;
        returns a :class:`~repro.fault.campaign.CampaignResult`.
        """
        from repro.fault.campaign import CampaignConfig, run_workload_campaign

        cc = campaign_config or CampaignConfig()
        cc.params = cc.params or self.params
        cc.quantum = self.quantum
        return run_workload_campaign(name, cc, scale=self.scale)
