"""Benchmark execution harness.

One :class:`EvalHarness` owns the methodology of Section 6.1 translated to
our substrate: every benchmark runs uninstrumented once per parameter set
(the volatile baseline) and instrumented once per (config, threshold);
results are normalised execution cycles plus compiler/persistence
statistics.  Baselines are cached *by RunSpec fingerprint* — mutating
``scale``/``params``/``quantum`` on a live harness gets fresh baselines,
never a stale name-keyed hit — and the paper's convention of *excluding*
boundary and checkpoint instructions from the instruction budget is
honoured by normalising cycles rather than instruction counts.

Cross-product runs go through :meth:`EvalHarness.sweep`, which delegates
to the :mod:`repro.sweep` engine: configurable worker pool, on-disk
memoisation of completed runs, structured progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.api import RunResult, RunSpec
from repro.arch.params import SimParams
from repro.arch.system import SystemMetrics, run_workload
from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.stats import RegionDynStats, RegionStatsObserver
from repro.isa.machine import Machine
from repro.workloads import Workload, get_workload


@dataclass
class BenchmarkResult:
    """One benchmark x configuration measurement."""

    name: str
    suite: str
    config_label: str
    threshold: int
    metrics: SystemMetrics
    baseline_cycles: float
    region_stats: Optional[RegionDynStats] = None

    @property
    def normalized_cycles(self) -> float:
        """Execution cycles relative to the volatile baseline (Figures 8/9)."""
        return self.metrics.exec_cycles / self.baseline_cycles

    @property
    def overhead_pct(self) -> float:
        return (self.normalized_cycles - 1.0) * 100.0


class EvalHarness:
    """Runs benchmarks at configurations, caching volatile baselines."""

    def __init__(
        self,
        params: Optional[SimParams] = None,
        scale: float = 1.0,
        quantum: int = 32,
        check: bool = False,
        trace: bool = False,
    ) -> None:
        self.params = params or SimParams.scaled()
        self.scale = scale
        self.quantum = quantum
        #: run every instrumented simulation under the online persistency
        #: checker (:mod:`repro.check`); violations raise out of
        #: :meth:`run`/:meth:`run_spec`.  Volatile baselines are never
        #: checked (nothing persistent to check).
        self.check = check
        #: drive instrumented runs from captured columnar traces
        #: (:mod:`repro.trace`): the functional event stream is recorded
        #: once per (workload, config) and the architecture layers are
        #: replayed per parameter point.  Fault campaigns started through
        #: :meth:`fault_campaign` inherit the same replay mode.
        self.trace = trace
        #: baseline fingerprint -> volatile exec cycles.
        self._baseline_cache: Dict[str, float] = {}
        #: the engine report from the most recent :meth:`sweep` call.
        self.last_sweep_report = None

    # -- specs --------------------------------------------------------------

    def spec(
        self, name: str, config: Optional[OptConfig] = None, label: str = ""
    ) -> RunSpec:
        """A :class:`RunSpec` for ``name`` under this harness's settings."""
        spec = RunSpec(
            workload=name,
            scale=self.scale,
            config=config if config is not None else OptConfig.licm(),
            params=self.params,
            quantum=self.quantum,
            label=label,
        )
        if self.trace and spec.effective_persistence:
            spec = spec.with_(trace=True)
        if self.check and spec.effective_persistence:
            spec = spec.with_(check=True)
        return spec

    # -- baseline -----------------------------------------------------------

    def baseline_cycles(self, name: str) -> float:
        """Volatile (uninstrumented, no persistence) execution cycles.

        Keyed by the baseline spec's fingerprint, so the cache survives —
        correctly — mutation of ``scale``/``params``/``quantum`` between
        calls (each combination gets its own entry).
        """
        spec = self.spec(name).baseline()
        key = spec.fingerprint()
        cached = self._baseline_cache.get(key)
        if cached is not None:
            return cached
        workload = get_workload(name)
        module, spawns = workload.build(self.scale)
        metrics, _ = run_workload(
            module,
            spawns,
            params=self.params,
            persistence=False,
            quantum=self.quantum,
        )
        self._baseline_cache[key] = metrics.exec_cycles
        return metrics.exec_cycles

    # -- instrumented runs ------------------------------------------------------

    def run(
        self,
        name: str,
        config: OptConfig,
        config_label: str = "",
        collect_region_stats: bool = False,
    ) -> BenchmarkResult:
        """Compile with ``config`` and simulate under the Capri system."""
        workload = get_workload(name)
        module, spawns = workload.build(self.scale)
        compiled = CapriCompiler(config).compile(module).module

        region_stats: Optional[RegionDynStats] = None
        if collect_region_stats and config.instrumented:
            # Dedicated functional pass for region statistics (cheap).
            obs = RegionStatsObserver()
            machine = Machine(compiled, quantum=self.quantum)
            for func_name, args in spawns:
                machine.spawn(func_name, args)
            machine.run(obs)
            region_stats = obs.stats

        metrics, _ = run_workload(
            compiled,
            spawns,
            params=self.params,
            threshold=config.threshold,
            persistence=config.instrumented,
            quantum=self.quantum,
            check=self.check and config.instrumented,
        )
        return BenchmarkResult(
            name=name,
            suite=workload.suite,
            config_label=config_label or repr(config),
            threshold=config.threshold,
            metrics=metrics,
            baseline_cycles=self.baseline_cycles(name),
            region_stats=region_stats,
        )

    def run_spec(self, spec: RunSpec) -> RunResult:
        """Execute one :class:`RunSpec` (the new-API twin of :meth:`run`).

        The result carries baseline cycles from this harness's
        fingerprint-keyed cache, so ``normalized_cycles`` works.
        """
        from repro.api import execute_spec

        result = execute_spec(spec)
        base = spec.baseline()
        key = base.fingerprint()
        if key not in self._baseline_cache:
            if spec.effective_persistence:
                self._baseline_cache[key] = execute_spec(base).metrics.exec_cycles
            else:
                self._baseline_cache[key] = result.metrics.exec_cycles
        result.baseline_cycles = self._baseline_cache[key]
        return result

    # -- sweeps ------------------------------------------------------------

    def sweep(
        self,
        names: Sequence[str],
        configs: Mapping[str, OptConfig],
        workers: int = 0,
        cache: Union[str, None, bool, object] = "default",
        progress=None,
        strict: bool = True,
        timeout_s: Optional[float] = None,
        since: Optional[str] = None,
    ) -> Dict[str, Dict[str, BenchmarkResult]]:
        """Run ``names`` × ``configs`` through the sweep engine.

        ``configs`` maps display label -> :class:`OptConfig`.  ``workers=0``
        is serial in-process; ``workers=N`` fans out over N processes.
        ``cache="default"`` memoises on disk under
        :func:`repro.sweep.cache.default_cache_dir` (``REPRO_CACHE_DIR``
        overrides); pass ``None`` to disable.  ``since`` (a git rev)
        additionally produces the delta report — which subsystems changed
        since that revision and which figures moved — on
        ``last_sweep_report.delta``.  Returns
        ``{name: {label: BenchmarkResult}}``; the engine's
        :class:`~repro.sweep.engine.SweepReport` (per-spec status,
        wall-clock, cache counters) lands on :attr:`last_sweep_report`.
        """
        from repro.sweep.engine import SweepError, run_specs

        specs = [
            self.spec(name, config, label=label)
            for name in names
            for label, config in configs.items()
        ]
        report = run_specs(
            specs,
            workers=workers,
            cache=cache,
            progress=progress,
            timeout_s=timeout_s,
            since=since,
        )
        self.last_sweep_report = report
        if strict and not report.ok:
            raise SweepError(report)

        table: Dict[str, Dict[str, BenchmarkResult]] = {}
        for spec, result in zip(specs, report.results):
            if result is None:
                continue
            table.setdefault(spec.workload, {})[spec.label] = BenchmarkResult(
                name=spec.workload,
                suite=get_workload(spec.workload).suite,
                config_label=spec.label,
                threshold=spec.effective_threshold,
                metrics=result.metrics,
                baseline_cycles=result.baseline_cycles,
            )
            # Share the engine's baselines with the serial path.
            key = spec.baseline().fingerprint()
            if result.baseline_cycles is not None:
                self._baseline_cache.setdefault(key, result.baseline_cycles)
        return table

    # -- robustness ---------------------------------------------------------

    def fault_campaign(self, name: str, campaign_config=None, depth: int = 1):
        """Run a crash-consistency fault-injection campaign on a benchmark.

        Compiles ``name`` the same way :meth:`run` does and sweeps crash
        points under :mod:`repro.fault` with this harness's parameters;
        returns a :class:`~repro.fault.campaign.CampaignResult`.

        ``depth`` > 1 (or a ``campaign_config`` with ``depth`` > 1)
        switches on the nested-failure mode: crash chains injected into
        recovery itself, judged against the idempotence oracle on top of
        the differential one (:mod:`repro.fault.multicrash`).
        """
        from repro.fault.campaign import CampaignConfig, run_workload_campaign

        cc = campaign_config or CampaignConfig()
        cc.params = cc.params or self.params
        cc.quantum = self.quantum
        cc.check = cc.check or self.check
        cc.replay = cc.replay or self.trace
        cc.depth = max(cc.depth, depth)
        return run_workload_campaign(name, cc, scale=self.scale)
