"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.harness` — compile/run/measure one benchmark at one
  configuration, with baseline caching,
* :mod:`repro.eval.figures` — one entry point per paper figure
  (Figure 8 threshold sweep, Figure 9 optimisation ladder, Figures 10/11
  region statistics, the headline overhead table),
* :mod:`repro.eval.report` — text rendering in the paper's row/series
  layout.

Command line::

    python -m repro.eval.figures fig8 [--scale S] [--suite NAME]
    python -m repro.eval.figures fig9|fig10|fig11|headline|naive|all
"""

from repro.eval.harness import BenchmarkResult, EvalHarness
from repro.eval.report import format_table, geomean

__all__ = ["BenchmarkResult", "EvalHarness", "format_table", "geomean"]
