"""One-shot evaluation report: every figure + analysis into one markdown file.

``python -m repro.eval.make_report [--out results/REPORT.md] [--scale S]``
regenerates the complete evaluation — the four paper figures, the
headline and naive comparisons, and the extension analyses — and writes
a single self-contained markdown report with a reproduction manifest
(command lines, scale, configuration) so a reader can audit exactly how
each table was produced.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.arch.params import SimParams
from repro.compiler import OptConfig
from repro.eval import figures
from repro.eval.ablations import (
    core_scaling,
    inlining_ablation,
    nvm_bandwidth_sweep,
    prevention_cost,
)
from repro.eval.energy import drain_budgets
from repro.eval.recovery_analysis import analyze_recovery
from repro.eval.report import add_suite_gmeans, format_table


def _md_block(text: str) -> str:
    return "```\n" + text + "\n```\n"


def generate_report(scale: float = 1.0, workers: int = 0) -> str:
    """Build the full markdown report; heavy (runs every experiment).

    ``workers`` fans the figure grids and ablation sweeps out through the
    :mod:`repro.sweep` engine; completed runs are memoised in the on-disk
    result cache, so regenerating a report after small code changes only
    re-simulates what the change invalidated.
    """
    start = time.time()
    parts: List[str] = [
        "# Capri reproduction — full evaluation report",
        "",
        f"Workload scale: {scale}.  Simulator: `SimParams.scaled()` "
        "(Table 1 latencies, shrunken capacities; see DESIGN.md).",
        "",
        "Regenerate any table alone with the command shown above it.",
        "",
    ]

    for fig in ["fig8", "fig9", "fig10", "fig11"]:
        parts.append(f"## {fig}")
        parts.append(f"`python -m repro.eval.figures {fig} --scale {scale}`")
        parts.append(
            _md_block(figures.render_figure(fig, scale=scale, workers=workers))
        )

    parts.append("## headline")
    parts.append(f"`python -m repro.eval.figures headline --scale {scale}`")
    over = figures.headline(scale=scale)
    lines = ["suite      overhead", "-----      --------"]
    for suite, pct in over.items():
        lines.append(f"{suite:10s} {pct:6.1f}%")
    parts.append(_md_block("\n".join(lines)))

    parts.append("## naive comparison")
    parts.append(f"`python -m repro.eval.figures naive --scale {scale}`")
    cells = figures.naive_comparison(scale=scale)
    rows = add_suite_gmeans(
        cells, figures.FIGURE_SUITES, ["capri", "naive-sync"]
    )
    parts.append(
        _md_block(
            format_table(
                "Capri (async) vs naive synchronous persistence",
                rows,
                ["capri", "naive-sync"],
                cells,
            )
        )
    )

    parts.append("## extension analyses")
    parts.append("`python -m repro.eval.ablations nvmbw|prevention|inlining|cores`")
    ablation_scale = min(scale, 0.5)
    for title, cells in [
        ("NVM write parallelism",
         nvm_bandwidth_sweep(scale=ablation_scale, workers=workers)),
        ("Stale-read prevention",
         prevention_cost(scale=ablation_scale, workers=workers)),
        ("Inlining extension",
         inlining_ablation(scale=ablation_scale, workers=workers)),
        ("Core-count scaling",
         core_scaling(scale=ablation_scale, workers=workers)),
    ]:
        rows = list(cells.keys())
        columns = list(next(iter(cells.values())).keys())
        parts.append(_md_block(format_table(title, rows, columns, cells)))

    parts.append("## recovery latency")
    parts.append("`python -m repro.eval.recovery_analysis`")
    sweep = analyze_recovery("genome", threshold=256, scale=min(scale, 0.5))
    parts.append(
        _md_block(
            f"crash points: {len(sweep.costs)}\n"
            f"max entries scanned: {sweep.max_entries} "
            f"(capacity bound {256 + 33})\n"
            f"estimated recovery: mean {sweep.mean_ns / 1000:.2f} us, "
            f"max {sweep.max_ns / 1000:.2f} us"
        )
    )

    parts.append("## residual energy (Section 1.2)")
    parts.append("`python -m repro.eval.energy --memory-mode`")
    budgets = drain_budgets(num_cores=8, include_dram_cache=True)
    cells = {name: b.row() for name, b in budgets.items()}
    parts.append(
        _md_block(
            format_table(
                "Drain budget at power failure (memory-mode eADR)",
                list(budgets),
                ["KB", "drain_us", "energy_uJ"],
                cells,
                fmt="{:,.1f}",
                row_header="scheme",
            )
        )
    )

    parts.append(
        f"---\nGenerated in {time.time() - start:.0f} s by "
        "`python -m repro.eval.make_report`."
    )
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.eval.make_report")
    parser.add_argument("--out", default="results/REPORT.md")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--workers", type=int, default=0,
                        help="sweep-engine worker processes (0 = serial)")
    args = parser.parse_args(argv)
    report = generate_report(scale=args.scale, workers=args.workers)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as fh:
        fh.write(report)
    print(f"wrote {args.out} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    print(
        "note: `python -m repro report …` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
