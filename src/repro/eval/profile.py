"""Workload characterisation: the "shape" numbers behind the stand-ins.

DESIGN.md claims each synthetic benchmark matches its paper counterpart
on the axes that drive Capri — store density, call frequency, loop
shortness, working-set size, register pressure.  This module measures
those axes from a run, so the claims are checkable and new stand-ins can
be tuned against them:

* instruction mix (ALU / load / store / branch / call fractions),
* store density (stores per 100 instructions),
* call density (mandatory boundaries per 1k instructions),
* working set (distinct words and cache lines touched),
* region profile after Capri compilation (dynamic lengths, checkpoint
  fractions).

It also measures simulator *throughput* per workload — functional
instructions/second, full-system (interpreted) events/second, and
trace-replay events/second with the capture overhead — which feeds the
performance table in docs/PERFORMANCE.md.

Command line::

    python -m repro.eval.profile [names...] [--scale S]
    python -m repro.eval.profile genome ssca2 --json -          # stdout
    python -m repro.eval.profile genome --json profile.json     # file
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.compiler import CapriCompiler, OptConfig
from repro.compiler.stats import RegionStatsObserver
from repro.isa.machine import Machine
from repro.isa.trace import Observer
from repro.workloads import get_workload, workload_names


class CharacterizationObserver(Observer):
    """Collects the instruction-mix and working-set profile of one run."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self.kind_counts: Dict[str, int] = {}
        self.words: Set[int] = set()
        self.store_words: Set[int] = set()
        self.loads = 0
        self.stores = 0
        self.calls = 0
        self.atomics = 0
        self.retired = 0

    def on_retire(self, core, kind):
        self.retired += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if kind == "Call":
            self.calls += 1

    def on_load(self, core, addr):
        self.loads += 1
        self.words.add(addr)

    def on_store(self, core, addr, value, old):
        self.stores += 1
        self.words.add(addr)
        self.store_words.add(addr)

    def on_atomic(self, core, addr, value, old):
        self.atomics += 1
        self.words.add(addr)
        self.store_words.add(addr)

    @property
    def lines_touched(self) -> int:
        return len({w - w % self.line_bytes for w in self.words})


@dataclass
class WorkloadProfile:
    """One benchmark's measured shape."""

    name: str
    suite: str
    instructions: int
    store_density: float  # stores per 100 instructions
    load_density: float
    call_density: float  # calls per 1000 instructions
    atomic_density: float
    branch_fraction: float
    working_set_words: int
    working_set_lines: int
    # after full Capri compilation at threshold 256:
    avg_region_instrs: float
    avg_region_stores: float
    ckpt_fraction: float  # checkpoint stores / all dynamic instructions

    def row(self) -> Dict[str, float]:
        return {
            "instrs": self.instructions,
            "st/100": self.store_density,
            "ld/100": self.load_density,
            "call/1k": self.call_density,
            "atomic/1k": self.atomic_density,
            "br%": self.branch_fraction * 100,
            "ws_lines": self.working_set_lines,
            "region_len": self.avg_region_instrs,
            "region_st": self.avg_region_stores,
            "ckpt%": self.ckpt_fraction * 100,
        }


def profile_workload(
    name: str, scale: float = 0.5, threshold: int = 256
) -> WorkloadProfile:
    """Measure one benchmark's shape (uninstrumented + Capri region view)."""
    workload = get_workload(name)
    module, spawns = workload.build(scale)

    obs = CharacterizationObserver()
    machine = Machine(module)
    for fn, args in spawns:
        machine.spawn(fn, args)
    machine.run(obs)

    capri = CapriCompiler(OptConfig.licm(threshold)).compile(module).module
    robs = RegionStatsObserver()
    cobs = CharacterizationObserver()

    class Both(Observer):
        def __getattribute__(self, attr):
            if attr.startswith("on_"):
                def fan(*args, **kw):
                    getattr(robs, attr)(*args, **kw)
                    getattr(cobs, attr)(*args, **kw)
                return fan
            return super().__getattribute__(attr)

    cmachine = Machine(capri)
    for fn, args in spawns:
        cmachine.spawn(fn, args)
    cmachine.run(Both())

    n = max(1, obs.retired)
    ckpts = cobs.kind_counts.get("CheckpointStore", 0)
    return WorkloadProfile(
        name=name,
        suite=workload.suite,
        instructions=obs.retired,
        store_density=100.0 * (obs.stores + obs.atomics) / n,
        load_density=100.0 * obs.loads / n,
        call_density=1000.0 * obs.calls / n,
        atomic_density=1000.0 * obs.atomics / n,
        branch_fraction=(
            obs.kind_counts.get("Branch", 0) + obs.kind_counts.get("Jump", 0)
        )
        / n,
        working_set_words=len(obs.words),
        working_set_lines=obs.lines_touched,
        avg_region_instrs=robs.stats.avg_instructions,
        avg_region_stores=robs.stats.avg_stores,
        ckpt_fraction=ckpts / max(1, cobs.retired),
    )


def measure_throughput(
    name: str, scale: float = 0.5, threshold: int = 256, quantum: int = 32
) -> Dict[str, float]:
    """Simulator throughput on one workload, all four execution paths.

    Returns a flat dict: functional interpreter instructions/second,
    trace capture overhead (events/second plus slowdown vs the bare
    functional run), interpreted full-system events/second, and
    trace-replay events/second with the resulting per-run speedup.
    Single measurement each — these feed a documentation table, not a
    statistics engine; use benchmarks/ for calibrated numbers.
    """
    from repro.arch.system import run_workload
    from repro.trace.record import capture_trace
    from repro.trace.replay import replay_metrics

    workload = get_workload(name)
    module, spawns = workload.build(scale)
    compiled = CapriCompiler(OptConfig.licm(threshold)).compile(module).module

    start = time.perf_counter()
    machine = Machine(compiled)
    for fn, fargs in spawns:
        machine.spawn(fn, fargs)
    machine.run(Observer())
    t_functional = time.perf_counter() - start

    start = time.perf_counter()
    trace = capture_trace(compiled, spawns, quantum=quantum)
    t_capture = time.perf_counter() - start

    start = time.perf_counter()
    run_workload(compiled, spawns, threshold=threshold, quantum=quantum)
    t_interpreted = time.perf_counter() - start

    start = time.perf_counter()
    replay_metrics(trace, threshold=threshold)
    t_replay = time.perf_counter() - start

    events = len(trace)
    instrs = machine.total_retired
    return {
        "instructions": instrs,
        "events": events,
        "functional_instr_per_s": instrs / max(t_functional, 1e-9),
        "capture_events_per_s": events / max(t_capture, 1e-9),
        "capture_overhead_x": t_capture / max(t_functional, 1e-9),
        "interpreted_events_per_s": events / max(t_interpreted, 1e-9),
        "replay_events_per_s": events / max(t_replay, 1e-9),
        "replay_speedup_x": t_interpreted / max(t_replay, 1e-9),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.jsonout import add_json_arg, resolved_json_out, write_envelope

    parser = argparse.ArgumentParser(prog="repro.eval.profile")
    parser.add_argument("names", nargs="*", default=None)
    parser.add_argument("--scale", type=float, default=0.5)
    add_json_arg(
        parser,
        help="emit machine-readable characterisation + throughput "
        "(instr/s, events/s, replay speedup) as a schema-versioned "
        "envelope to PATH ('-' for stdout, suppressing the table)",
    )
    args = parser.parse_args(argv)
    json_out = resolved_json_out(args, prog="repro profile")
    names = args.names or workload_names()

    from repro.eval.report import format_table

    cells: Dict[str, Dict[str, float]] = {}
    columns: List[str] = []
    payload: Dict[str, Dict[str, object]] = {}
    for name in names:
        profile = profile_workload(name, scale=args.scale)
        cells[name] = profile.row()
        columns = list(cells[name].keys())
        if json_out:
            payload[name] = {
                "suite": profile.suite,
                "characterisation": profile.row(),
                "throughput": measure_throughput(name, scale=args.scale),
            }
    if json_out:
        write_envelope(
            json_out,
            "profile",
            {"scale": args.scale, "workloads": payload},
        )
        if json_out == "-":
            return 0
    print(
        format_table(
            "Workload characterisation "
            "(store/load density per 100 instrs, calls/atomics per 1k, "
            "Capri regions at threshold 256)",
            names,
            columns,
            cells,
            fmt="{:.1f}",
        )
    )
    if json_out:
        print(f"profile written to {json_out}")
    return 0


if __name__ == "__main__":
    print(
        "note: `python -m repro profile …` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
