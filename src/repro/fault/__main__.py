"""Command-line fault-injection campaigns.

Examples::

    # Exhaustive clean-power-loss sweep (every observer event):
    python -m repro.fault --workload genome --scale 0.1

    # Sampled adversarial sweep, lenient recovery:
    python -m repro.fault --workload genome --scale 0.1 --sample 50 \\
        --models all --lenient

    # Nested-failure sweep: crash, then crash again inside recovery:
    python -m repro.fault --workload update-loop --multi-crash --depth 2 \\
        --sample 20 --json out.json

Exit status is non-zero iff the campaign found a failure (a silent
mis-recovery, a clean-crash divergence, a non-idempotent re-entered
recovery, or an unexpected error).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.fault.campaign import CampaignConfig, run_workload_campaign
from repro.fault.models import available_models
from repro.jsonout import add_json_arg, resolved_json_out, write_envelope


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault",
        description="Crash-consistency fault-injection campaign",
    )
    parser.add_argument(
        "--workload",
        required=True,
        help="registry workload name (see repro.workloads)",
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--threshold", type=int, default=32)
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        help="crash-point sample size (default: exhaustive)",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=0xCA9121)
    parser.add_argument(
        "--models",
        default="clean",
        help="comma-separated fault models, or 'all' "
        f"(known: {', '.join(available_models())})",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        dest="strict",
        action="store_true",
        default=None,
        help="fail-stop recovery: corruption raises (default for clean)",
    )
    mode.add_argument(
        "--lenient",
        dest="strict",
        action="store_false",
        help="quarantining recovery: corruption is contained and reported",
    )
    parser.add_argument(
        "--no-minimize",
        dest="minimize",
        action="store_false",
        help="skip shrinking the first failure",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the online persistency checker (repro.check) as a "
        "second oracle at every sweep point",
    )
    parser.add_argument(
        "--multi-crash",
        action="store_true",
        help="nested-failure mode: also inject crashes into recovery "
        "itself (crash chains up to --depth total failures)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="total crashes per chain (default 2 with --multi-crash); "
        "implies --multi-crash when > 1",
    )
    parser.add_argument(
        "--secondary-sample",
        type=int,
        default=12,
        help="recovery-step crash indices sampled per chain level "
        "(0 = exhaustive; default 12)",
    )
    parser.add_argument(
        "--max-chains",
        type=int,
        default=96,
        help="chain budget per primary crash point (skipped chains are "
        "reported, never silent; default 96)",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="capture the workload's event stream once (repro.trace) and "
        "replay it per crash point instead of re-interpreting — identical "
        "verdicts, much faster exhaustive sweeps",
    )
    add_json_arg(
        parser,
        legacy="--stats-json",
        help="write the campaign's machine-readable summary (counts, "
        "quarantine detail, first failure) to PATH as a schema-versioned "
        "envelope ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    json_out = resolved_json_out(args, prog="repro fault")

    depth = args.depth
    if depth is None:
        depth = 2 if args.multi_crash else 1
    if depth < 1:
        parser.error("--depth must be >= 1")

    model_names = tuple(
        name.strip() for name in args.models.split(",") if name.strip()
    )
    # Default mode: strict for clean sweeps (any raise is a bug), lenient
    # when injecting faults (we want containment, not fail-stop).
    strict = args.strict
    if strict is None:
        strict = model_names == ("clean",)

    config = CampaignConfig(
        threshold=args.threshold,
        seed=args.seed,
        sample=args.sample,
        models=model_names,
        strict=strict,
        minimize=args.minimize,
        check=args.check,
        depth=depth,
        secondary_sample=args.secondary_sample or None,
        max_chains_per_point=args.max_chains,
        replay=args.replay,
    )
    try:
        result = run_workload_campaign(
            args.workload, config, scale=args.scale
        )
    except KeyError as err:  # unknown workload or fault model
        parser.error(str(err.args[0] if err.args else err))
    if json_out != "-":
        print(result.summary())
    if json_out:
        write_envelope(json_out, "fault", result.to_stats())
        if json_out != "-":
            print(f"stats written to {json_out}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    print(
        "note: `python -m repro fault …` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
