"""Command-line fault-injection campaigns.

Examples::

    # Exhaustive clean-power-loss sweep (every observer event):
    python -m repro.fault --workload genome --scale 0.1

    # Sampled adversarial sweep, lenient recovery:
    python -m repro.fault --workload genome --scale 0.1 --sample 50 \\
        --models all --lenient

Exit status is non-zero iff the campaign found a failure (a silent
mis-recovery, a clean-crash divergence, or an unexpected error).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.fault.campaign import CampaignConfig, run_workload_campaign
from repro.fault.models import available_models


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault",
        description="Crash-consistency fault-injection campaign",
    )
    parser.add_argument(
        "--workload",
        required=True,
        help="registry workload name (see repro.workloads)",
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--threshold", type=int, default=32)
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        help="crash-point sample size (default: exhaustive)",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=0xCA9121)
    parser.add_argument(
        "--models",
        default="clean",
        help="comma-separated fault models, or 'all' "
        f"(known: {', '.join(available_models())})",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        dest="strict",
        action="store_true",
        default=None,
        help="fail-stop recovery: corruption raises (default for clean)",
    )
    mode.add_argument(
        "--lenient",
        dest="strict",
        action="store_false",
        help="quarantining recovery: corruption is contained and reported",
    )
    parser.add_argument(
        "--no-minimize",
        dest="minimize",
        action="store_false",
        help="skip shrinking the first failure",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the online persistency checker (repro.check) as a "
        "second oracle at every sweep point",
    )
    args = parser.parse_args(argv)

    model_names = tuple(
        name.strip() for name in args.models.split(",") if name.strip()
    )
    # Default mode: strict for clean sweeps (any raise is a bug), lenient
    # when injecting faults (we want containment, not fail-stop).
    strict = args.strict
    if strict is None:
        strict = model_names == ("clean",)

    config = CampaignConfig(
        threshold=args.threshold,
        seed=args.seed,
        sample=args.sample,
        models=model_names,
        strict=strict,
        minimize=args.minimize,
        check=args.check,
    )
    try:
        result = run_workload_campaign(
            args.workload, config, scale=args.scale
        )
    except KeyError as err:  # unknown workload or fault model
        parser.error(str(err.args[0] if err.args else err))
    print(result.summary())
    return 0 if result.ok else 1


if __name__ == "__main__":
    print(
        "note: `python -m repro fault …` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
