"""The fault-injection campaign runner.

One campaign = one workload × one fault combination × a set of crash
points (every observer event, or a deterministic seeded sample for long
traces).  Per point:

1. run under the Capri system to the crash point and capture the
   persistent domain (:func:`run_until_crash_with_machine`),
2. apply the fault models to a clone of the snapshot,
3. recover (strict or lenient) and resume to completion,
4. judge the outcome against the differential oracle.

Outcome classification — the campaign's contract is **zero silent
mis-recoveries**:

========================  ====================================================
status                    meaning
========================  ====================================================
``ok``                    observationally equivalent to the golden run
``finished``              program ended before the crash point (no crash)
``detected``              strict recovery raised a typed ``RecoveryError``
``quarantined``           lenient recovery reported the corruption and the
                          damage is contained (tainted addrs / fenced cores)
``mismatch``              FAILURE: clean crash diverged from golden
``silent-mismatch``       FAILURE: injected fault diverged *unreported*
``model-violation``       FAILURE: the online persistency checker
                          (:mod:`repro.check`) flagged the crash state or a
                          clean recovery — even if end-state differencing
                          passed (``config.check`` only)
``error``                 FAILURE: unexpected exception
========================  ====================================================

With ``CampaignConfig.check`` on, every sweep point runs under the
shadow-state checker as a *second oracle*: the run to the crash point is
sanitized online, the captured persistent domain is compared against the
model's expected surviving entries, and clean (fault-free) recoveries are
validated against the committed prefix.  The two oracles are
complementary — the differential check catches wrong *end states*, the
model checker catches protocol violations that happen not to corrupt this
particular execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.crash import CrashPlan, run_until_crash_with_machine
from repro.arch.params import SimParams
from repro.arch.recovery import RecoveryError, recover, resume_and_finish
from repro.fault.models import FaultModel, FaultNote, apply_faults, get_models
from repro.fault.oracle import (
    GoldenResult,
    MinimizedFailure,
    differential_check,
    golden_run,
    minimize_failure,
)
from repro.ir.module import Module
from repro.isa.machine import MachineError

FAILURE_STATUSES = (
    "mismatch",
    "silent-mismatch",
    "model-violation",
    "divergent-recovery",
    "error",
)


@dataclass
class CampaignConfig:
    """Knobs for one sweep."""

    threshold: int = 32
    quantum: int = 32
    seed: int = 0xCA9121
    #: None = exhaustive (every event index); else a seeded sample size.
    sample: Optional[int] = None
    #: fault-model names (see repro.fault.models.available_models).
    models: Sequence[str] = ("clean",)
    strict: bool = True
    minimize: bool = True
    max_steps: int = 50_000_000
    params: Optional[SimParams] = None
    #: run the online persistency checker (:mod:`repro.check`) as a second
    #: oracle at every sweep point — see the module docstring.
    check: bool = False
    #: crash-chain depth: 1 = classic single-crash sweep; K > 1 adds
    #: crashes *inside recovery* (crash-after-crash) up to K total
    #: failures per chain — see :mod:`repro.fault.multicrash`.
    depth: int = 1
    #: per-recovery secondary crash indices: None = exhaustive (every
    #: recovery step); else a seeded sample size.
    secondary_sample: Optional[int] = 12
    #: hard budget on chains explored per primary crash point; chains
    #: beyond it are counted as truncated, never silently dropped.
    max_chains_per_point: int = 96
    #: planted recovery-protocol bugs (repro.arch.persistence.
    #: ProtocolMutations) threaded into every recovery the campaign
    #: runs — the multi-crash mode's sensitivity ("teeth") knob.
    mutations: Optional[object] = None
    #: capture the workload's event stream once (:mod:`repro.trace`) and
    #: replay it per crash point instead of re-interpreting the IR — the
    #: fast path for exhaustive sweeps (identical verdicts; see
    #: docs/INTERNALS.md).
    replay: bool = False

    @classmethod
    def from_spec(cls, spec, **overrides) -> "CampaignConfig":
        """Derive campaign knobs from a :class:`repro.api.RunSpec`.

        The spec's threshold/quantum/params/seed/max_steps carry over;
        campaign-only knobs (models, strictness, sampling) come from
        ``overrides`` or the defaults.  An explicit ``spec.seed`` is
        honoured even when it is 0 — only an *unset* (``None``) seed
        falls back to the campaign default.
        """
        base = dict(
            threshold=spec.effective_threshold,
            quantum=spec.quantum,
            seed=spec.seed if spec.seed is not None else cls.seed,
            max_steps=spec.max_steps,
            params=spec.params,
            check=spec.check,
            replay=getattr(spec, "trace", False),
        )
        base.update(overrides)
        return cls(**base)


@dataclass
class CrashOutcome:
    """One sweep point's (or crash chain's) result."""

    event_index: int
    status: str
    detail: str = ""
    injected: int = 0  # fault notes (mutations actually performed)
    findings: int = 0  # recovery-report findings
    #: secondary crash step indices inside recovery, outermost first
    #: (empty for the classic single-crash sweep).
    chain: Tuple[int, ...] = ()
    #: RecoveryReport quarantine detail of the final recovery.
    quarantined_entries: int = 0
    fenced_cores: Tuple[int, ...] = ()
    tainted_addrs: int = 0

    @property
    def failed(self) -> bool:
        return self.status in FAILURE_STATUSES

    @property
    def crashes(self) -> int:
        """Total power failures in this outcome's history (primary +
        crashes injected into recovery)."""
        return 1 + len(self.chain)


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    workload: str
    models: Tuple[str, ...]
    strict: bool
    seed: int
    total_events: int
    outcomes: List[CrashOutcome] = field(default_factory=list)
    minimized: Optional[MinimizedFailure] = None
    #: crash-chain depth the campaign ran at (1 = single-crash sweep).
    depth: int = 1
    #: chains skipped by the per-point chain budget (never silent).
    truncated_chains: int = 0

    @property
    def failures(self) -> List[CrashOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return counts

    def quarantine_stats(self) -> Dict[str, int]:
        """Aggregate RecoveryReport detail across all outcomes: how much
        corruption lenient recovery contained (rather than just that it
        did)."""
        fenced: set = set()
        for o in self.outcomes:
            fenced.update(o.fenced_cores)
        return {
            "quarantined_outcomes": sum(
                1 for o in self.outcomes if o.status == "quarantined"
            ),
            "quarantined_entries": sum(o.quarantined_entries for o in self.outcomes),
            "fenced_cores": len(fenced),
            "tainted_addrs": sum(o.tainted_addrs for o in self.outcomes),
        }

    def to_stats(self) -> Dict[str, object]:
        """JSON-ready artifact for ``--stats-json`` / SweepReport."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "models": list(self.models),
            "strict": self.strict,
            "seed": self.seed,
            "depth": self.depth,
            "total_events": self.total_events,
            "points": len(self.outcomes),
            "counts": self.counts(),
            "quarantine": self.quarantine_stats(),
            "truncated_chains": self.truncated_chains,
            "ok": self.ok,
        }
        if self.failures:
            first = self.failures[0]
            out["first_failure"] = {
                "event_index": first.event_index,
                "chain": list(first.chain),
                "status": first.status,
                "detail": first.detail,
            }
        return out

    def summary(self) -> str:
        lines = [
            f"fault campaign: {self.workload}  "
            f"models={','.join(self.models)}  "
            f"mode={'strict' if self.strict else 'lenient'}  "
            f"seed={self.seed:#x}"
            + (f"  depth={self.depth}" if self.depth > 1 else ""),
            f"  crash points: {len(self.outcomes)} of {self.total_events} "
            "events",
        ]
        for status, n in sorted(self.counts().items()):
            lines.append(f"  {status:>16}: {n}")
        q = self.quarantine_stats()
        if q["quarantined_outcomes"]:
            lines.append(
                f"  quarantine detail: {q['quarantined_entries']} entries, "
                f"{q['fenced_cores']} distinct cores fenced, "
                f"{q['tainted_addrs']} tainted addrs (summed over points)"
            )
        if self.truncated_chains:
            lines.append(
                f"  chain budget hit: {self.truncated_chains} chains "
                "truncated (raise max_chains_per_point to explore them)"
            )
        if self.failures:
            first = self.failures[0]
            where = f"event {first.event_index}"
            if first.chain:
                where += f" chain {list(first.chain)}"
            lines.append(
                f"  FIRST FAILURE at {where}: "
                f"{first.status} — {first.detail}"
            )
            if self.minimized is not None:
                lines.append(
                    f"  minimized to event {self.minimized.event_index} "
                    f"with models {','.join(self.minimized.models)} "
                    f"({self.minimized.attempts} re-runs)"
                )
        else:
            lines.append("  PASS — zero silent mis-recoveries")
        return "\n".join(lines)


def select_crash_points(
    total_events: int, sample: Optional[int], seed: int
) -> List[int]:
    """The sweep's crash indices: exhaustive, or a seeded sample that
    always includes the first and last event (the classic edge cases)."""
    if total_events <= 0:
        return []
    if sample is None or sample >= total_events:
        return list(range(total_events))
    rng = random.Random(seed)
    picked = set(rng.sample(range(total_events), sample))
    picked.add(0)
    picked.add(total_events - 1)
    return sorted(picked)


def _point_rng(seed: int, event_index: int) -> random.Random:
    """Per-point RNG: deterministic in (campaign seed, crash index)."""
    return random.Random((seed << 20) ^ event_index)


def report_fields(report) -> Dict[str, object]:
    """CrashOutcome keyword detail lifted off a RecoveryReport."""
    return dict(
        findings=len(report.findings),
        quarantined_entries=report.quarantined_entries,
        fenced_cores=tuple(report.quarantined_cores),
        tainted_addrs=len(report.tainted_addrs),
    )


def capture_at(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    event_index: int,
    config: CampaignConfig,
    source=None,
):
    """Run under the Capri system to one crash point.

    Returns ``(state, machine, checker)`` — ``state`` is ``None`` when
    the program finished before the crash point; ``checker`` is the
    attached :class:`~repro.check.checker.PersistencyChecker` when
    ``config.check`` is on (already fed the pre-crash event stream and
    crash-state comparison), else ``None``.

    ``source`` swaps the run-to-crash-point engine: anything with a
    ``capture_at(event_index)`` method honouring the same contract —
    in practice a :class:`repro.trace.replay.TraceCampaignSource`
    replaying a captured trace instead of re-interpreting the IR.
    Everything downstream (fault injection, recovery, resume, judging)
    is state-based and identical either way.
    """
    if source is not None:
        return source.capture_at(event_index)
    if not config.check:
        state, machine = run_until_crash_with_machine(
            module,
            spawns,
            CrashPlan(event_index),
            params=config.params,
            threshold=config.threshold,
            quantum=config.quantum,
            max_steps=config.max_steps,
        )
        return state, machine, None

    from repro.arch.crash import run_built_until_crash
    from repro.arch.system import build_system
    from repro.check.checker import PersistencyChecker

    machine, system = build_system(
        module,
        spawns,
        params=config.params,
        threshold=config.threshold,
        quantum=config.quantum,
    )
    checker = PersistencyChecker.attach(system)
    state = run_built_until_crash(
        machine,
        system,
        CrashPlan(event_index),
        max_steps=config.max_steps,
        extra_observer=checker,
    )
    if state is None:
        system.finish()
        checker.finalize(system)
    else:
        # The capture precedes fault injection, so the crash-state
        # check is valid for every model combination.
        checker.check_crash_state(state)
    return state, machine, checker


def judge_recovered(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    golden: GoldenResult,
    event_index: int,
    recovered,
    pre_crash_io: List[tuple],
    notes: Sequence[FaultNote],
    config: CampaignConfig,
    chain: Tuple[int, ...] = (),
) -> CrashOutcome:
    """Resume a recovered state to completion and judge it against the
    differential oracle.  ``chain`` labels the secondary crash steps that
    produced this recovery (multi-crash mode)."""
    report = recovered.report
    try:
        finished = resume_and_finish(
            recovered,
            module,
            spawns,
            quantum=config.quantum,
            max_steps=config.max_steps,
        )
    except (MachineError, RecoveryError) as err:
        if not config.strict and not report.clean:
            return CrashOutcome(
                event_index,
                "quarantined",
                detail=f"resume refused after quarantine — {err}",
                injected=len(notes),
                chain=chain,
                **report_fields(report),
            )
        return CrashOutcome(
            event_index,
            "error",
            detail=f"resume failed — {type(err).__name__}: {err}",
            injected=len(notes),
            chain=chain,
        )

    verdict = differential_check(
        golden, finished, pre_crash_io=pre_crash_io, report=report
    )
    if verdict.equivalent:
        return CrashOutcome(
            event_index,
            "ok",
            injected=len(notes),
            chain=chain,
            **report_fields(report),
        )
    if not config.strict and verdict.contained_by(report):
        return CrashOutcome(
            event_index,
            "quarantined",
            detail=report.summary(),
            injected=len(notes),
            chain=chain,
            **report_fields(report),
        )
    status = "silent-mismatch" if notes else "mismatch"
    return CrashOutcome(
        event_index,
        status,
        detail=(
            f"{len(verdict.mismatched_addrs)} addrs diverge "
            f"(first: {[hex(a) for a in verdict.mismatched_addrs[:4]]}), "
            f"io_ok={verdict.io_ok}, report: {report.summary()}"
        ),
        injected=len(notes),
        chain=chain,
        **report_fields(report),
    )


def run_sweep_point(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    golden: GoldenResult,
    event_index: int,
    models: Sequence[FaultModel],
    config: CampaignConfig,
    source=None,
) -> CrashOutcome:
    """Crash at one event index, inject, recover, resume, judge."""
    state, crashed_machine, checker = capture_at(
        module, spawns, event_index, config, source=source
    )
    if checker is not None and not checker.report.ok:
        return CrashOutcome(
            event_index,
            "model-violation",
            detail=checker.report.summary(),
        )
    if state is None:
        return CrashOutcome(event_index, "finished")
    pre_crash_io = list(crashed_machine.io_log)

    mutated, notes = apply_faults(
        state, models, _point_rng(config.seed, event_index)
    )

    try:
        recovered = recover(
            mutated, module, strict=config.strict, mutations=config.mutations
        )
    except RecoveryError as err:
        if notes:
            return CrashOutcome(
                event_index,
                "detected",
                detail=f"{type(err).__name__}: {err}",
                injected=len(notes),
            )
        return CrashOutcome(
            event_index,
            "error",
            detail=f"clean crash refused recovery — {type(err).__name__}: {err}",
        )

    report = recovered.report
    if checker is not None and not notes:
        # Second oracle: a *clean* recovery must land exactly on the
        # model's committed prefix (faulted recoveries legitimately
        # diverge — the differential oracle judges those).
        checker.check_recovered(recovered)
        if not checker.report.ok:
            return CrashOutcome(
                event_index,
                "model-violation",
                detail=checker.report.summary(),
                **report_fields(report),
            )
    return judge_recovered(
        module,
        spawns,
        golden,
        event_index,
        recovered,
        pre_crash_io,
        notes,
        config,
    )


def run_campaign(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    config: Optional[CampaignConfig] = None,
    name: str = "<module>",
    golden: Optional[GoldenResult] = None,
    source=None,
) -> CampaignResult:
    """Sweep crash points over an already-compiled module.

    ``golden`` lets callers supply a precomputed (e.g. cache-served)
    golden run; by default it is recomputed here.  With
    ``config.replay`` on (and no explicit ``source``/``golden``), the
    module's event stream is captured once into a
    :class:`~repro.trace.record.ExecTrace` and every crash point is
    served by replay — same verdicts, one interpreter pass total.
    """
    config = config or CampaignConfig()
    models = get_models(config.models)
    if config.replay and source is None and golden is None:
        from repro.trace.record import capture_trace
        from repro.trace.replay import TraceCampaignSource, golden_from_trace

        trace = capture_trace(
            module, spawns, quantum=config.quantum, max_steps=config.max_steps
        )
        golden = golden_from_trace(trace)
        source = TraceCampaignSource(trace, config)
    if golden is None:
        golden = golden_run(
            module, spawns, quantum=config.quantum, max_steps=config.max_steps
        )
    points = select_crash_points(
        golden.total_events, config.sample, config.seed
    )
    result = CampaignResult(
        workload=name,
        models=tuple(m.name for m in models),
        strict=config.strict,
        seed=config.seed,
        total_events=golden.total_events,
        depth=max(1, config.depth),
    )
    if config.depth > 1:
        from repro.fault.multicrash import run_multi_crash_point

        for at in points:
            outcomes, truncated = run_multi_crash_point(
                module, spawns, golden, at, models, config, source=source
            )
            result.outcomes.extend(outcomes)
            result.truncated_chains += truncated
    else:
        for at in points:
            result.outcomes.append(
                run_sweep_point(
                    module, spawns, golden, at, models, config, source=source
                )
            )

    if config.minimize and result.failures and not result.failures[0].chain:
        first = result.failures[0]

        def still_fails(index: int, model_names: Tuple[str, ...]) -> bool:
            probe = CampaignConfig(
                threshold=config.threshold,
                quantum=config.quantum,
                seed=config.seed,
                models=model_names,
                strict=config.strict,
                minimize=False,
                max_steps=config.max_steps,
                params=config.params,
                check=config.check,
                mutations=config.mutations,
            )
            outcome = run_sweep_point(
                module,
                spawns,
                golden,
                index,
                get_models(model_names),
                probe,
                source=source,
            )
            return outcome.failed

        result.minimized = minimize_failure(
            still_fails, first.event_index, tuple(result.models)
        )
    return result


def _golden_from_cache(payload) -> GoldenResult:
    return GoldenResult(
        data={int(addr): value for addr, value in payload["data"].items()},
        io_log=[tuple(event) for event in payload["io_log"]],
        total_events=payload["total_events"],
    )


def _golden_to_cache(golden: GoldenResult, deps: Optional[dict] = None) -> dict:
    payload = {
        "kind": "golden",
        "data": {str(addr): value for addr, value in golden.data.items()},
        "io_log": [list(event) for event in golden.io_log],
        "total_events": golden.total_events,
    }
    if deps:
        # Per-subsystem validity token: the cache refuses this entry once
        # any recorded subsystem's hash changes (repro.sweep.cache).
        payload["deps"] = deps
    return payload


def run_workload_campaign(
    workload,
    config: Optional[CampaignConfig] = None,
    scale: float = 0.3,
    cache="default",
) -> CampaignResult:
    """Build a registry workload, compile it with Capri, and sweep it.

    ``workload`` is a registry name or a :class:`repro.api.RunSpec` (in
    which case its workload/scale/threshold/quantum seed the campaign).
    The per-workload *golden run* is memoised in the sweep result cache
    under the spec's fingerprint (``golden`` namespace) — warm fault
    campaigns skip straight to crash injection.  Pass ``cache=None`` to
    disable.

    With ``config.replay`` the captured :class:`ExecTrace` takes the
    golden run's place in the cache (``traces`` namespace, keyed by
    :func:`repro.trace.record.trace_fingerprint`) and every crash point
    replays it — the trace subsumes the golden result.
    """
    from repro.api import RunSpec, resolve_cache
    from repro.compiler import CapriCompiler, OptConfig
    from repro.deps import UsageProbe, deps_token
    from repro.workloads import get_workload

    if isinstance(workload, RunSpec):
        spec = workload
        config = config or CampaignConfig.from_spec(spec)
        workload_name, scale = spec.workload, spec.scale
    else:
        workload_name = workload
        config = config or CampaignConfig()
        spec = RunSpec(
            workload=workload_name,
            scale=scale,
            config=OptConfig.licm(config.threshold),
            quantum=config.quantum,
            max_steps=config.max_steps,
        )
    # Record which subsystems the build+compile actually exercise; the
    # cached golden result / trace stores this set (plus its own layer)
    # so a later edit to an unrelated subsystem leaves it warm.
    with UsageProbe() as probe:
        module, spawns = get_workload(workload_name).build(scale)
        compiled = (
            CapriCompiler(OptConfig.licm(config.threshold)).compile(module).module
        )
    base_deps = set(probe.subsystems())

    golden: Optional[GoldenResult] = None
    source = None
    store = resolve_cache(cache)
    if config.replay:
        from repro.api import load_trace, store_trace, trace_fingerprint
        from repro.trace.record import capture_trace
        from repro.trace.replay import TraceCampaignSource, golden_from_trace

        # Key the trace on what is actually captured here: the workload
        # compiled with licm(threshold) at this scale/quantum.
        trace_spec = RunSpec(
            workload=workload_name,
            scale=scale,
            config=OptConfig.licm(config.threshold),
            quantum=config.quantum,
            max_steps=config.max_steps,
        )
        tfp = trace_fingerprint(trace_spec)
        trace = load_trace(store, tfp)
        if trace is None:
            trace = capture_trace(
                compiled,
                spawns,
                quantum=config.quantum,
                max_steps=config.max_steps,
                meta={
                    "workload": workload_name,
                    "scale": float(scale),
                    "quantum": config.quantum,
                    "fingerprint": tfp,
                },
            )
            trace.meta["deps"] = sorted(base_deps | {"trace"})
            store_trace(store, tfp, trace)
        golden = golden_from_trace(trace)
        source = TraceCampaignSource(trace, config)
    else:
        fingerprint = spec.fingerprint()
        if store is not None:
            payload = store.get(fingerprint, kind="golden")
            if payload is not None and "total_events" in payload:
                golden = _golden_from_cache(payload)
        if golden is None:
            golden = golden_run(
                compiled, spawns, quantum=config.quantum, max_steps=config.max_steps
            )
            if store is not None:
                store.put(
                    fingerprint,
                    _golden_to_cache(
                        golden, deps=deps_token(base_deps | {"fault"})
                    ),
                    kind="golden",
                )
    return run_campaign(
        compiled, spawns, config, name=workload_name, golden=golden, source=source
    )
