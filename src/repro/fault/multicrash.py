"""Nested-failure sweeps: crashes injected *into recovery itself*.

The single-crash campaign (:mod:`repro.fault.campaign`) models one power
failure per execution.  Real outages cluster — the repeated-failure
regime of Ben-David et al. and Marathe et al. — so this module sweeps
*crash chains*: a primary crash during execution, then a secondary crash
at a chosen recovery step, then (optionally) another crash during the
re-entered recovery, up to ``CampaignConfig.depth`` total failures.

Per primary crash point:

1. capture the persistent domain (shared with the single-crash path),
   apply the configured fault models,
2. run one *uninterrupted* reference recovery — its step count bounds
   the secondary sweep and its :class:`RecoveredState` is the
   idempotence oracle's ground truth,
3. for every secondary step index (exhaustive for short recoveries,
   seeded sample otherwise): clone the domain, run
   :func:`~repro.arch.recovery.run_recovery` under a
   :class:`~repro.arch.crash.CrashInjector`, and from the crashed
   domain either recurse (deeper chains) or finish recovery re-entrantly,
4. judge every leaf three ways:

   * **idempotence oracle** — the re-entered recovery must be
     bit-identical to the uninterrupted reference (image, shadow words,
     resume points, quarantine sets, and step-derived stats; the
     image-dependent ``wpq_replayed`` counter is excluded).  Divergence
     is the new failure status ``divergent-recovery``.
   * **online persistency checker** — clean chains must still land on
     the committed prefix (``config.check``).
   * **differential oracle** — resume to completion and compare against
     the golden run, exactly as the single-crash path does.

Chains are budgeted by ``CampaignConfig.max_chains_per_point``; skipped
chains are *counted* (``CampaignResult.truncated_chains``), never
silently dropped.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arch.crash import CrashInjector, CrashPlan, CrashState, PowerFailure
from repro.arch.recovery import RecoveredState, RecoveryError, run_recovery
from repro.fault.campaign import (
    CampaignConfig,
    CrashOutcome,
    _point_rng,
    capture_at,
    judge_recovered,
    report_fields,
    select_crash_points,
)
from repro.fault.models import FaultModel, apply_faults
from repro.fault.oracle import GoldenResult
from repro.ir.module import Module

#: Recovery stats compared by the idempotence oracle.  ``wpq_replayed``
#: is deliberately absent: it counts only journal records that *changed*
#: the image, so a re-entry (whose image already holds the replayed
#: values) legitimately reports fewer.
_STABLE_STATS = (
    "regions_redone",
    "regions_rolled_back",
    "redo_words",
    "undo_words",
    "recovery_blocks_run",
)


def diff_recoveries(
    ref: RecoveredState, got: RecoveredState
) -> Optional[str]:
    """``None`` when ``got`` converged to the reference recovery
    bit-identically; else a description of the first divergence."""
    if ref.nvm_image != got.nvm_image:
        keys = sorted(
            k
            for k in set(ref.nvm_image) | set(got.nvm_image)
            if ref.nvm_image.get(k) != got.nvm_image.get(k)
        )
        return (
            f"nvm image diverges at {len(keys)} addrs "
            f"(first: {[hex(a) for a in keys[:4]]})"
        )
    if ref.ckpt_shadow != got.ckpt_shadow:
        return "checkpoint-array shadow words diverge"
    if ref.resumes != got.resumes:
        return "resume points diverge (continuation/registers lost)"
    if list(ref.report.quarantined_cores) != list(got.report.quarantined_cores):
        return (
            f"fenced-core sets diverge: {ref.report.quarantined_cores} "
            f"!= {got.report.quarantined_cores}"
        )
    if ref.report.tainted_addrs != got.report.tainted_addrs:
        return "tainted address sets diverge"
    for name in _STABLE_STATS:
        if getattr(ref, name) != getattr(got, name):
            return (
                f"recovery stat {name} diverges: {getattr(ref, name)} != "
                f"{getattr(got, name)} (steps lost or duplicated)"
            )
    return None


def _chain_seed(seed: int, event_index: int, prefix: Tuple[int, ...]) -> int:
    """Deterministic per-(point, chain-prefix) sampling seed."""
    h = (seed << 16) ^ event_index
    for j in prefix:
        h = ((h * 1000003) & 0xFFFFFFFFFFFF) ^ (j + 1)
    return h


def run_multi_crash_point(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    golden: GoldenResult,
    event_index: int,
    models: Sequence[FaultModel],
    config: CampaignConfig,
    source=None,
) -> Tuple[List[CrashOutcome], int]:
    """Sweep crash chains rooted at one primary crash point.

    Returns ``(outcomes, truncated_chains)``.  The first outcome is the
    plain depth-1 leaf (no secondary crash) — depth > 1 strictly extends
    the single-crash sweep, never replaces it.

    Only the *primary* capture consults ``source`` (trace replay): every
    secondary crash operates on :class:`CrashState` clones inside
    recovery, which never touches the interpreter anyway.
    """
    state, machine, checker = capture_at(
        module, spawns, event_index, config, source=source
    )
    if checker is not None and not checker.report.ok:
        return (
            [
                CrashOutcome(
                    event_index,
                    "model-violation",
                    detail=checker.report.summary(),
                )
            ],
            0,
        )
    if state is None:
        return [CrashOutcome(event_index, "finished")], 0
    pre_crash_io = list(machine.io_log)

    mutated, notes = apply_faults(
        state, models, _point_rng(config.seed, event_index)
    )

    try:
        ref = run_recovery(
            mutated.clone(),
            module,
            strict=config.strict,
            mutations=config.mutations,
        )
    except RecoveryError as err:
        if notes:
            return (
                [
                    CrashOutcome(
                        event_index,
                        "detected",
                        detail=f"{type(err).__name__}: {err}",
                        injected=len(notes),
                    )
                ],
                0,
            )
        return (
            [
                CrashOutcome(
                    event_index,
                    "error",
                    detail=(
                        "clean crash refused recovery — "
                        f"{type(err).__name__}: {err}"
                    ),
                )
            ],
            0,
        )

    outcomes: List[CrashOutcome] = []
    budget = [max(1, config.max_chains_per_point)]
    truncated = [0]

    def checked_judge(final: RecoveredState, chain: Tuple[int, ...]) -> CrashOutcome:
        if checker is not None and not notes:
            # The checker accumulates violations across chains; only the
            # delta belongs to this one.
            before = len(checker.report.violations)
            checker.check_recovered(final)
            fresh = checker.report.violations[before:]
            if fresh:
                return CrashOutcome(
                    event_index,
                    "model-violation",
                    detail=(
                        f"{len(fresh)} model violations on re-entered "
                        f"recovery (first: {fresh[0]})"
                    ),
                    chain=chain,
                    **report_fields(final.report),
                )
        return judge_recovered(
            module,
            spawns,
            golden,
            event_index,
            final,
            pre_crash_io,
            notes,
            config,
            chain=chain,
        )

    def sweep(domain: CrashState, prefix: Tuple[int, ...]) -> None:
        """Explore secondary crashes into the recovery of ``domain``."""
        try:
            probe = run_recovery(
                domain.clone(),
                module,
                strict=config.strict,
                mutations=config.mutations,
            )
        except RecoveryError as err:
            # The reference recovery succeeded but this re-entry refuses:
            # the crash prefix destroyed recovery's inputs — exactly the
            # non-idempotence the mode exists to expose.
            outcomes.append(
                CrashOutcome(
                    event_index,
                    "divergent-recovery",
                    detail=(
                        f"re-entry refused after chain {list(prefix)} — "
                        f"{type(err).__name__}: {err}"
                    ),
                    injected=len(notes),
                    chain=prefix,
                )
            )
            return
        picks = select_crash_points(
            probe.steps,
            config.secondary_sample,
            _chain_seed(config.seed, event_index, prefix),
        )
        for idx, j in enumerate(picks):
            if budget[0] <= 0:
                truncated[0] += len(picks) - idx
                return
            budget[0] -= 1
            dom = domain.clone()
            injector = CrashInjector(
                None, CrashPlan(j), capture=lambda d=dom: d
            )
            try:
                run_recovery(
                    dom,
                    module,
                    strict=config.strict,
                    mutations=config.mutations,
                    observer=injector,
                )
                continue  # recovery finished before step j: no crash
            except PowerFailure as pf:
                crashed = pf.state
            chain = prefix + (j,)
            if len(chain) < config.depth - 1:
                sweep(crashed, chain)
            try:
                final = run_recovery(
                    crashed.clone(),
                    module,
                    strict=config.strict,
                    mutations=config.mutations,
                )
            except RecoveryError as err:
                outcomes.append(
                    CrashOutcome(
                        event_index,
                        "divergent-recovery",
                        detail=(
                            f"re-entry refused after chain {list(chain)} — "
                            f"{type(err).__name__}: {err}"
                        ),
                        injected=len(notes),
                        chain=chain,
                    )
                )
                continue
            divergence = diff_recoveries(ref, final)
            if divergence is not None:
                outcomes.append(
                    CrashOutcome(
                        event_index,
                        "divergent-recovery",
                        detail=divergence,
                        injected=len(notes),
                        chain=chain,
                        **report_fields(final.report),
                    )
                )
                continue
            outcomes.append(checked_judge(final, chain))

    # The depth-1 leaf first (identical to the single-crash sweep's
    # judgement of this point), then the chains.
    outcomes.append(checked_judge(ref, ()))
    sweep(mutated, ())
    return outcomes, truncated[0]
