"""Adversarial fault models over a captured crash snapshot.

Each model is a composable transformer: given a :class:`CrashState` (a
*clone* — the campaign never mutates the original capture) and a seeded
``random.Random``, it corrupts some durable structure the way a real part
might — a torn multi-word entry write, a bit flip behind the checksum's
back, a write-pending-queue drain cut mid-way — and returns
:class:`FaultNote` records describing exactly what it touched, so the
oracle can correlate detected findings with injected damage.

The models deliberately *bypass* the integrity-refresh paths the
legitimate hardware mutations use (``ProxyEntry.refresh_checksum``,
``NVMain.ckpt_write``): the stale checksum IS the fault signature
recovery must catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.crash import CrashState
from repro.arch.nvm import WpqRecord
from repro.arch.proxy import ProxyEntry
from repro.ir.module import is_ckpt_addr

_GARBLE = 0xDEAD_BEEF_0BAD_F00D


@dataclass
class FaultNote:
    """One concrete mutation a model performed."""

    model: str
    detail: str
    core: Optional[int] = None
    addr: Optional[int] = None


class FaultModel:
    """Base transformer.  Subclasses mutate ``state`` in place and report
    what they did; an empty note list means the model found no applicable
    target in this snapshot (e.g. no surviving data entries)."""

    name = "base"

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<fault:{self.name}>"


def _data_entries(state: CrashState) -> List[Tuple[int, ProxyEntry]]:
    return [
        (core, e)
        for core, entries in enumerate(state.core_entries)
        for e in entries
        if not e.is_boundary
    ]


def _boundary_entries(state: CrashState) -> List[Tuple[int, ProxyEntry]]:
    return [
        (core, e)
        for core, entries in enumerate(state.core_entries)
        for e in entries
        if e.is_boundary
    ]


class CleanPowerLoss(FaultModel):
    """The identity model: a clean outage, nothing but volatility lost."""

    name = "clean"

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        return []


class TornEntryWrite(FaultModel):
    """A torn multi-word proxy-entry write: the entry's undo and redo
    words are garbled mid-write, leaving its checksum stale."""

    name = "torn-entry"

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        cands = _data_entries(state)
        if not cands:
            return []
        core, entry = rng.choice(cands)
        entry.undo ^= _GARBLE
        entry.redo ^= _GARBLE >> 8
        return [
            FaultNote(
                self.name,
                f"tore data entry (seq {entry.region_seq}) at "
                f"{entry.addr:#x} on core {core}",
                core=core,
                addr=entry.addr,
            )
        ]


class TornBoundaryWrite(FaultModel):
    """A torn boundary-entry write: the delimiter's payload (a staged
    register checkpoint, or its region id) is garbled mid-write."""

    name = "torn-boundary"

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        cands = _boundary_entries(state)
        if not cands:
            return []
        core, entry = rng.choice(cands)
        if entry.ckpts:
            slot = rng.choice(sorted(entry.ckpts))
            entry.ckpts[slot] ^= _GARBLE
            what = f"garbled staged checkpoint slot {slot:#x}"
        else:
            entry.region_id ^= 0x55
            what = "garbled region id"
        return [
            FaultNote(
                self.name,
                f"tore boundary entry (seq {entry.region_seq}, {what}) "
                f"on core {core}",
                core=core,
            )
        ]


class DroppedValidBits(FaultModel):
    """Redo valid-bits flip without the entry's checksum being refreshed
    — unlike the legitimate Section 5.3.2 scan, which read-modify-writes
    the whole entry."""

    name = "dropped-valid-bits"

    def __init__(self, k: int = 2) -> None:
        self.k = k

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        cands = _data_entries(state)
        if not cands:
            return []
        rng.shuffle(cands)
        notes: List[FaultNote] = []
        for core, entry in cands[: self.k]:
            entry.redo_valid = not entry.redo_valid
            notes.append(
                FaultNote(
                    self.name,
                    f"flipped redo valid-bit of entry at {entry.addr:#x} "
                    f"on core {core}",
                    core=core,
                    addr=entry.addr,
                )
            )
        return notes


class PartiallyDrainedWpq(FaultModel):
    """The write-pending queue's drain to the array was cut mid-way: the
    last ``k`` journaled writes are reverted in the array, while the
    battery-backed queue records themselves survive.  Recovery's WPQ
    replay must heal this transparently (the ADR contract)."""

    name = "partial-wpq"

    def __init__(self, k: int = 4) -> None:
        self.k = k

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        if not state.wpq:
            return []
        notes: List[FaultNote] = []
        for rec in reversed(state.wpq[-self.k :]):
            if rec.prev is None:
                state.nvm_image.pop(rec.addr, None)
            else:
                state.nvm_image[rec.addr] = rec.prev
            notes.append(
                FaultNote(
                    self.name,
                    f"reverted array word {rec.addr:#x} to its pre-write "
                    "value (journal record survives)",
                    addr=rec.addr,
                )
            )
        return notes


class TornWpqRecord(FaultModel):
    """A WPQ journal record is itself torn: its value word is garbled
    (checksum stale) *and* the array write it described never landed."""

    name = "torn-wpq"

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        if not state.wpq:
            return []
        i = rng.randrange(len(state.wpq))
        rec = state.wpq[i]
        state.wpq[i] = WpqRecord(
            rec.addr, rec.value ^ _GARBLE, rec.prev, rec.checksum
        )
        if rec.prev is None:
            state.nvm_image.pop(rec.addr, None)
        else:
            state.nvm_image[rec.addr] = rec.prev
        return [
            FaultNote(
                self.name,
                f"tore WPQ record for {rec.addr:#x} and reverted the array",
                addr=rec.addr,
            )
        ]


class CorruptCheckpointSlot(FaultModel):
    """A register-checkpoint array cell is corrupted in place — a bit
    flip behind its shadow integrity word."""

    name = "corrupt-ckpt"

    def apply(self, state: CrashState, rng: random.Random) -> List[FaultNote]:
        journaled = {rec.addr for rec in state.wpq}
        slots = sorted(
            a
            for a in state.nvm_image
            if is_ckpt_addr(a) and a not in journaled
        )
        if not slots:
            # Every slot is still journaled (replay would heal the flip);
            # corrupt one anyway *and* drop its journal record, modelling
            # corruption that outlived the queue.
            slots = sorted(a for a in state.nvm_image if is_ckpt_addr(a))
            if not slots:
                return []
            slot = rng.choice(slots)
            state.wpq = [rec for rec in state.wpq if rec.addr != slot]
        else:
            slot = rng.choice(slots)
        state.nvm_image[slot] ^= _GARBLE
        return [
            FaultNote(
                self.name,
                f"flipped bits in checkpoint slot {slot:#x}",
                addr=slot,
            )
        ]


_FACTORIES: Dict[str, Callable[[], FaultModel]] = {
    CleanPowerLoss.name: CleanPowerLoss,
    TornEntryWrite.name: TornEntryWrite,
    TornBoundaryWrite.name: TornBoundaryWrite,
    DroppedValidBits.name: DroppedValidBits,
    PartiallyDrainedWpq.name: PartiallyDrainedWpq,
    TornWpqRecord.name: TornWpqRecord,
    CorruptCheckpointSlot.name: CorruptCheckpointSlot,
}


def available_models() -> List[str]:
    """All registered fault-model names (``clean`` first)."""
    names = sorted(_FACTORIES)
    names.remove(CleanPowerLoss.name)
    return [CleanPowerLoss.name] + names


def get_models(names: Sequence[str]) -> List[FaultModel]:
    """Instantiate models by name (``all`` expands to every model)."""
    expanded: List[str] = []
    for name in names:
        if name == "all":
            expanded.extend(available_models())
        else:
            expanded.append(name)
    models = []
    for name in expanded:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise KeyError(
                f"unknown fault model {name!r}; known: {available_models()}"
            )
        models.append(factory())
    return models


def apply_faults(
    state: CrashState,
    models: Sequence[FaultModel],
    rng: random.Random,
) -> Tuple[CrashState, List[FaultNote]]:
    """Clone ``state`` and run every model over the clone in order."""
    mutated = state.clone()
    notes: List[FaultNote] = []
    for model in models:
        notes.extend(model.apply(mutated, rng))
    return mutated, notes
