"""The differential recovery oracle.

A crash-free *golden run* fixes the workload's observable behaviour: the
final data-segment memory image and the per-core I/O trace.  A
crashed-recovered-resumed execution is **observationally equivalent**
when

* its final memory image matches the golden image *modulo the log area*
  (the register-checkpoint storage — recovery bookkeeping, not program
  state), and
* per core, the golden I/O sequence is a subsequence of the observed
  pre-crash + post-resume sequence: the Section 3.3 persist barrier
  guarantees at-least-once delivery, so replayed duplicates are legal
  but lost or reordered effects are not.

:func:`minimize_failure` shrinks a failing (crash index, fault set) to a
smaller reproducer by greedily dropping fault models and bisecting the
event index downward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.recovery import RecoveryReport
from repro.ir.module import Module, is_ckpt_addr
from repro.isa.machine import Machine
from repro.isa.trace import TickCountingObserver

IoEvent = Tuple[int, int, int]  # (core, port, value)

#: Counts observer events exactly as the crash injector does — one tick
#: per delegated callback — so a golden run yields the campaign's
#: crash-point universe.  The implementation lives with the other shared
#: observers in :mod:`repro.isa.trace`; this name is kept for callers.
EventCounter = TickCountingObserver


def data_image(machine: Machine) -> Dict[int, int]:
    """Final data-segment memory, log area (checkpoint storage) masked."""
    return {
        addr: value
        for addr, value in machine.memory.items()
        if not is_ckpt_addr(addr)
    }


@dataclass
class GoldenResult:
    """What a crash-free execution observably produced."""

    data: Dict[int, int]
    io_log: List[IoEvent]
    total_events: int


def golden_run(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    quantum: int = 32,
    max_steps: int = 50_000_000,
) -> GoldenResult:
    """Run the workload crash-free on the functional machine.

    The machine is architecturally exact — the Capri system never changes
    what programs compute — so the functional run is the reference, and
    its event count (the observer callbacks the crash injector would have
    delegated) is the sweep's crash-point universe.
    """
    from repro.deps import touch

    touch("fault")  # usage-probe dependency recording
    machine = Machine(module, quantum=quantum)
    for func_name, args in spawns:
        machine.spawn(func_name, args)
    counter = EventCounter()
    machine.run(counter, max_steps=max_steps)
    return GoldenResult(
        data=data_image(machine),
        io_log=list(machine.io_log),
        total_events=counter.events,
    )


def _is_subsequence(needle: Sequence, haystack: Sequence) -> bool:
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


@dataclass
class OracleVerdict:
    """Outcome of one differential comparison."""

    equivalent: bool
    mismatched_addrs: List[int] = field(default_factory=list)
    io_ok: bool = True

    def contained_by(self, report: Optional[RecoveryReport]) -> bool:
        """Is every divergence accounted for by the recovery report?

        A quarantined core makes full-run equivalence unattainable by
        design (the core was fenced off rather than allowed to compute
        garbage) — that counts as contained as long as the report says
        so.  Otherwise every mismatching address must be tainted.
        """
        if self.equivalent:
            return True
        if report is None or report.clean:
            return False
        if report.quarantined_cores:
            return True
        return bool(self.mismatched_addrs) and all(
            addr in report.tainted_addrs for addr in self.mismatched_addrs
        ) and self.io_ok


def differential_check(
    golden: GoldenResult,
    finished: Machine,
    pre_crash_io: Sequence[IoEvent] = (),
    report: Optional[RecoveryReport] = None,
) -> OracleVerdict:
    """Compare a recovered-and-resumed execution against the golden run."""
    final = data_image(finished)
    addrs = set(golden.data) | set(final)
    mismatched = sorted(
        addr
        for addr in addrs
        if golden.data.get(addr, 0) != final.get(addr, 0)
    )

    observed = list(pre_crash_io) + list(finished.io_log)
    fenced = set(report.quarantined_cores) if report is not None else set()
    io_ok = True
    cores = {c for (c, _, _) in golden.io_log}
    for core in cores:
        if core in fenced:
            continue
        want = [(p, v) for (c, p, v) in golden.io_log if c == core]
        got = [(p, v) for (c, p, v) in observed if c == core]
        if not _is_subsequence(want, got):
            io_ok = False
            break

    return OracleVerdict(
        equivalent=not mismatched and io_ok,
        mismatched_addrs=mismatched,
        io_ok=io_ok,
    )


@dataclass
class MinimizedFailure:
    """Smallest reproducer found for a failing sweep point."""

    event_index: int
    models: Tuple[str, ...]
    attempts: int


def minimize_failure(
    still_fails: Callable[[int, Tuple[str, ...]], bool],
    event_index: int,
    models: Tuple[str, ...],
    max_attempts: int = 24,
) -> MinimizedFailure:
    """Greedy shrink of a failing (crash index, fault combination).

    ``still_fails(index, models)`` re-runs one sweep point and reports
    whether the failure persists.  First drop fault models one at a time
    (to a fixpoint), then bisect the event index downward.  Best-effort:
    failures need not be monotone in the index, so the result is a local
    minimum, bounded by ``max_attempts`` re-runs.
    """
    attempts = 0

    # 1. Shrink the fault combination.
    changed = True
    while changed and len(models) > 1 and attempts < max_attempts:
        changed = False
        for i in range(len(models)):
            candidate = models[:i] + models[i + 1 :]
            attempts += 1
            if still_fails(event_index, candidate):
                models = candidate
                changed = True
                break
            if attempts >= max_attempts:
                break

    # 2. Bisect the event index downward (assumes rough monotonicity).
    lo, hi = 0, event_index
    while lo < hi and attempts < max_attempts:
        mid = (lo + hi) // 2
        attempts += 1
        if still_fails(mid, models):
            hi = mid
        else:
            lo = mid + 1
    if hi < event_index:
        attempts += 1
        if not still_fails(hi, models):
            hi = event_index  # non-monotone neighbourhood: keep original
    return MinimizedFailure(event_index=hi, models=models, attempts=attempts)
