"""Crash-consistency fault-injection campaigns.

Turns crash testing from anecdote into campaign:

* :mod:`repro.fault.models` — composable adversarial transformers over a
  captured :class:`~repro.arch.crash.CrashState`: torn proxy-entry
  writes, dropped redo valid-bits, a partially drained write-pending
  queue, corrupted register-checkpoint slots,
* :mod:`repro.fault.oracle` — the differential oracle: a crash-free
  golden run, observational-equivalence checks (NVM image modulo the log
  area, per-core at-least-once I/O), and failure minimization,
* :mod:`repro.fault.campaign` — the runner: enumerate every observer
  event of a workload (or a seeded sample), crash at each, inject
  faults, recover, resume, and judge the outcome,
* :mod:`repro.fault.multicrash` — the nested-failure mode: crash chains
  injected into recovery itself (``CampaignConfig.depth`` > 1), judged
  against the recovery-idempotence oracle on top of the usual two.

Command line::

    python -m repro.fault --workload genome --scale 0.1 --sample 50
    python -m repro.fault --workload deep-call --multi-crash --depth 2
"""

from repro.fault.campaign import (
    CampaignConfig,
    CampaignResult,
    CrashOutcome,
    run_campaign,
    run_workload_campaign,
)
from repro.fault.multicrash import diff_recoveries, run_multi_crash_point
from repro.fault.models import (
    FaultModel,
    FaultNote,
    available_models,
    get_models,
)
from repro.fault.oracle import (
    GoldenResult,
    OracleVerdict,
    differential_check,
    golden_run,
    minimize_failure,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CrashOutcome",
    "run_campaign",
    "run_workload_campaign",
    "diff_recoveries",
    "run_multi_crash_point",
    "FaultModel",
    "FaultNote",
    "available_models",
    "get_models",
    "GoldenResult",
    "OracleVerdict",
    "differential_check",
    "golden_run",
    "minimize_failure",
]
