"""Batched trace replay: the arch/check layers without the interpreter.

A captured :class:`~repro.trace.record.ExecTrace` fixes the entire
observer event stream, so the timing/persistence simulation
(:class:`~repro.arch.system.CapriSystem`), the online persistency checker,
and the crash injector can all be driven straight from the columns —
no IR re-interpretation, no functional machine.  Three consumers:

:class:`TraceReplayer`
    One crash-free replay producing :class:`SystemMetrics` bit-identical
    to the interpreted path (the equivalence the test suite pins).

:func:`replay_until_crash`
    The replay twin of :func:`repro.arch.crash.run_until_crash` — one
    crash point, one fresh system.

:class:`TraceCursor` / :class:`TraceCampaignSource`
    The fault-campaign workhorse.  Campaign crash points ascend
    (:func:`~repro.fault.campaign.select_crash_points` sorts), so *one*
    replay system advanced monotonically serves every point: total arch
    work across an exhaustive sweep is O(events) instead of
    O(events²/2) — this, not per-event dispatch, is where the ≥5×
    campaign speedup lives (docs/PERFORMANCE.md).  Rewinds (the failure
    minimizer bisects downward) rebuild from event 0.

Verdict identity with the interpreted path rests on three facts (argued
in docs/INTERNALS.md): the functional machine is observer-independent,
so the recorded stream *is* the stream any interpreted crash run would
deliver; :func:`~repro.arch.crash.capture_crash_state` deep-copies and
the checker's whole-state checks are read-only, so capturing at point k
does not perturb the cursor's march to k+1; and the checker's streaming
violations are monotone in the prefix, so the per-point report is the
stream-prefix violations plus this point's own whole-state findings —
exactly what a fresh checker at that point would hold.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple

from repro.arch.crash import (
    CrashInjector,
    CrashPlan,
    CrashState,
    PowerFailure,
    capture_crash_state,
)
from repro.arch.params import SimParams
from repro.arch.system import CapriSystem, SystemMetrics
from repro.check.violations import CheckReport, Violation
from repro.fault.oracle import GoldenResult
from repro.isa.trace import Observer, TeeObserver
from repro.trace.record import ExecTrace


def build_replay_system(
    trace: ExecTrace,
    params: Optional[SimParams] = None,
    threshold: int = 256,
    persistence: bool = True,
    mutations=None,
) -> CapriSystem:
    """A machineless :class:`CapriSystem` ready to consume ``trace``.

    Mirrors :func:`repro.arch.system.build_system` minus the machine:
    same core count, same durable-image seeding (the trace carries the
    module's initial data).  Loads read their architectural values from
    the trace via :meth:`ExecTrace.deliver`'s ``system`` staging.
    """
    from repro.deps import touch

    touch("arch", "trace")  # usage-probe dependency recording
    params = params or SimParams.scaled()
    system = CapriSystem(
        params,
        num_cores=trace.num_cores,
        threshold=threshold,
        persistence=persistence,
        mutations=mutations,
    )
    system.nvm.image.update(trace.initial_data)
    return system


def golden_from_trace(trace: ExecTrace) -> GoldenResult:
    """The differential oracle's golden result, straight off the trace.

    Exactly what :func:`repro.fault.oracle.golden_run` would recompute:
    the trace records the final data image with the same checkpoint-log
    masking, the full I/O log, and one event per observer callback.
    """
    return GoldenResult(
        data=dict(trace.final_data),
        io_log=list(trace.io_log),
        total_events=len(trace),
    )


class TraceReplayer:
    """One crash-free replay of a captured trace.

    Construction wires the system (and, with ``check=True``, the
    persistency checker teed in front of it, exactly as
    :func:`repro.arch.system.run_workload` does); :meth:`run` delivers
    the columns and finalises.
    """

    def __init__(
        self,
        trace: ExecTrace,
        params: Optional[SimParams] = None,
        threshold: int = 256,
        persistence: bool = True,
        check: bool = False,
        mutations=None,
    ) -> None:
        self.trace = trace
        self.system = build_replay_system(
            trace,
            params=params,
            threshold=threshold,
            persistence=persistence,
            mutations=mutations,
        )
        self.checker = None
        self.target: Observer = self.system
        if check:
            from repro.check.checker import PersistencyChecker

            self.checker = PersistencyChecker.attach(self.system)
            self.target = TeeObserver(self.checker, self.system)
        self.metrics: Optional[SystemMetrics] = None

    def run(self) -> SystemMetrics:
        self.trace.deliver(self.target, system=self.system)
        self.metrics = self.system.finish()
        if self.checker is not None:
            self.checker.finalize(self.system)
        return self.metrics


def replay_metrics(
    trace: ExecTrace,
    params: Optional[SimParams] = None,
    threshold: int = 256,
    persistence: bool = True,
    check: bool = False,
) -> SystemMetrics:
    """Crash-free replay in one call; with ``check=True`` a model
    violation raises :class:`~repro.check.PersistencyViolationError`,
    matching ``run_workload(..., check=True)``."""
    replayer = TraceReplayer(
        trace,
        params=params,
        threshold=threshold,
        persistence=persistence,
        check=check,
    )
    metrics = replayer.run()
    if replayer.checker is not None:
        replayer.checker.report.raise_if_violated()
    return metrics


def replay_until_crash(
    trace: ExecTrace,
    plan: CrashPlan,
    params: Optional[SimParams] = None,
    threshold: int = 256,
    extra_observer: Optional[Observer] = None,
) -> Optional[CrashState]:
    """Replay twin of :func:`repro.arch.crash.run_until_crash`.

    Fresh system, one crash point; ``extra_observer`` (the checker) is
    teed before the system but behind the injector.  Returns ``None``
    when the trace ends before the crash point.
    """
    system = build_replay_system(trace, params=params, threshold=threshold)
    target: Observer = system
    if extra_observer is not None:
        target = TeeObserver(extra_observer, system)
    injector = CrashInjector(system, plan, target=target)
    try:
        trace.deliver(injector, system=system)
    except PowerFailure as pf:
        return pf.state
    return None


class _ReplayedMachine:
    """The slice of :class:`~repro.isa.machine.Machine` a campaign reads
    after the run to the crash point: the pre-crash I/O log."""

    __slots__ = ("io_log",)

    def __init__(self, io_log: List[tuple]) -> None:
        self.io_log = io_log


class _PointChecker:
    """Per-crash-point view of a cursor's long-lived checker.

    Presents the interpreted ``capture_at`` contract — a ``.report``
    (real :class:`CheckReport`: ``ok``/``summary()``/sliceable
    ``violations``) and a ``check_recovered`` hook — while the violations
    actually accumulate on the cursor's single checker.  The report holds
    the stream-prefix violations (what a fresh checker would have flagged
    on the way to this point) plus this point's own whole-state findings;
    later whole-state checks route their *deltas* here.
    """

    def __init__(
        self,
        cursor: "TraceCursor",
        point_violations: List[Violation],
        point_suppressed: int,
    ) -> None:
        self._cursor = cursor
        self.report = CheckReport()
        self.report.violations.extend(cursor._stream_violations)
        self.report.violations.extend(point_violations)
        self.report.suppressed = cursor._stream_suppressed + point_suppressed
        self.report.events = cursor.pos
        if cursor.checker is not None:
            self.report.checks = cursor.checker.model.checks

    def check_recovered(self, recovered) -> None:
        self._cursor.checker.check_recovered(recovered)
        fresh, suppressed = self._cursor._drain_new()
        self.report.violations.extend(fresh)
        self.report.suppressed += suppressed
        self.report.checks = self._cursor.checker.model.checks


class TraceCursor:
    """Single-pass replay over ascending crash points.

    ``capture_at(k)`` advances the live system from its current position
    to event ``k`` and snapshots the persistent domain — so an exhaustive
    sweep costs one system-lifetime of arch events total, not one per
    point.  Requests behind the cursor (or after a terminal
    :meth:`CapriSystem.finish`, which drains destructively) rebuild from
    event 0; :attr:`rebuilds` counts them.
    """

    def __init__(
        self,
        trace: ExecTrace,
        params: Optional[SimParams] = None,
        threshold: int = 256,
        check: bool = False,
        mutations=None,
    ) -> None:
        self.trace = trace
        self.params = params
        self.threshold = threshold
        self.check = check
        #: planted protocol bugs for the replayed *system* (the litmus
        #: matrix's teeth); campaigns keep ``config.mutations`` scoped to
        #: recovery, so this is a separate, explicit knob.
        self.mutations = mutations
        self.rebuilds = -1  # the constructor's own _reset is not a rebuild
        self._io_positions = trace.io_positions()
        self._reset()

    # -- internals -----------------------------------------------------------

    def _reset(self) -> None:
        self.system = build_replay_system(
            self.trace,
            params=self.params,
            threshold=self.threshold,
            mutations=self.mutations,
        )
        self.checker = None
        self.target: Observer = self.system
        if self.check:
            from repro.check.checker import PersistencyChecker

            self.checker = PersistencyChecker.attach(self.system)
            self.target = TeeObserver(self.checker, self.system)
        self.pos = 0
        self.rebuilds += 1
        self._finished = False
        #: violations flagged while *streaming* events — monotone in the
        #: prefix, hence shared by every later point's report.
        self._stream_violations: List[Violation] = []
        self._stream_suppressed = 0
        self._seen_violations = 0
        self._seen_suppressed = 0

    def _drain_new(self) -> Tuple[List[Violation], int]:
        """Violations (and suppressed count) the checker added since the
        last drain."""
        if self.checker is None:
            return [], 0
        report = self.checker.report
        fresh = list(report.violations[self._seen_violations:])
        self._seen_violations = len(report.violations)
        suppressed = report.suppressed - self._seen_suppressed
        self._seen_suppressed = report.suppressed
        return fresh, suppressed

    def _advance_to(self, k: int) -> None:
        if k < self.pos or self._finished:
            self._reset()
        if k > self.pos:
            self.trace.deliver(
                self.target, start=self.pos, stop=k, system=self.system
            )
            self.pos = k
            fresh, suppressed = self._drain_new()
            self._stream_violations.extend(fresh)
            self._stream_suppressed += suppressed

    def _pre_crash_io(self, k: int) -> List[tuple]:
        """I/O events issued at indices ≤ k — the machine appends to its
        I/O log *before* delivering ``on_io``, so an I/O event at the
        crash index itself has already escaped the persistence domain."""
        count = bisect_right(self._io_positions, k)
        return [tuple(ev) for ev in self.trace.io_log[:count]]

    # -- the campaign-facing contract ----------------------------------------

    def capture_at(self, event_index: int):
        """Replay twin of :func:`repro.fault.campaign.capture_at`.

        Returns ``(state, machine, checker)`` with the same meaning: the
        captured persistent domain (``None`` if the trace ends first), an
        object carrying the pre-crash ``io_log``, and — when checking —
        a per-point checker façade already fed the crash-state
        comparison.
        """
        total = len(self.trace)
        point_violations: List[Violation] = []
        point_suppressed = 0
        if event_index >= total:
            # The program finishes before the crash point: run out the
            # trace and finalise, exactly like the interpreted path.
            self._advance_to(total)
            if not self._finished:
                self.system.finish()
                self._finished = True
                if self.checker is not None:
                    self.checker.finalize(self.system)
                    fresh, suppressed = self._drain_new()
                    self._stream_violations.extend(fresh)
                    self._stream_suppressed += suppressed
            state = None
        else:
            self._advance_to(event_index)
            state = capture_crash_state(self.system)
            if self.checker is not None:
                # Deep-copied state + read-only whole-state check: the
                # live cursor is unperturbed and keeps marching.
                self.checker.check_crash_state(state)
                point_violations, point_suppressed = self._drain_new()
        machine = _ReplayedMachine(self._pre_crash_io(event_index))
        facade = (
            _PointChecker(self, point_violations, point_suppressed)
            if self.checker is not None
            else None
        )
        return state, machine, facade


class TraceCampaignSource:
    """What :func:`repro.fault.campaign.run_campaign` accepts as
    ``source``: anything with the ``capture_at(event_index)`` contract.
    This one binds a captured trace and a campaign config to a
    :class:`TraceCursor`."""

    def __init__(self, trace: ExecTrace, config, mutations=None) -> None:
        self.trace = trace
        self._cursor = TraceCursor(
            trace,
            params=config.params,
            threshold=config.threshold,
            check=config.check,
            mutations=mutations,
        )

    @property
    def rebuilds(self) -> int:
        return self._cursor.rebuilds

    def capture_at(self, event_index: int):
        return self._cursor.capture_at(event_index)
