"""Columnar trace capture: one golden run, recorded for replay.

The functional machine is architecturally exact — the Capri system never
changes what programs compute — so one interpreted run fixes the entire
observer event stream (the event-ordering contract in
:mod:`repro.isa.trace`).  :class:`TraceRecorder` records that stream into
an :class:`ExecTrace`: parallel ``array`` columns of (kind, core, a, b,
c) rather than per-event objects, the structure-of-arrays layout that
keeps a multi-million-event trace a few dozen MB and lets
:meth:`ExecTrace.deliver` re-drive any observer — the Capri system, the
persistency checker, a crash injector — in a tight batched loop with no
IR re-interpretation.

Column semantics per kind (unused columns hold 0):

==========  ==============  ==============  ==============
kind        ``a``           ``b``           ``c``
==========  ==============  ==============  ==============
retire      name-table idx
load        addr            arch value
store       addr            value           old
ckpt        reg             value           addr
boundary    region id       cont-table idx
fence
atomic      addr            value           old
halt
io          port            value
==========  ==============  ==============  ==============

Loads record the *architectural value* at event time — the one piece of
machine state :class:`~repro.arch.system.CapriSystem` consumes (for
stale-read accounting) — so replay needs no machine at all.  Boundary
continuations are rare structured objects and live in a side table.

The trace also carries everything a fault campaign derives from the
golden run: the initial durable image, the final data image (checkpoint
log area masked), the I/O log, and the total event count — so golden
results, crash plans, and replay systems all come from the trace alone.
"""

from __future__ import annotations

import hashlib
import json
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module, is_ckpt_addr
from repro.isa.machine import Machine
from repro.isa.trace import (
    EV_ATOMIC,
    EV_BOUNDARY,
    EV_CKPT,
    EV_FENCE,
    EV_HALT,
    EV_IO,
    EV_LOAD,
    EV_RETIRE,
    EV_STORE,
    Observer,
)

# Integer kind tags for the ``kinds`` column.  Order is part of the codec
# format — append only.
K_RETIRE = 0
K_LOAD = 1
K_STORE = 2
K_CKPT = 3
K_BOUNDARY = 4
K_FENCE = 5
K_ATOMIC = 6
K_HALT = 7
K_IO = 8

#: kind tag -> the string tag :class:`~repro.isa.trace.CollectingObserver`
#: uses, so :meth:`ExecTrace.event` round-trips to the same tuples.
KIND_TAGS = (
    EV_RETIRE,
    EV_LOAD,
    EV_STORE,
    EV_CKPT,
    EV_BOUNDARY,
    EV_FENCE,
    EV_ATOMIC,
    EV_HALT,
    EV_IO,
)


class ExecTrace:
    """One recorded execution, in columnar form."""

    __slots__ = (
        "kinds",
        "cores",
        "a",
        "b",
        "c",
        "retire_names",
        "continuations",
        "num_cores",
        "initial_data",
        "final_data",
        "io_log",
        "total_retired",
        "meta",
    )

    def __init__(self) -> None:
        self.kinds = array("B")
        self.cores = array("i")
        # Signed 64-bit, matching repro.ir.values.wrap_word's word domain.
        self.a = array("q")
        self.b = array("q")
        self.c = array("q")
        #: interned instruction-class names for retire events.
        self.retire_names: List[str] = []
        #: boundary continuations, in boundary-event order of appearance.
        self.continuations: List[Any] = []
        self.num_cores = 1
        #: the module's initial durable image (seeds replay NVM).
        self.initial_data: Dict[int, int] = {}
        #: final data-segment memory, checkpoint log area masked — the
        #: differential oracle's golden image.
        self.final_data: Dict[int, int] = {}
        #: (core, port, value) in issue order.
        self.io_log: List[Tuple[int, int, int]] = []
        self.total_retired = 0
        #: free-form provenance (workload, scale, quantum, fingerprint…).
        self.meta: Dict[str, Any] = {}

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def total_events(self) -> int:
        """Event count in the crash-index universe (one per callback)."""
        return len(self.kinds)

    def event(self, i: int) -> Tuple[Any, ...]:
        """Event ``i`` as the tuple ``CollectingObserver`` would record."""
        k, core = self.kinds[i], self.cores[i]
        a, b, c = self.a[i], self.b[i], self.c[i]
        if k == K_RETIRE:
            return (EV_RETIRE, core, self.retire_names[a])
        if k == K_LOAD:
            return (EV_LOAD, core, a)
        if k == K_STORE:
            return (EV_STORE, core, a, b, c)
        if k == K_CKPT:
            return (EV_CKPT, core, a, b, c)
        if k == K_BOUNDARY:
            return (EV_BOUNDARY, core, a, self.continuations[b])
        if k == K_FENCE:
            return (EV_FENCE, core)
        if k == K_ATOMIC:
            return (EV_ATOMIC, core, a, b, c)
        if k == K_HALT:
            return (EV_HALT, core)
        if k == K_IO:
            return (EV_IO, core, a, b)
        raise ValueError(f"unknown kind tag {k} at event {i}")

    def load_value(self, i: int) -> int:
        """Architectural value recorded for load event ``i``."""
        if self.kinds[i] != K_LOAD:
            raise ValueError(f"event {i} is not a load")
        return self.b[i]

    def io_positions(self) -> List[int]:
        """Event indices of the I/O events, in order (aligned with
        :attr:`io_log`)."""
        return [i for i, k in enumerate(self.kinds) if k == K_IO]

    # -- replay --------------------------------------------------------------

    def deliver(
        self,
        observer: Observer,
        start: int = 0,
        stop: Optional[int] = None,
        system=None,
    ) -> int:
        """Drive ``observer`` with events ``[start, stop)``; returns ``stop``.

        ``observer`` may be any :class:`~repro.isa.trace.Observer` chain —
        a :class:`~repro.arch.system.CapriSystem`, a ``TeeObserver``
        fanning out to the persistency checker, a
        :class:`~repro.arch.crash.CrashInjector`.  When the chain ends in
        a *machineless* ``CapriSystem``, pass it as ``system`` so each
        load's recorded architectural value is staged on it before the
        callback (the replay twin of ``system.attach(machine)``).

        This is the subsystem's hot loop: columns and callbacks are bound
        to locals once, then dispatched per event with no object
        allocation.
        """
        kinds, cores = self.kinds, self.cores
        col_a, col_b, col_c = self.a, self.b, self.c
        names, conts = self.retire_names, self.continuations
        if stop is None:
            stop = len(kinds)
        on_retire = observer.on_retire
        on_load = observer.on_load
        on_store = observer.on_store
        on_ckpt = observer.on_ckpt
        on_boundary = observer.on_boundary
        on_fence = observer.on_fence
        on_atomic = observer.on_atomic
        on_halt = observer.on_halt
        on_io = observer.on_io
        for i in range(start, stop):
            k = kinds[i]
            core = cores[i]
            if k == K_RETIRE:
                on_retire(core, names[col_a[i]])
            elif k == K_LOAD:
                if system is not None:
                    system._replay_arch_value = col_b[i]
                on_load(core, col_a[i])
            elif k == K_STORE:
                on_store(core, col_a[i], col_b[i], col_c[i])
            elif k == K_CKPT:
                on_ckpt(core, col_a[i], col_b[i], col_c[i])
            elif k == K_BOUNDARY:
                on_boundary(core, col_a[i], conts[col_b[i]])
            elif k == K_FENCE:
                on_fence(core)
            elif k == K_ATOMIC:
                on_atomic(core, col_a[i], col_b[i], col_c[i])
            elif k == K_HALT:
                on_halt(core)
            else:  # K_IO
                on_io(core, col_a[i], col_b[i])
        return stop


class TraceRecorder(Observer):
    """Observer that records one machine run into an :class:`ExecTrace`.

    Bind the machine before running (:meth:`bind`): each load's
    architectural value is read from machine memory at event-delivery
    time, exactly when :class:`~repro.arch.system.CapriSystem.on_load`
    would have read it (loads never change memory, so post-apply ==
    at-delivery).
    """

    def __init__(self, trace: Optional[ExecTrace] = None) -> None:
        self.trace = trace if trace is not None else ExecTrace()
        self._machine: Optional[Machine] = None
        self._name_index: Dict[str, int] = {}

    def bind(self, machine: Machine) -> "TraceRecorder":
        self._machine = machine
        return self

    def _push(self, kind: int, core: int, a: int = 0, b: int = 0, c: int = 0) -> None:
        t = self.trace
        t.kinds.append(kind)
        t.cores.append(core)
        t.a.append(a)
        t.b.append(b)
        t.c.append(c)

    def on_retire(self, core, kind):
        idx = self._name_index.get(kind)
        if idx is None:
            idx = self._name_index[kind] = len(self.trace.retire_names)
            self.trace.retire_names.append(kind)
        self._push(K_RETIRE, core, idx)

    def on_load(self, core, addr):
        value = self._machine.memory.get(addr, 0) if self._machine else 0
        self._push(K_LOAD, core, addr, value)

    def on_store(self, core, addr, value, old):
        self._push(K_STORE, core, addr, value, old)

    def on_ckpt(self, core, reg, value, addr):
        self._push(K_CKPT, core, reg, value, addr)

    def on_boundary(self, core, region_id, continuation):
        t = self.trace
        self._push(K_BOUNDARY, core, region_id, len(t.continuations))
        t.continuations.append(continuation)

    def on_fence(self, core):
        self._push(K_FENCE, core)

    def on_atomic(self, core, addr, value, old):
        self._push(K_ATOMIC, core, addr, value, old)

    def on_halt(self, core):
        self._push(K_HALT, core)

    def on_io(self, core, port, value):
        self._push(K_IO, core, port, value)


def capture_trace(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    quantum: int = 32,
    max_steps: int = 50_000_000,
    meta: Optional[Dict[str, Any]] = None,
) -> ExecTrace:
    """Run ``module`` crash-free on the functional machine, recording.

    The capture run costs one *functional* pass (interpreter dispatch
    only, no timing/persistence simulation) — the same price as
    :func:`repro.fault.oracle.golden_run`, which this subsumes: the
    returned trace carries the golden data image, I/O log, and event
    count.
    """
    from repro.deps import touch

    touch("trace")  # usage-probe dependency recording
    machine = Machine(module, quantum=quantum)
    for func_name, args in spawns:
        machine.spawn(func_name, args)
    recorder = TraceRecorder().bind(machine)
    machine.run(recorder, max_steps=max_steps)
    trace = recorder.trace
    trace.num_cores = max(1, len(spawns))
    trace.initial_data = dict(module.initial_data)
    trace.final_data = {
        addr: value
        for addr, value in machine.memory.items()
        if not is_ckpt_addr(addr)
    }
    trace.io_log = list(machine.io_log)
    trace.total_retired = machine.total_retired
    trace.meta = dict(meta or {})
    return trace


# ---------------------------------------------------------------------------
# functional fingerprints: which runs share one trace
# ---------------------------------------------------------------------------

#: Bump when the fingerprint token changes shape.
#: 2: dropped the embedded code hash — validity is decided per cache
#: entry from recorded subsystem deps, mirroring RunSpec fingerprints.
_TRACE_FINGERPRINT_SCHEMA = 2


def trace_fingerprint(spec) -> str:
    """Content address of a spec's *functional* execution.

    Narrower than :meth:`repro.api.RunSpec.fingerprint`: only the fields
    that shape the instruction stream participate — workload, scale,
    threads, the effective compile config (which folds in the threshold:
    region formation is compile-time), quantum (hart interleaving), and
    ``max_steps``.  ``SimParams``, simulation-side persistence,
    ``check``, and ``seed`` are absent by construction: sweeping those
    replays one captured trace.  Code validity is not part of the key —
    stored traces carry their subsystem dependency hashes and the cache
    validates those (:mod:`repro.deps`).
    """
    from repro.api import _canon

    token = {
        "schema": _TRACE_FINGERPRINT_SCHEMA,
        "workload": spec.workload,
        "scale": float(spec.scale),
        "threads": spec.threads,
        "config": _canon(spec.effective_config),
        "quantum": spec.quantum,
        "max_steps": spec.max_steps,
    }
    blob = json.dumps(token, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def capture_spec_trace(spec) -> ExecTrace:
    """Build + (maybe) compile a :class:`repro.api.RunSpec`'s workload and
    capture its trace, mirroring :func:`repro.api.execute_spec`'s build
    path exactly (uninstrumented configs skip the compiler).

    The whole capture runs under a :class:`repro.deps.UsageProbe`, and
    the probed subsystem set lands in ``trace.meta["deps"]`` — the codec
    stores it with the serialised trace so the cache can invalidate the
    entry precisely, and replays of the warm trace re-touch the same
    subsystems on behalf of their own probes.
    """
    from repro.compiler import CapriCompiler
    from repro.deps import UsageProbe
    from repro.workloads import get_workload

    with UsageProbe() as probe:
        workload = get_workload(spec.workload)
        module, spawns = workload.build(spec.scale, threads=spec.threads)
        config = spec.effective_config
        if config.instrumented:
            module = CapriCompiler(config).compile(module).module
        trace = capture_trace(
            module,
            spawns,
            quantum=spec.quantum,
            max_steps=spec.max_steps,
            meta={
                "workload": spec.workload,
                "scale": float(spec.scale),
                "threads": spec.threads,
                "quantum": spec.quantum,
                "fingerprint": trace_fingerprint(spec),
            },
        )
    trace.meta["deps"] = list(probe.subsystems())
    return trace
