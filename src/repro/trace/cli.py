"""Command-line trace tooling: ``python -m repro trace <mode>``.

Three modes::

    # Capture a workload's columnar trace into the result cache:
    python -m repro trace capture --workload genome --scale 0.3

    # Prove capture/replay equivalence: interpreted vs replayed
    # SystemMetrics, field by field (exit 1 on any divergence):
    python -m repro trace replay --workload genome --scale 0.3 --check

    # Campaign bench: one fault campaign interpreted and once replayed,
    # verdicts compared point by point, speedup reported (exit 1 on any
    # verdict divergence):
    python -m repro trace bench --workload genome --scale 0.2

``replay`` and ``bench`` are the CI smoke commands — they re-verify the
equivalence this subsystem is built on rather than trusting it.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List, Optional

from repro.api import RunSpec
from repro.compiler import OptConfig
from repro.jsonout import add_json_arg, resolved_json_out, write_envelope


def _spec(args) -> RunSpec:
    return RunSpec(
        workload=args.workload,
        scale=args.scale,
        config=OptConfig.licm(args.threshold),
        quantum=args.quantum,
    )


def _capture(args, parser, json_out) -> int:
    from repro.api import (
        capture_spec_trace,
        load_trace,
        resolve_cache,
        store_trace,
        trace_fingerprint,
    )

    spec = _spec(args)
    store = resolve_cache(None if args.no_cache else "default")
    fingerprint = trace_fingerprint(spec)
    trace = load_trace(store, fingerprint)
    cached = trace is not None
    start = time.perf_counter()
    if trace is None:
        try:
            trace = capture_spec_trace(spec)
        except KeyError as err:
            parser.error(str(err.args[0] if err.args else err))
        path = store_trace(store, fingerprint, trace)
    else:
        path = store.path_for(fingerprint, kind="traces")
    wall = time.perf_counter() - start
    if json_out != "-":
        print(
            f"trace {args.workload} scale={args.scale} t{args.threshold}: "
            f"{len(trace)} events, {trace.total_retired} retired, "
            f"{trace.num_cores} core(s)"
            + (" [cached]" if cached else f" captured in {wall:.2f}s")
        )
        print(f"  fingerprint {fingerprint}")
        if path is not None:
            print(f"  stored at {path}")
    if json_out:
        write_envelope(
            json_out,
            "trace",
            {
                "mode": "capture",
                "workload": args.workload,
                "scale": args.scale,
                "threshold": args.threshold,
                "events": len(trace),
                "retired": trace.total_retired,
                "cores": trace.num_cores,
                "cached": cached,
                "fingerprint": fingerprint,
                "deps": trace.meta.get("deps"),
                "wall_s": wall,
            },
        )
    return 0


def _replay(args, parser, json_out) -> int:
    from repro.api import capture_spec_trace
    from repro.arch.system import run_workload
    from repro.compiler import CapriCompiler
    from repro.trace.replay import replay_metrics
    from repro.workloads import get_workload

    spec = _spec(args)
    try:
        workload = get_workload(spec.workload)
    except KeyError as err:
        parser.error(str(err.args[0] if err.args else err))
    module, spawns = workload.build(spec.scale)
    compiled = CapriCompiler(spec.effective_config).compile(module).module

    t0 = time.perf_counter()
    interpreted, _machine = run_workload(
        compiled,
        spawns,
        threshold=spec.effective_threshold,
        quantum=spec.quantum,
        check=args.check,
    )
    t1 = time.perf_counter()
    trace = capture_spec_trace(spec)
    t2 = time.perf_counter()
    replayed = replay_metrics(
        trace,
        threshold=spec.effective_threshold,
        check=args.check,
    )
    t3 = time.perf_counter()

    diffs = [
        (f.name, getattr(interpreted, f.name), getattr(replayed, f.name))
        for f in dataclasses.fields(interpreted)
        if getattr(interpreted, f.name) != getattr(replayed, f.name)
    ]
    events = len(trace)
    if json_out != "-":
        print(
            f"{args.workload}: {events} events — interpreted {t1 - t0:.2f}s, "
            f"capture {t2 - t1:.2f}s, replay {t3 - t2:.2f}s"
            + ("  (checked)" if args.check else "")
        )
    if json_out:
        write_envelope(
            json_out,
            "trace",
            {
                "mode": "replay",
                "workload": args.workload,
                "events": events,
                "checked": bool(args.check),
                "interpreted_s": t1 - t0,
                "capture_s": t2 - t1,
                "replay_s": t3 - t2,
                "identical": not diffs,
                "diverging_fields": [
                    {"field": name, "interpreted": a, "replayed": b}
                    for name, a, b in diffs
                ],
            },
        )
    if diffs:
        if json_out != "-":
            print(f"METRICS DIVERGE in {len(diffs)} field(s):")
            for name, a, b in diffs:
                print(f"  {name}: interpreted={a!r} replayed={b!r}")
        return 1
    if json_out != "-":
        print("SystemMetrics bit-identical across all fields")
    return 0


def _bench(args, parser, json_out) -> int:
    from repro.fault.campaign import CampaignConfig, run_workload_campaign

    def campaign(replay: bool):
        config = CampaignConfig(
            threshold=args.threshold,
            quantum=args.quantum,
            sample=args.sample,
            check=args.check,
            minimize=False,
            replay=replay,
        )
        start = time.perf_counter()
        try:
            result = run_workload_campaign(
                args.workload, config, scale=args.scale, cache=None
            )
        except KeyError as err:
            parser.error(str(err.args[0] if err.args else err))
        return result, time.perf_counter() - start

    interpreted, t_int = campaign(replay=False)
    replayed, t_rep = campaign(replay=True)

    def verdicts(result):
        return [(o.event_index, o.status, tuple(o.chain)) for o in result.outcomes]

    vi, vr = verdicts(interpreted), verdicts(replayed)
    speedup = t_int / t_rep if t_rep > 0 else float("inf")
    if json_out != "-":
        print(
            f"{args.workload}: {len(vi)} crash points of "
            f"{interpreted.total_events} events — interpreted {t_int:.2f}s, "
            f"replayed {t_rep:.2f}s, speedup {speedup:.2f}x"
        )
    if json_out:
        write_envelope(
            json_out,
            "trace",
            {
                "mode": "bench",
                "workload": args.workload,
                "crash_points": len(vi),
                "total_events": interpreted.total_events,
                "interpreted_s": t_int,
                "replayed_s": t_rep,
                "speedup": speedup if t_rep > 0 else None,
                "identical": vi == vr,
                "counts": interpreted.counts(),
            },
        )
    if vi != vr:
        if json_out != "-":
            for a, b in zip(vi, vr):
                if a != b:
                    print(f"VERDICTS DIVERGE: first at {a} vs {b}")
                    break
            else:
                print(
                    f"VERDICTS DIVERGE: point counts {len(vi)} vs {len(vr)}"
                )
        return 1
    if json_out != "-":
        print(f"campaign verdicts identical ({interpreted.counts()})")
    if args.min_speedup and speedup < args.min_speedup:
        if json_out != "-":
            print(f"SPEEDUP {speedup:.2f}x below required {args.min_speedup}x")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Columnar trace capture, replay equivalence, and "
        "campaign replay bench",
    )
    parser.add_argument("mode", choices=("capture", "replay", "bench"))
    parser.add_argument(
        "--workload",
        required=True,
        help="registry workload name (see repro.workloads)",
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--threshold", type=int, default=32)
    parser.add_argument("--quantum", type=int, default=32)
    parser.add_argument(
        "--check",
        action="store_true",
        help="also run the online persistency checker on both sides",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        help="bench: crash-point sample size (default: exhaustive)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="bench: fail unless the replay campaign is at least this "
        "many times faster",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="capture: do not read or write the result cache",
    )
    add_json_arg(parser)
    args = parser.parse_args(argv)
    json_out = resolved_json_out(args, prog="repro trace")
    if args.mode == "capture":
        return _capture(args, parser, json_out)
    if args.mode == "replay":
        return _replay(args, parser, json_out)
    return _bench(args, parser, json_out)


if __name__ == "__main__":
    print(
        "note: `python -m repro trace ...` is the consolidated entry point",
        file=sys.stderr,
    )
    sys.exit(main())
