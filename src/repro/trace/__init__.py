"""``repro.trace`` — columnar trace capture + batched replay.

Capture one golden interpreted run into a structure-of-arrays
:class:`ExecTrace` (:mod:`repro.trace.record`), persist it in the sweep
result cache through a versioned, checksummed codec
(:mod:`repro.trace.codec`), and drive the arch/persistence/checker
layers straight from the columns (:mod:`repro.trace.replay`) — the fast
path behind ``RunSpec(trace=True)``, ``CampaignConfig(replay=True)``,
and the ``repro trace`` CLI (:mod:`repro.trace.cli`).
"""

from repro.trace.codec import (
    TRACE_CACHE_KIND,
    TRACE_CODEC_VERSION,
    TraceDecodeError,
    TraceVersionError,
    decode_trace,
    encode_trace,
    load_trace,
    store_trace,
)
from repro.trace.record import (
    ExecTrace,
    TraceRecorder,
    capture_spec_trace,
    capture_trace,
    trace_fingerprint,
)
from repro.trace.replay import (
    TraceCampaignSource,
    TraceCursor,
    TraceReplayer,
    build_replay_system,
    golden_from_trace,
    replay_metrics,
    replay_until_crash,
)

__all__ = [
    "ExecTrace",
    "TraceRecorder",
    "capture_trace",
    "capture_spec_trace",
    "trace_fingerprint",
    "TRACE_CODEC_VERSION",
    "TRACE_CACHE_KIND",
    "TraceDecodeError",
    "TraceVersionError",
    "encode_trace",
    "decode_trace",
    "load_trace",
    "store_trace",
    "TraceReplayer",
    "TraceCursor",
    "TraceCampaignSource",
    "build_replay_system",
    "golden_from_trace",
    "replay_metrics",
    "replay_until_crash",
]
