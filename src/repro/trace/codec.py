"""Versioned, checksummed codec: traces in the sweep result cache.

An :class:`~repro.trace.record.ExecTrace` serialises to one JSON object:
the five event columns as base64-packed machine arrays (binary density,
JSON transport — the :class:`~repro.sweep.cache.ResultCache` stores JSON
objects), the side tables (retire names, continuations, I/O log, durable
images) as plain JSON, plus

* a **format version** — a decoder facing a different version reports a
  clean miss, so format bumps recapture rather than misread;
* the **byte order** of the producing host — columns are byteswapped on
  load when it differs;
* a **sha256 checksum** over the column bytes and canonicalised side
  tables — a torn or bit-rotted entry fails closed.

Cache integration mirrors the cache's own corrupt-entry contract: entries
that parse but fail the checksum (or are structurally broken) are
*quarantined* via :meth:`ResultCache.quarantine` — renamed aside, counted,
treated as a miss, never a crash.  Traces live under the ``traces``
namespace keyed by :func:`repro.trace.record.trace_fingerprint`.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import sys
from array import array
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.isa.machine import Continuation
from repro.trace.record import ExecTrace

#: Bump on any change to the serialised layout.
#: 2: payload gained the top-level ``deps`` validity token
#:    (``{subsystem: content-hash}``) read by the cache's dependency
#:    validation; version-1 traces predate per-subsystem invalidation
#:    and are recaptured (clean miss).
TRACE_CODEC_VERSION = 2

#: ResultCache namespace for serialised traces.
TRACE_CACHE_KIND = "traces"

#: (payload key, array typecode) for each packed column.
_COLUMNS = (
    ("kinds", "B"),
    ("cores", "i"),
    ("a", "q"),
    ("b", "q"),
    ("c", "q"),
)


class TraceDecodeError(Exception):
    """The payload is corrupt: checksum mismatch, truncated column,
    structural damage.  Callers quarantine the cache entry."""


class TraceVersionError(TraceDecodeError):
    """The payload was written by a different codec version.  Not
    corruption — callers treat it as a miss and recapture."""


def _encode_continuation(cont: Continuation) -> list:
    return [
        cont.func_name,
        cont.label,
        cont.index,
        [
            [name, label, index, list(regs), ret_reg]
            for (name, label, index, regs, ret_reg) in cont.callstack
        ],
    ]


def _decode_continuation(payload: list) -> Continuation:
    func_name, label, index, frames = payload
    return Continuation(
        func_name=func_name,
        label=label,
        index=index,
        callstack=tuple(
            (name, flabel, findex, tuple(regs), ret_reg)
            for (name, flabel, findex, regs, ret_reg) in frames
        ),
    )


def _checksum(columns: Dict[str, bytes], side: Dict[str, Any]) -> str:
    digest = hashlib.sha256()
    for key, _code in _COLUMNS:
        digest.update(key.encode())
        digest.update(b"\0")
        digest.update(columns[key])
        digest.update(b"\0")
    digest.update(
        json.dumps(side, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()


def _side_tables(trace: ExecTrace) -> Dict[str, Any]:
    """The non-column payload fields covered by the checksum."""
    return {
        "retire_names": list(trace.retire_names),
        "continuations": [
            _encode_continuation(c) for c in trace.continuations
        ],
        "num_cores": trace.num_cores,
        "initial_data": {str(k): v for k, v in trace.initial_data.items()},
        "final_data": {str(k): v for k, v in trace.final_data.items()},
        "io_log": [list(ev) for ev in trace.io_log],
        "total_retired": trace.total_retired,
    }


def encode_trace(trace: ExecTrace) -> Dict[str, Any]:
    """Serialise to a JSON-able payload (the cache-entry body).

    When the trace carries its probed dependency set
    (``meta["deps"]``, recorded by
    :func:`repro.trace.record.capture_spec_trace`), the payload gains a
    top-level ``deps`` validity token — the cache refuses the entry once
    any of those subsystems' hashes change, so stale traces recapture
    instead of silently replaying old code's event stream.
    """
    from repro.deps import deps_token

    columns = {
        key: getattr(trace, key).tobytes() for key, _code in _COLUMNS
    }
    side = _side_tables(trace)
    payload: Dict[str, Any] = {
        "kind": "trace",
        "version": TRACE_CODEC_VERSION,
        "byteorder": sys.byteorder,
        "events": len(trace),
        "columns": {
            key: base64.b64encode(raw).decode("ascii")
            for key, raw in columns.items()
        },
        "checksum": _checksum(columns, side),
        "meta": dict(trace.meta),
    }
    dep_names = trace.meta.get("deps")
    if dep_names:
        payload["deps"] = deps_token(dep_names)
    payload.update(side)
    return payload


def decode_trace(payload: Dict[str, Any]) -> ExecTrace:
    """Rebuild an :class:`ExecTrace`; raises on version skew / corruption."""
    version = payload.get("version")
    if version != TRACE_CODEC_VERSION:
        raise TraceVersionError(
            f"trace codec version {version!r}, this decoder speaks "
            f"{TRACE_CODEC_VERSION}"
        )
    try:
        events = payload["events"]
        encoded = payload["columns"]
        columns: Dict[str, bytes] = {}
        arrays: Dict[str, array] = {}
        for key, code in _COLUMNS:
            raw = base64.b64decode(encoded[key].encode("ascii"), validate=True)
            arr = array(code)
            arr.frombytes(raw)
            if payload["byteorder"] != sys.byteorder:
                arr.byteswap()
                raw = arr.tobytes()
            if len(arr) != events:
                raise TraceDecodeError(
                    f"column {key!r} holds {len(arr)} events, header says "
                    f"{events}"
                )
            columns[key] = (
                raw
                if payload["byteorder"] == sys.byteorder
                else base64.b64decode(encoded[key].encode("ascii"))
            )
            arrays[key] = arr
        side = {
            "retire_names": payload["retire_names"],
            "continuations": payload["continuations"],
            "num_cores": payload["num_cores"],
            "initial_data": payload["initial_data"],
            "final_data": payload["final_data"],
            "io_log": payload["io_log"],
            "total_retired": payload["total_retired"],
        }
        if _checksum(columns, side) != payload["checksum"]:
            raise TraceDecodeError("trace checksum mismatch")
        trace = ExecTrace()
        for key, _code in _COLUMNS:
            setattr(trace, key, arrays[key])
        trace.retire_names = [str(n) for n in side["retire_names"]]
        trace.continuations = [
            _decode_continuation(c) for c in side["continuations"]
        ]
        trace.num_cores = int(side["num_cores"])
        trace.initial_data = {
            int(k): v for k, v in side["initial_data"].items()
        }
        trace.final_data = {int(k): v for k, v in side["final_data"].items()}
        trace.io_log = [tuple(ev) for ev in side["io_log"]]
        trace.total_retired = int(side["total_retired"])
        trace.meta = dict(payload.get("meta") or {})
        return trace
    except TraceDecodeError:
        raise
    except (KeyError, TypeError, ValueError, binascii.Error) as err:
        raise TraceDecodeError(f"malformed trace payload: {err}") from err


# ---------------------------------------------------------------------------
# cache integration
# ---------------------------------------------------------------------------

def load_trace(store, fingerprint: str) -> Optional[ExecTrace]:
    """Fetch + decode a cached trace; ``None`` on any kind of miss.

    Version skew is a clean miss (the caller recaptures and overwrites);
    corruption quarantines the entry exactly as :meth:`ResultCache.get`
    quarantines unreadable JSON.

    A warm hit re-broadcasts the trace's recorded dependency set to any
    active :class:`repro.deps.UsageProbe` — the run it feeds never calls
    the workload builder or compiler itself, yet still depends on them,
    and the cache entry produced from it must say so.
    """
    from repro.deps import touch

    if store is None:
        return None
    payload = store.get(fingerprint, kind=TRACE_CACHE_KIND)
    if payload is None:
        return None
    try:
        trace = decode_trace(payload)
    except TraceVersionError:
        return None
    except TraceDecodeError:
        store.quarantine(fingerprint, kind=TRACE_CACHE_KIND)
        return None
    deps = trace.meta.get("deps")
    if deps:
        touch(*deps)
    return trace


def store_trace(store, fingerprint: str, trace: ExecTrace) -> Optional[Path]:
    """Serialise + persist a trace; returns the entry path (or ``None``
    when caching is disabled)."""
    if store is None:
        return None
    return store.put(fingerprint, encode_trace(trace), kind=TRACE_CACHE_KIND)
