"""The public run API: one spec in, one result envelope out.

Every runner in the repository — :class:`repro.eval.harness.EvalHarness`,
the :mod:`repro.sweep` engine, the ablation sweeps, the fault campaign —
describes a simulation by the same frozen :class:`RunSpec` and receives a
:class:`RunResult`.  A spec is *content-addressable*: its
:meth:`RunSpec.fingerprint` hashes every behaviour-affecting parameter,
so two specs with equal fingerprints describe the same simulation and a
completed run can be memoised on disk (:mod:`repro.sweep.cache`).

Code-change invalidation is *dependency-recorded*, not key-embedded
(fingerprint schema 2): :func:`execute_spec` runs under a
:class:`repro.deps.UsageProbe` and reports which subsystems the run
exercised (:attr:`RunResult.deps`); cache entries store those
subsystems' content hashes and stay valid until one of *them* changes —
editing an eval script no longer cold-starts every simulation.  The
whole-tree :func:`code_version` remains as the fallback validity check
for entries that predate per-subsystem recording.

This module is also the **stable facade**: everything in ``__all__`` is
public API with compatibility expectations; reach into submodules only
for internals (the split is documented in DESIGN.md).

Legacy call sites keep working: :func:`repro.arch.system.run_workload`
accepts a :class:`RunSpec` in place of a module, ``EvalHarness.run`` keeps
its name/config signature, and :class:`repro.fault.campaign.CampaignConfig`
gains :meth:`~repro.fault.campaign.CampaignConfig.from_spec`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.arch.params import SimParams
from repro.arch.system import SystemMetrics, run_workload
from repro.compiler import CapriCompiler, OptConfig
from repro.deps import (
    UsageProbe,
    changed_subsystems_since,
    code_version,
    subsystem_hashes,
)

#: Bump when the fingerprint schema itself changes shape.
#: 1: token embedded the whole-tree code hash; dict keys stringified.
#: 2: pure parameter address (code validity moved to per-entry subsystem
#:    deps in the cache); dict keys carry their type (the ``{1: x}`` vs
#:    ``{"1": x}`` aliasing fix).
_FINGERPRINT_SCHEMA = 2

_DEFAULT_MAX_STEPS = 50_000_000


# ---------------------------------------------------------------------------
# canonical serialisation (fingerprints must be stable across processes)
# ---------------------------------------------------------------------------

def _canon(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {"__dataclass__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _canon(getattr(value, f.name))
        return out
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        # Keys encode their type alongside the value: ``{1: x}`` and
        # ``{"1": x}`` must not canonicalise identically.  Sorting by
        # (type name, stringified key) is total even for mixed-type keys.
        items = sorted(
            ([type(k).__name__, str(k), _canon(v)] for k, v in value.items()),
            key=lambda item: (item[0], item[1]),
        )
        return {"__dict__": items}
    return value


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation: the repository's interchange type.

    ``threshold``, ``params`` and ``persistence`` default to *derived*
    (``None``): the effective values come from ``config`` /
    ``SimParams.scaled()`` — see the ``effective_*`` properties.  ``label``
    is presentational only and excluded from the fingerprint.
    """

    workload: str
    scale: float = 1.0
    config: OptConfig = OptConfig.licm()
    threshold: Optional[int] = None
    params: Optional[SimParams] = None
    quantum: int = 32
    persistence: Optional[bool] = None
    #: ``None`` = unset (consumers fall back to their own default seed);
    #: an explicit value — *including 0* — is honoured as given.
    seed: Optional[int] = None
    threads: Optional[int] = None
    max_steps: int = _DEFAULT_MAX_STEPS
    #: Run the online persistency checker (:mod:`repro.check`) alongside
    #: the simulation; a model violation raises
    #: :class:`repro.check.PersistencyViolationError` out of
    #: :func:`execute_spec`.  Part of the fingerprint: a checked run
    #: validates extra invariants and must not share cache entries with
    #: an unchecked one.
    check: bool = False
    #: Serve the simulation from a captured columnar trace
    #: (:mod:`repro.trace`): the functional event stream is recorded
    #: once (cached under :func:`repro.trace.record.trace_fingerprint`)
    #: and the arch/check layers replay it — metrics are bit-identical
    #: to the interpreted path.  Part of the fingerprint: trace-served
    #: runs are a distinct execution mode.
    trace: bool = False
    label: str = ""

    # -- effective (derived) values -----------------------------------------

    @property
    def effective_threshold(self) -> int:
        return self.config.threshold if self.threshold is None else self.threshold

    @property
    def effective_params(self) -> SimParams:
        return self.params if self.params is not None else SimParams.scaled()

    @property
    def effective_persistence(self) -> bool:
        if self.persistence is None:
            return self.config.instrumented
        return self.persistence

    @property
    def effective_config(self) -> OptConfig:
        """The compile configuration with any threshold override applied."""
        if self.threshold is None or self.threshold == self.config.threshold:
            return self.config
        return self.config.with_threshold(self.threshold)

    # -- derived specs -------------------------------------------------------

    def baseline(self) -> "RunSpec":
        """The volatile baseline this spec normalises against.

        Seed and label are zeroed so instrumented specs differing only in
        those share one baseline run.
        """
        return replace(
            self,
            config=OptConfig.volatile(),
            threshold=None,
            persistence=False,
            seed=0,
            check=False,  # nothing persistent to check in a volatile run
            trace=False,  # baselines stay on the interpreted path
            label="baseline",
        )

    def with_(self, **kwargs) -> "RunSpec":
        return replace(self, **kwargs)

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content address of this run's *parameters*: equal fingerprints
        ⇒ the same simulation is being described.

        Hashes the *effective* values (so ``params=None`` and
        ``params=SimParams.scaled()`` collide, as they must).  Since
        schema 2 the package's code hash is **not** part of the key:
        whether a cached result is still *valid* for this fingerprint is
        decided per entry from its recorded subsystem dependencies
        (:mod:`repro.deps`, checked in :meth:`ResultCache.get
        <repro.sweep.cache.ResultCache.get>`), falling back to the
        whole-tree :func:`code_version` for pre-deps entries.
        """
        token = {
            "schema": _FINGERPRINT_SCHEMA,
            "workload": self.workload,
            "scale": float(self.scale),
            "config": _canon(self.effective_config),
            "threshold": self.effective_threshold,
            "params": _canon(self.effective_params),
            "quantum": self.quantum,
            "persistence": self.effective_persistence,
            "seed": self.seed,
            "threads": self.threads,
            "max_steps": self.max_steps,
            "check": self.check,
            "trace": self.trace,
        }
        blob = json.dumps(token, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable identity for progress lines."""
        bits = [self.workload, f"t{self.effective_threshold}"]
        if not self.effective_persistence:
            bits.append("volatile")
        if self.check:
            bits.append("check")
        if self.trace:
            bits.append("trace")
        if self.label:
            bits.append(self.label)
        return ":".join(bits)


# ---------------------------------------------------------------------------
# RunResult
# ---------------------------------------------------------------------------

@dataclass
class RunResult:
    """Envelope around one completed simulation."""

    spec: RunSpec
    metrics: SystemMetrics
    fingerprint: str = ""
    baseline_cycles: Optional[float] = None
    wall_s: float = 0.0
    from_cache: bool = False
    #: Subsystems this run exercised (sorted), as recorded by the usage
    #: probe around :func:`execute_spec` — the dependency set a cache
    #: entry stores for precise invalidation.  ``()`` for cache-served
    #: results (their validity was already checked against stored deps).
    deps: Tuple[str, ...] = ()
    machine: Any = dataclasses.field(default=None, repr=False, compare=False)

    @property
    def normalized_cycles(self) -> float:
        """Execution cycles relative to the volatile baseline."""
        if self.baseline_cycles is None:
            raise ValueError("no baseline cycles attached to this result")
        return self.metrics.exec_cycles / self.baseline_cycles

    @property
    def overhead_pct(self) -> float:
        return (self.normalized_cycles - 1.0) * 100.0


def metrics_to_dict(metrics: SystemMetrics) -> Dict[str, Any]:
    """JSON-able form of :class:`SystemMetrics` (exact float round-trip)."""
    return dataclasses.asdict(metrics)


def metrics_from_dict(payload: Dict[str, Any]) -> SystemMetrics:
    return SystemMetrics(**payload)


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def execute_spec(spec: RunSpec, keep_machine: bool = False) -> RunResult:
    """Build, (maybe) compile, and simulate one :class:`RunSpec`.

    The single run primitive behind the harness, the sweep engine's
    workers, and the ``run_workload(RunSpec)`` shim.  Uninstrumented specs
    skip the compiler entirely (the volatile-baseline convention).

    ``spec.trace`` swaps the interpreter for the :mod:`repro.trace`
    replay engine: the functional event stream is captured once (served
    from the result cache's ``traces`` namespace when warm) and the
    simulation consumes the columns — bit-identical metrics, no IR
    re-interpretation.  ``keep_machine`` forces the interpreted path:
    replay has no machine to return.

    The whole run executes under a :class:`repro.deps.UsageProbe`; the
    result's :attr:`~RunResult.deps` names the subsystems exercised, and
    the sweep engine stores them with the cached metrics so only changes
    to *those* subsystems invalidate the entry.
    """
    from repro.workloads import get_workload

    start = time.perf_counter()
    machine = None
    with UsageProbe() as probe:
        if spec.trace and not keep_machine:
            from repro.sweep.cache import resolve_cache
            from repro.trace.codec import load_trace, store_trace
            from repro.trace.record import capture_spec_trace, trace_fingerprint
            from repro.trace.replay import replay_metrics

            store = resolve_cache("default")
            tfp = trace_fingerprint(spec)
            trace = load_trace(store, tfp)
            if trace is None:
                trace = capture_spec_trace(spec)
                store_trace(store, tfp, trace)
            metrics = replay_metrics(
                trace,
                params=spec.effective_params,
                threshold=spec.effective_threshold,
                persistence=spec.effective_persistence,
                check=spec.check,
            )
        else:
            workload = get_workload(spec.workload)
            module, spawns = workload.build(spec.scale, threads=spec.threads)
            config = spec.effective_config
            if config.instrumented:
                module = CapriCompiler(config).compile(module).module
            metrics, machine = run_workload(
                module,
                spawns,
                params=spec.effective_params,
                threshold=spec.effective_threshold,
                persistence=spec.effective_persistence,
                quantum=spec.quantum,
                max_steps=spec.max_steps,
                check=spec.check,
            )
    return RunResult(
        spec=spec,
        metrics=metrics,
        fingerprint=spec.fingerprint(),
        wall_s=time.perf_counter() - start,
        deps=probe.subsystems(),
        machine=machine if keep_machine else None,
    )


# ---------------------------------------------------------------------------
# stable facade
# ---------------------------------------------------------------------------

#: Re-exports resolved lazily: the cache and trace layers import this
#: module themselves, so eager imports here would cycle.
_LAZY_EXPORTS = {
    "ResultCache": ("repro.sweep.cache", "ResultCache"),
    "resolve_cache": ("repro.sweep.cache", "resolve_cache"),
    "default_cache_dir": ("repro.sweep.cache", "default_cache_dir"),
    "trace_fingerprint": ("repro.trace.record", "trace_fingerprint"),
    "capture_spec_trace": ("repro.trace.record", "capture_spec_trace"),
    "load_trace": ("repro.trace.codec", "load_trace"),
    "store_trace": ("repro.trace.codec", "store_trace"),
    "generate_litmus_program": ("repro.litmus.generate", "generate_program"),
    "litmus_corpus": ("repro.litmus.generate", "litmus_corpus"),
    "explore_litmus_program": ("repro.litmus.explore", "explore_program"),
    "run_litmus_program": ("repro.litmus.matrix", "run_litmus_program"),
    "run_litmus_mutants": ("repro.litmus.matrix", "run_litmus_mutants"),
}


def __getattr__(name: str) -> Any:
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target[0]), target[1])


__all__ = [
    # core types + execution
    "RunSpec",
    "RunResult",
    "execute_spec",
    "metrics_to_dict",
    "metrics_from_dict",
    # versioning / dependency fingerprints (repro.deps)
    "code_version",
    "subsystem_hashes",
    "changed_subsystems_since",
    "UsageProbe",
    # result cache (repro.sweep.cache)
    "ResultCache",
    "resolve_cache",
    "default_cache_dir",
    # trace capture + cache integration (repro.trace)
    "trace_fingerprint",
    "capture_spec_trace",
    "load_trace",
    "store_trace",
    # persistency litmus tests (repro.litmus)
    "generate_litmus_program",
    "litmus_corpus",
    "explore_litmus_program",
    "run_litmus_program",
    "run_litmus_mutants",
]
