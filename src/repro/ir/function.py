"""Functions: named CFGs with a declared architectural register count."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instr

if TYPE_CHECKING:
    from repro.ir.instructions import RegionBoundary


class RecoveryBlock:
    """Reconstruction code attached to a region by the pruning pass.

    When optimal checkpoint pruning (Section 4.4.1) removes a checkpoint
    store for register ``target``, the value must be rebuilt at recovery
    time from *other* checkpointed registers.  The recovery block holds the
    backward slice that recomputes ``target``; the crash-recovery protocol
    executes it after reloading the surviving checkpoints.
    """

    __slots__ = ("target", "instrs")

    def __init__(self, target: "int", instrs: List[Instr]) -> None:
        self.target = target  # register index being reconstructed
        self.instrs = instrs

    def __repr__(self) -> str:
        return f"<RecoveryBlock r{self.target} ({len(self.instrs)} instrs)>"


class Function:
    """A function: an ordered mapping of labelled basic blocks.

    Attributes
    ----------
    name:
        Globally unique function name.
    num_params:
        Number of parameters; arguments arrive in registers ``r0..rN-1``.
    num_regs:
        Number of architectural registers the function uses.  Register
        indices in all instructions must be below this bound.
    blocks:
        Label -> :class:`BasicBlock`, in layout order (insertion order).
        The first inserted block is the entry block.
    recovery_blocks:
        region_id -> list of :class:`RecoveryBlock`, populated by the
        checkpoint-pruning pass.  Executed only during crash recovery.
    """

    __slots__ = (
        "name",
        "num_params",
        "num_regs",
        "blocks",
        "recovery_blocks",
        "meta",
    )

    def __init__(self, name: str, num_params: int = 0, num_regs: int = 8) -> None:
        if num_params > num_regs:
            raise ValueError("num_params cannot exceed num_regs")
        self.name = name
        self.num_params = num_params
        self.num_regs = num_regs
        self.blocks: Dict[str, BasicBlock] = {}
        self.recovery_blocks: Dict[int, List[RecoveryBlock]] = {}
        #: Free-form pass metadata (region table, live-in sets, stats).
        self.meta: Dict[str, object] = {}

    @property
    def entry(self) -> BasicBlock:
        """The entry basic block (first block added)."""
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return next(iter(self.blocks.values()))

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r} in {self.name!r}")
        self.blocks[block.label] = block
        return block

    def new_block(self, label: str) -> BasicBlock:
        return self.add_block(BasicBlock(label))

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    def fresh_label(self, hint: str) -> str:
        """Return an unused block label derived from ``hint``."""
        if hint not in self.blocks:
            return hint
        i = 1
        while f"{hint}.{i}" in self.blocks:
            i += 1
        return f"{hint}.{i}"

    def instructions(self) -> Iterator[Instr]:
        """Iterate over every instruction in layout order."""
        for block in self.blocks.values():
            yield from block.instrs

    @property
    def num_instrs(self) -> int:
        return sum(len(b) for b in self.blocks.values())

    def region_boundaries(self) -> List["RegionBoundary"]:
        """All region-boundary instructions in layout order."""
        from repro.ir.instructions import RegionBoundary

        return [i for i in self.instructions() if isinstance(i, RegionBoundary)]

    def __repr__(self) -> str:
        return (
            f"<Function {self.name}({self.num_params} params, "
            f"{self.num_regs} regs, {len(self.blocks)} blocks)>"
        )
