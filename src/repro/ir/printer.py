"""Textual pretty-printer for IR, used in docs, examples and test output."""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.module import Module


def format_function(func: Function) -> str:
    """Render one function as readable assembly-like text."""
    lines: List[str] = [f"func {func.name}(params={func.num_params}, regs={func.num_regs}):"]
    for label, block in func.blocks.items():
        lines.append(f"  {label}:")
        for instr in block.instrs:
            lines.append(f"    {instr!r}")
    for region_id, blocks in sorted(func.recovery_blocks.items()):
        for rb in blocks:
            lines.append(f"  recovery[region #{region_id}] r{rb.target}:")
            for instr in rb.instrs:
                lines.append(f"    {instr!r}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module, functions in insertion order."""
    parts = [f"module {module.name}"]
    if module.symbols:
        parts.append("data:")
        for name, addr in module.symbols.items():
            parts.append(f"  {name} @ {addr:#x}")
    for func in module.functions.values():
        parts.append("")
        parts.append(format_function(func))
    return "\n".join(parts)
