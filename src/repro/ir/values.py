"""Operand value types for the IR.

The IR is register based: instruction operands are either architectural
registers (:class:`Reg`) or 64-bit signed immediates (:class:`Imm`).
Registers are identified by small non-negative integer indices, mirroring
the paper's fixed mapping between architectural registers and checkpoint
storage slots (Section 4.2: "r0 is mapped into the index zero").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# Machine word parameters: the functional machine operates on 64-bit two's
# complement integers, like the paper's ARMv8 target.
WORD_BITS = 64
WORD_BYTES = WORD_BITS // 8
_WORD_MASK = (1 << WORD_BITS) - 1
_SIGN_BIT = 1 << (WORD_BITS - 1)


def wrap_word(value: int) -> int:
    """Wrap an arbitrary Python int to a signed 64-bit machine word."""
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        value -= 1 << WORD_BITS
    return value


@dataclass(frozen=True, slots=True)
class Reg:
    """An architectural register, identified by a non-negative index."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be >= 0, got {self.index}")

    def __repr__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True, slots=True)
class Imm:
    """A 64-bit signed immediate operand."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", wrap_word(self.value))

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]


def as_operand(value: Union[Operand, int]) -> Operand:
    """Coerce a raw int into an :class:`Imm`; pass operands through."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, int):
        return Imm(value)
    raise TypeError(f"cannot use {value!r} as an IR operand")
