"""Modules: collections of functions plus a static data segment.

The module owns the simulated address-space layout:

* ``DATA_BASE`` — start of the static data segment, allocated by a simple
  bump allocator (:meth:`Module.alloc`).
* ``CKPT_BASE`` — base of the register checkpoint storage, the "global
  array where all registers have mapped into the dedicated slots" of
  Section 4.2.

The paper targets real binaries where caller registers that survive a call
live in stack memory (which is itself persistent under WSP).  Our IR gives
each function a private register namespace, so the checkpoint storage is
additionally indexed by call *depth*: core ``c``'s slot for register
``rI`` at call depth ``d`` lives at
``CKPT_BASE + c*CKPT_CORE_STRIDE + d*CKPT_FRAME_STRIDE + I*8``.
This is the slot-space image of the ABI's per-frame register spills; see
DESIGN.md ("Fidelity statement").

Addresses are plain Python ints; memory is word (8-byte) granular and the
cache models group words into 64-byte lines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.ir.values import WORD_BYTES

#: Start of the workload data segment.
DATA_BASE = 0x0001_0000

#: Base of the reserved register-checkpoint storage (Section 4.2).
CKPT_BASE = 0x4000_0000

#: Bytes of checkpoint storage reserved per call-depth frame (512 slots).
CKPT_FRAME_STRIDE = 0x1000

#: Maximum supported call depth per core.
MAX_CALL_DEPTH = 64

#: Bytes of checkpoint storage reserved per core.
CKPT_CORE_STRIDE = CKPT_FRAME_STRIDE * MAX_CALL_DEPTH

#: Maximum number of architectural registers supported by checkpoint storage.
MAX_REGS = CKPT_FRAME_STRIDE // WORD_BYTES


def ckpt_slot_addr(core_id: int, reg_index: int, depth: int = 0) -> int:
    """Checkpoint-slot address for (core, call depth, register)."""
    if not 0 <= reg_index < MAX_REGS:
        raise ValueError(f"register index {reg_index} outside checkpoint storage")
    if not 0 <= depth < MAX_CALL_DEPTH:
        raise ValueError(f"call depth {depth} outside checkpoint storage")
    return (
        CKPT_BASE
        + core_id * CKPT_CORE_STRIDE
        + depth * CKPT_FRAME_STRIDE
        + reg_index * WORD_BYTES
    )


def is_ckpt_addr(addr: int, num_cores: int = 64) -> bool:
    """True if ``addr`` falls inside the reserved checkpoint storage."""
    return CKPT_BASE <= addr < CKPT_BASE + num_cores * CKPT_CORE_STRIDE


class Module:
    """A program: named functions plus a static data segment."""

    __slots__ = ("name", "functions", "_next_addr", "initial_data", "symbols")

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self._next_addr = DATA_BASE
        #: addr -> initial word value for statically initialised data.
        self.initial_data: Dict[int, int] = {}
        #: symbolic name -> base address for allocated objects.
        self.symbols: Dict[str, int] = {}

    # -- functions ---------------------------------------------------------

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        return self.functions[name]

    # -- data segment ------------------------------------------------------

    def alloc(
        self,
        name: str,
        num_words: int,
        init: Optional[List[int]] = None,
        align: int = 64,
    ) -> int:
        """Allocate ``num_words`` 8-byte words; return the base address.

        ``init`` optionally provides initial word values (zero-filled
        otherwise — the simulated memory defaults to zero).  Allocations are
        line-aligned by default so distinct objects never share a cache
        line, keeping workload cache behaviour predictable.
        """
        if num_words <= 0:
            raise ValueError("allocation must have at least one word")
        if name in self.symbols:
            raise ValueError(f"duplicate symbol {name!r}")
        base = (self._next_addr + align - 1) // align * align
        self._next_addr = base + num_words * WORD_BYTES
        if self._next_addr > CKPT_BASE:
            raise MemoryError("data segment overflows into checkpoint storage")
        self.symbols[name] = base
        if init is not None:
            if len(init) > num_words:
                raise ValueError("initializer longer than allocation")
            for i, value in enumerate(init):
                self.initial_data[base + i * WORD_BYTES] = value
        return base

    @property
    def data_end(self) -> int:
        """First address past the allocated data segment."""
        return self._next_addr

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self.functions)} functions)>"
