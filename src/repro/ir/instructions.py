"""Instruction set of the reproduction IR.

The instruction set is deliberately small but complete enough to express
the paper's workloads: ALU arithmetic, loads/stores with base+offset
addressing, conditional and unconditional branches, calls/returns, memory
fences and atomic read-modify-write operations (which the Capri compiler
treats as region boundaries, Section 4.1), plus the two instruction kinds
the Capri compiler *inserts*:

* :class:`RegionBoundary` — delimits recoverable regions (Section 3.2).
* :class:`CheckpointStore` — a register-checkpointing store that persists a
  live-out register to its fixed checkpoint-array slot (Section 4.2).  It is
  "a regular store instruction with the register value as operand" and is
  counted against the region store threshold, but the architecture routes it
  to dedicated register-file storage in the front-end proxy rather than a
  data proxy entry (Section 5.2.1).

Every instruction reports its defined and used registers (``defs()`` /
``uses()``) so the dataflow analyses stay instruction-agnostic, and a
``store_count`` so the region-formation pass can budget regions uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.ir.values import Imm, Operand, Reg, wrap_word

# ---------------------------------------------------------------------------
# Operator tables
# ---------------------------------------------------------------------------


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0  # ARM-style: integer divide by zero yields 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _srem(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _sdiv(a, b) * b


BINARY_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _sdiv,
    "rem": _srem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: a >> (b & 63),
    "slt": lambda a, b: int(a < b),
    "sle": lambda a, b: int(a <= b),
    "sgt": lambda a, b: int(a > b),
    "sge": lambda a, b: int(a >= b),
    "seq": lambda a, b: int(a == b),
    "sne": lambda a, b: int(a != b),
    "min": min,
    "max": max,
}

UNARY_OPS: Dict[str, Callable[[int], int]] = {
    "neg": lambda a: -a,
    "not": lambda a: ~a,
    "abs": abs,
}

# Atomic read-modify-write operators.  ``swap`` ignores the old value.
ATOMIC_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda old, v: old + v,
    "and": lambda old, v: old & v,
    "or": lambda old, v: old | v,
    "xor": lambda old, v: old ^ v,
    "swap": lambda old, v: v,
    "max": max,
    "min": min,
}


def eval_binop(op: str, a: int, b: int) -> int:
    """Evaluate a binary ALU operator on machine words."""
    return wrap_word(BINARY_OPS[op](a, b))


def eval_unop(op: str, a: int) -> int:
    """Evaluate a unary ALU operator on a machine word."""
    return wrap_word(UNARY_OPS[op](a))


def eval_atomic(op: str, old: int, value: int) -> int:
    """Evaluate an atomic RMW operator, returning the new memory value."""
    return wrap_word(ATOMIC_OPS[op](old, value))


# ---------------------------------------------------------------------------
# Instruction classes
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Instr:
    """Base class for all IR instructions."""

    # Subclasses override these class-level traits.
    def defs(self) -> Tuple[Reg, ...]:
        """Registers written by this instruction."""
        return ()

    def uses(self) -> Tuple[Reg, ...]:
        """Registers read by this instruction."""
        return ()

    @property
    def is_terminator(self) -> bool:
        """True if this instruction ends a basic block."""
        return False

    @property
    def store_count(self) -> int:
        """Dynamic stores contributed per execution (for region budgeting).

        Checkpoint stores count as regular stores for the region threshold
        (Section 3.2: "including both regular and checkpointing stores").
        """
        return 0

    @property
    def is_region_boundary_point(self) -> bool:
        """True if the Capri compiler must place a region boundary here.

        Fences and atomics force boundaries because they are critical for
        multi-threaded correctness (Section 4.1).
        """
        return False

    def _operand_uses(self, *operands: Operand) -> Tuple[Reg, ...]:
        return tuple(op for op in operands if isinstance(op, Reg))


@dataclass(slots=True)
class Nop(Instr):
    """No operation; used as a placeholder by rewriting passes."""

    def __repr__(self) -> str:
        return "nop"


@dataclass(slots=True)
class BinOp(Instr):
    """``dst = lhs <op> rhs`` for ``op`` in :data:`BINARY_OPS`."""

    op: str
    dst: Reg
    lhs: Operand
    rhs: Operand

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


@dataclass(slots=True)
class UnOp(Instr):
    """``dst = <op> src`` for ``op`` in :data:`UNARY_OPS`."""

    op: str
    dst: Reg
    src: Operand

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.src)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.src}"


@dataclass(slots=True)
class Move(Instr):
    """``dst = src`` (register copy or immediate load)."""

    dst: Reg
    src: Operand

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.src)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass(slots=True)
class Load(Instr):
    """``dst = mem[addr + offset]`` — a word load."""

    dst: Reg
    addr: Operand
    offset: int = 0

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.addr)

    def __repr__(self) -> str:
        return f"{self.dst} = load [{self.addr}+{self.offset}]"


@dataclass(slots=True)
class Store(Instr):
    """``mem[addr + offset] = value`` — a word store."""

    value: Operand
    addr: Operand
    offset: int = 0

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.value, self.addr)

    @property
    def store_count(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"store [{self.addr}+{self.offset}] = {self.value}"


@dataclass(slots=True)
class Jump(Instr):
    """Unconditional branch to a block label."""

    target: str

    @property
    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"jump {self.target}"


@dataclass(slots=True)
class Branch(Instr):
    """Conditional branch: go to ``if_true`` when ``cond != 0``."""

    cond: Operand
    if_true: str
    if_false: str

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.cond)

    @property
    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"branch {self.cond} ? {self.if_true} : {self.if_false}"


@dataclass(slots=True)
class Call(Instr):
    """Call ``callee`` with argument operands; optional return register.

    Arguments are copied into the callee's parameter registers (r0..rN-1)
    by the machine; the callee's return value (if any) lands in ``dst``.
    Function entry/exit are region-boundary points in the Capri compiler
    (Section 4.1), so calls always begin a fresh region in the caller.
    """

    callee: str
    args: Tuple[Operand, ...] = ()
    dst: Optional[Reg] = None

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,) if self.dst is not None else ()

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(*self.args)

    @property
    def is_region_boundary_point(self) -> bool:
        return True

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        dst = f"{self.dst} = " if self.dst is not None else ""
        return f"{dst}call {self.callee}({args})"


@dataclass(slots=True)
class Ret(Instr):
    """Return from the current function with an optional value."""

    value: Optional[Operand] = None

    def uses(self) -> Tuple[Reg, ...]:
        if self.value is None:
            return ()
        return self._operand_uses(self.value)

    @property
    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


@dataclass(slots=True)
class Halt(Instr):
    """Stop the executing hart (used by top-level workload code)."""

    @property
    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "halt"


@dataclass(slots=True)
class Fence(Instr):
    """Full memory fence; a mandatory region boundary point (Section 4.1)."""

    @property
    def is_region_boundary_point(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "fence"


@dataclass(slots=True)
class AtomicRMW(Instr):
    """Atomic read-modify-write: ``dst = mem[addr+offset]; mem[..] op= value``.

    Atomics are mandatory region boundary points (Section 4.1) and count as
    one store against the region threshold.
    """

    op: str
    dst: Reg
    addr: Operand
    value: Operand
    offset: int = 0

    def __post_init__(self) -> None:
        if self.op not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic op {self.op!r}")

    def defs(self) -> Tuple[Reg, ...]:
        return (self.dst,)

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.addr, self.value)

    @property
    def store_count(self) -> int:
        return 1

    @property
    def is_region_boundary_point(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.dst} = atomic_{self.op} [{self.addr}+{self.offset}], {self.value}"


# ---------------------------------------------------------------------------
# Capri-inserted instructions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class RegionBoundary(Instr):
    """Region boundary marker inserted by the Capri compiler.

    At runtime the boundary commits the current region: the architecture
    appends a boundary delimiter entry to the front-end proxy buffer (if the
    region produced any data proxy entries — Section 5.2.1's traffic
    optimization) and the machine records the recovery continuation.

    ``region_id`` is assigned by the region-formation pass and is unique
    within a function.
    """

    region_id: int = -1

    def __repr__(self) -> str:
        return f"region_boundary #{self.region_id}"


@dataclass(slots=True)
class CheckpointStore(Instr):
    """Persist register ``src`` to its checkpoint-array slot.

    Semantically a store of ``src`` to ``CKPT_BASE + src.index * 8`` for the
    executing core; it counts against the region store threshold but is
    routed to the front-end proxy's dedicated register-file storage rather
    than a data proxy entry (Section 5.2.1).

    ``pruned_recovery`` marks checkpoints that the optimal-pruning pass
    (Section 4.4.1) replaced with recovery code; such instructions are
    removed from the instruction stream and only survive as metadata.
    """

    src: Reg

    def uses(self) -> Tuple[Reg, ...]:
        return (self.src,)

    @property
    def store_count(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"ckpt {self.src}"


@dataclass(slots=True)
class IOWrite(Instr):
    """Emit ``value`` to external device ``port`` (console, NIC, disk).

    I/O is the non-recoverable operation the paper leaves open
    (Section 3.3): its effect leaves the persistence domain.  Following
    the paper's sketch, the compiler isolates each I/O in its own region
    (boundary point before it, and region formation also closes the
    region right after), so on crash recovery at most the single
    interrupted I/O is reissued — at-least-once delivery, with the
    machine's I/O log making duplicates observable to tests.
    """

    port: int
    value: Operand

    def uses(self) -> Tuple[Reg, ...]:
        return self._operand_uses(self.value)

    @property
    def is_region_boundary_point(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"io[{self.port}] = {self.value}"


def is_memory_access(instr: Instr) -> bool:
    """True for instructions that touch data memory."""
    return isinstance(instr, (Load, Store, AtomicRMW, CheckpointStore))


def terminator_targets(instr: Instr) -> Sequence[str]:
    """Successor block labels of a terminator instruction."""
    if isinstance(instr, Jump):
        return (instr.target,)
    if isinstance(instr, Branch):
        return (instr.if_true, instr.if_false)
    if isinstance(instr, (Ret, Halt)):
        return ()
    raise TypeError(f"{instr!r} is not a terminator")
