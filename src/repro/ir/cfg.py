"""Control-flow graph utilities: successors/predecessors, dominators, loops.

The Capri compiler needs three CFG facts:

* predecessor/successor maps and a reverse postorder for the dataflow
  solver (:mod:`repro.ir.dataflow`),
* a dominator tree to identify natural-loop back edges,
* natural loops with their headers and bodies — loop headers are mandatory
  region-boundary points (Section 4.1) and loops are the target of
  speculative unrolling (Section 4.3) and checkpoint LICM (Section 4.4.2).

Dominators use the Cooper–Harvey–Kennedy iterative algorithm, which is
simple and fast enough for the function sizes we build.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.function import Function


class CFG:
    """Successor/predecessor maps and orderings for a function's blocks."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.entry = func.entry.label
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {label: [] for label in func.blocks}
        for label, block in func.blocks.items():
            succs = block.successors()
            self.succs[label] = succs
            for s in succs:
                if s not in self.preds:
                    raise KeyError(
                        f"block {label!r} branches to unknown label {s!r}"
                    )
                self.preds[s].append(label)
        self.rpo = self._reverse_postorder()
        self.rpo_index = {label: i for i, label in enumerate(self.rpo)}

    def _reverse_postorder(self) -> List[str]:
        seen: Set[str] = set()
        postorder: List[str] = []
        # Iterative DFS to avoid recursion limits on long CFGs.
        stack: List[Tuple[str, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            label, child_idx = stack[-1]
            succs = self.succs[label]
            if child_idx < len(succs):
                stack[-1] = (label, child_idx + 1)
                child = succs[child_idx]
                if child not in seen:
                    seen.add(child)
                    stack.append((child, 0))
            else:
                postorder.append(label)
                stack.pop()
        return list(reversed(postorder))

    @property
    def reachable(self) -> Set[str]:
        """Labels reachable from the entry block."""
        return set(self.rpo)


class DomTree:
    """Dominator tree (Cooper–Harvey–Kennedy iterative algorithm)."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.idom: Dict[str, Optional[str]] = self._compute()

    def _compute(self) -> Dict[str, Optional[str]]:
        rpo = self.cfg.rpo
        index = self.cfg.rpo_index
        idom: Dict[str, Optional[str]] = {label: None for label in rpo}
        idom[self.cfg.entry] = self.cfg.entry

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.cfg.entry:
                    continue
                new_idom: Optional[str] = None
                for pred in self.cfg.preds[label]:
                    if pred not in index or idom.get(pred) is None:
                        continue  # unreachable or not yet processed
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
                if new_idom is not None and idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        idom[self.cfg.entry] = None  # entry has no immediate dominator
        return idom

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexively)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False


class Loop:
    """A natural loop: header plus the body blocks reaching its back edge.

    ``latches`` are the blocks with back edges to the header.  ``exits`` are
    (block-in-loop, successor-outside-loop) pairs.  ``depth`` is the nesting
    depth (1 = outermost); ``parent`` the innermost enclosing loop, if any.
    """

    def __init__(self, header: str, body: FrozenSet[str], latches: Tuple[str, ...]) -> None:
        self.header = header
        self.body = body
        self.latches = latches
        self.parent: Optional["Loop"] = None
        self.depth = 1

    def exits(self, cfg: CFG) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for label in sorted(self.body):
            for succ in cfg.succs[label]:
                if succ not in self.body:
                    out.append((label, succ))
        return out

    def __contains__(self, label: str) -> bool:
        return label in self.body

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={len(self.body)} depth={self.depth}>"


def natural_loops(cfg: CFG, dom: Optional[DomTree] = None) -> List[Loop]:
    """Find all natural loops; back edges t->h where h dominates t.

    Back edges sharing a header are merged into a single loop, matching the
    usual LLVM LoopInfo behaviour the paper's passes build on.  Returned
    loops carry nesting (``parent``/``depth``) information and are ordered
    outermost-first.
    """
    dom = dom or DomTree(cfg)
    back_edges: Dict[str, List[str]] = {}
    for label in cfg.rpo:
        for succ in cfg.succs[label]:
            if succ in cfg.rpo_index and dom.dominates(succ, label):
                back_edges.setdefault(succ, []).append(label)

    loops: List[Loop] = []
    for header, latches in back_edges.items():
        body: Set[str] = {header}
        worklist = [t for t in latches if t != header]
        body.update(worklist)
        while worklist:
            node = worklist.pop()
            for pred in cfg.preds[node]:
                if pred not in body and pred in cfg.rpo_index:
                    body.add(pred)
                    worklist.append(pred)
        loops.append(Loop(header, frozenset(body), tuple(sorted(latches))))

    # Establish nesting: loop A is nested in B if A's header is in B's body
    # and A != B with A.body subset of B.body.
    loops.sort(key=lambda l: len(l.body))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1 :]:
            if inner.header in outer.body and inner.body <= outer.body:
                inner.parent = outer
                break
    for loop in loops:
        depth = 1
        p = loop.parent
        while p is not None:
            depth += 1
            p = p.parent
        loop.depth = depth
    loops.sort(key=lambda l: l.depth)
    return loops
