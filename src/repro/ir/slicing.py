"""Backward slicing over reaching definitions.

Checkpoint pruning (Section 4.4.1) replaces a removed checkpoint with "the
backward slice of the pruned checkpoint, including the branch" — the
instructions whose results the pruned register value depends on.  Given a
use site, :func:`backward_slice` collects the definition sites that
(transitively) feed it.

The slice is *speculable* only if every instruction in it is recomputable
from checkpointed inputs: pure ALU ops and moves qualify; loads, calls and
atomics do not (their memory inputs may have changed by recovery time).
The pruning pass uses :func:`slice_is_reconstructible` to decide.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import BinOp, Instr, Move, UnOp
from repro.ir.reaching import DefSite, ReachingDefs

#: Instruction classes safe to re-execute at recovery time.
_PURE = (BinOp, UnOp, Move)


def backward_slice(
    func: Function,
    rdefs: ReachingDefs,
    label: str,
    index: int,
    reg_index: int,
    max_sites: int = 64,
) -> Tuple[FrozenSet[DefSite], bool]:
    """Collect definition sites feeding ``reg_index`` at (label, index).

    Returns ``(sites, complete)``.  ``complete`` is False when the slice was
    abandoned — it grew past ``max_sites`` (recovery code would be too
    large) or reached the function entry without a defining instruction
    (the value flows in as a parameter, so there is nothing to slice).
    """
    result: Set[DefSite] = set()
    work: List[Tuple[str, int, int]] = [(label, index, reg_index)]
    while work:
        lbl, idx, reg = work.pop()
        sites = rdefs.reaching_defs_of(func, lbl, idx, reg)
        if not sites:
            return frozenset(result), False  # reaches entry (parameter)
        for site in sites:
            if site in result:
                continue
            result.add(site)
            if len(result) > max_sites:
                return frozenset(result), False
            s_label, s_index, _ = site
            instr = func.blocks[s_label].instrs[s_index]
            for use in instr.uses():
                work.append((s_label, s_index, use.index))
    return frozenset(result), True


def slice_is_reconstructible(func: Function, sites: FrozenSet[DefSite]) -> bool:
    """True if every instruction in the slice is safe to replay at recovery."""
    for s_label, s_index, _ in sites:
        if not isinstance(func.blocks[s_label].instrs[s_index], _PURE):
            return False
    return True


def slice_instructions(func: Function, sites: FrozenSet[DefSite]) -> List[Instr]:
    """Materialise the slice's instructions in layout order."""
    order = {label: i for i, label in enumerate(func.blocks)}
    ordered = sorted(sites, key=lambda s: (order[s[0]], s[1]))
    return [func.blocks[lbl].instrs[idx] for lbl, idx, _ in ordered]
