"""Reaching-definitions analysis.

A *definition* is a (block label, instruction index) pair whose instruction
writes some register.  The checkpoint-pruning pass (Section 4.4.1) uses
reaching definitions to build the backward slice that reconstructs a pruned
register value at recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.ir.cfg import CFG
from repro.ir.dataflow import solve_forward
from repro.ir.function import Function

#: A definition site: (block label, instruction index, register index).
DefSite = Tuple[str, int, int]


@dataclass
class ReachingDefs:
    """Reaching-definition facts for one function."""

    #: Definitions reaching the *entry* of each block.
    reach_in: Dict[str, FrozenSet[DefSite]]
    #: Definitions reaching the *exit* of each block.
    reach_out: Dict[str, FrozenSet[DefSite]]
    #: All definition sites of each register index.
    defs_of: Dict[int, FrozenSet[DefSite]]

    def reaching_at(self, func: Function, label: str, index: int) -> FrozenSet[DefSite]:
        """Definitions reaching immediately before ``block.instrs[index]``."""
        block = func.blocks[label]
        if not 0 <= index <= len(block.instrs):
            raise IndexError(index)
        live = set(self.reach_in[label])
        for i, instr in enumerate(block.instrs[:index]):
            for d in instr.defs():
                live = {site for site in live if site[2] != d.index}
                live.add((label, i, d.index))
        return frozenset(live)

    def reaching_defs_of(
        self, func: Function, label: str, index: int, reg_index: int
    ) -> FrozenSet[DefSite]:
        """Definition sites of ``reg_index`` reaching before instruction ``index``."""
        return frozenset(
            site
            for site in self.reaching_at(func, label, index)
            if site[2] == reg_index
        )


def compute_reaching_defs(func: Function, cfg: CFG | None = None) -> ReachingDefs:
    """Compute reaching definitions for every reachable block."""
    cfg = cfg or CFG(func)

    gen: Dict[str, FrozenSet[DefSite]] = {}
    kill_regs: Dict[str, FrozenSet[int]] = {}
    defs_of: Dict[int, set] = {}
    for label in cfg.rpo:
        block = func.blocks[label]
        last_def: Dict[int, DefSite] = {}
        for i, instr in enumerate(block.instrs):
            for d in instr.defs():
                site = (label, i, d.index)
                last_def[d.index] = site
                defs_of.setdefault(d.index, set()).add(site)
        gen[label] = frozenset(last_def.values())
        kill_regs[label] = frozenset(last_def.keys())

    def transfer(label: str, in_set: FrozenSet[DefSite]) -> FrozenSet[DefSite]:
        killed = kill_regs[label]
        survive = frozenset(site for site in in_set if site[2] not in killed)
        return survive | gen[label]

    reach_out = solve_forward(cfg, transfer)
    reach_in: Dict[str, FrozenSet[DefSite]] = {}
    for label in cfg.rpo:
        preds = [p for p in cfg.preds[label] if p in reach_out]
        reach_in[label] = (
            frozenset().union(*(reach_out[p] for p in preds)) if preds else frozenset()
        )
    return ReachingDefs(
        reach_in=reach_in,
        reach_out=reach_out,
        defs_of={r: frozenset(s) for r, s in defs_of.items()},
    )
