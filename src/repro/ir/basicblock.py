"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instructions import Instr, terminator_targets


class BasicBlock:
    """A labelled straight-line sequence of instructions.

    The final instruction must be a terminator (``Jump``/``Branch``/``Ret``/
    ``Halt``); the verifier enforces this.  Blocks are mutable — Capri's
    passes split, merge, clone and rewrite them in place.
    """

    __slots__ = ("label", "instrs")

    def __init__(self, label: str, instrs: Optional[List[Instr]] = None) -> None:
        self.label = label
        self.instrs: List[Instr] = instrs if instrs is not None else []

    @property
    def terminator(self) -> Instr:
        """The block's final (terminator) instruction."""
        if not self.instrs:
            raise ValueError(f"block {self.label!r} is empty")
        return self.instrs[-1]

    def successors(self) -> List[str]:
        """Labels of successor blocks, from the terminator."""
        return list(terminator_targets(self.terminator))

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instrs)} instrs)>"
