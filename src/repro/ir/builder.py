"""Fluent IR construction API.

Workloads in :mod:`repro.workloads` build their kernels through
:class:`IRBuilder` / :class:`FunctionBuilder` rather than constructing
instruction lists by hand.  The builder offers:

* automatic register allocation with optional debug names,
* implicit block chaining (starting a new block from an unterminated one
  inserts the fall-through jump),
* structured control flow via context managers — ``for_range``,
  ``while_loop``, ``if_then``, ``if_else`` — which expand to the plain
  CFG the Capri passes analyse.

Example
-------
>>> from repro.ir import IRBuilder
>>> b = IRBuilder("demo")
>>> arr = b.module.alloc("arr", 64)
>>> with b.function("sum", params=["base", "n"]) as f:
...     base, n = f.param(0), f.param(1)
...     acc = f.li(0)
...     with f.for_range(n) as i:
...         off = f.shl(i, 3)
...         addr = f.add(base, off)
...         v = f.load(addr)
...         f.move(acc, f.add(acc, v))
...     f.ret(acc)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AtomicRMW,
    BinOp,
    Branch,
    Call,
    Fence,
    Halt,
    Instr,
    Jump,
    Load,
    Move,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import Module
from repro.ir.values import Imm, Operand, Reg, as_operand

OperandLike = Union[Operand, int]


class FunctionBuilder:
    """Builds one :class:`~repro.ir.function.Function`.

    Use as a context manager (via :meth:`IRBuilder.function`) or call
    :meth:`finish` explicitly.  Emission methods that produce a value
    allocate and return a fresh destination register unless one is given.
    """

    def __init__(self, module: Module, name: str, params: Sequence[str] = ()) -> None:
        self.module = module
        self.func = Function(name, num_params=len(params), num_regs=len(params))
        self._reg_names: List[str] = list(params)
        self._label_counter = 0
        self._current: Optional[BasicBlock] = self.func.new_block("entry")

    # -- registers and labels ----------------------------------------------

    def reg(self, name: Optional[str] = None) -> Reg:
        """Allocate a fresh architectural register."""
        idx = self.func.num_regs
        self.func.num_regs += 1
        self._reg_names.append(name or f"t{idx}")
        return Reg(idx)

    def param(self, index: int) -> Reg:
        """The register holding parameter ``index``."""
        if not 0 <= index < self.func.num_params:
            raise IndexError(f"function has {self.func.num_params} params")
        return Reg(index)

    def label(self, hint: str = "bb") -> str:
        """Return a fresh, unique block label."""
        self._label_counter += 1
        return f"{hint}.{self._label_counter}"

    # -- block management ----------------------------------------------------

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError(
                "no open block: start one with start_block() after a terminator"
            )
        return self._current

    def start_block(self, label: str) -> BasicBlock:
        """Begin a new block; fall through from an unterminated predecessor."""
        if self._current is not None:
            self.emit(Jump(label))
        block = self.func.new_block(label)
        self._current = block
        return block

    @property
    def terminated(self) -> bool:
        """True if there is no open block to append into."""
        return self._current is None

    def emit(self, instr: Instr) -> Instr:
        self.current.append(instr)
        if instr.is_terminator:
            self._current = None
        return instr

    # -- simple instruction helpers ------------------------------------------

    def li(self, value: int, dst: Optional[Reg] = None) -> Reg:
        """Load an immediate into a (fresh or given) register."""
        dst = dst or self.reg()
        self.emit(Move(dst, Imm(value)))
        return dst

    def move(self, dst: Reg, src: OperandLike) -> Reg:
        self.emit(Move(dst, as_operand(src)))
        return dst

    def binop(
        self, op: str, lhs: OperandLike, rhs: OperandLike, dst: Optional[Reg] = None
    ) -> Reg:
        dst = dst or self.reg()
        self.emit(BinOp(op, dst, as_operand(lhs), as_operand(rhs)))
        return dst

    def unop(self, op: str, src: OperandLike, dst: Optional[Reg] = None) -> Reg:
        dst = dst or self.reg()
        self.emit(UnOp(op, dst, as_operand(src)))
        return dst

    # Convenience wrappers for the common ALU operators.
    def add(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("add", a, b, dst)

    def sub(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("sub", a, b, dst)

    def mul(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("mul", a, b, dst)

    def div(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("div", a, b, dst)

    def rem(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("rem", a, b, dst)

    def xor(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("xor", a, b, dst)

    def and_(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("and", a, b, dst)

    def or_(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("or", a, b, dst)

    def shl(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("shl", a, b, dst)

    def shr(self, a: OperandLike, b: OperandLike, dst: Optional[Reg] = None) -> Reg:
        return self.binop("shr", a, b, dst)

    def cmp(self, op: str, a: OperandLike, b: OperandLike) -> Reg:
        """Comparison producing 0/1 (``op`` in slt/sle/sgt/sge/seq/sne)."""
        return self.binop(op, a, b)

    def load(self, addr: OperandLike, offset: int = 0, dst: Optional[Reg] = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Load(dst, as_operand(addr), offset))
        return dst

    def store(self, value: OperandLike, addr: OperandLike, offset: int = 0) -> None:
        self.emit(Store(as_operand(value), as_operand(addr), offset))

    def call(
        self,
        callee: str,
        args: Sequence[OperandLike] = (),
        returns: bool = False,
    ) -> Optional[Reg]:
        dst = self.reg() if returns else None
        self.emit(Call(callee, tuple(as_operand(a) for a in args), dst))
        return dst

    def ret(self, value: Optional[OperandLike] = None) -> None:
        self.emit(Ret(as_operand(value) if value is not None else None))

    def halt(self) -> None:
        self.emit(Halt())

    def fence(self) -> None:
        self.emit(Fence())

    def atomic(
        self,
        op: str,
        addr: OperandLike,
        value: OperandLike,
        offset: int = 0,
        dst: Optional[Reg] = None,
    ) -> Reg:
        """Atomic RMW returning the old memory value."""
        dst = dst or self.reg()
        self.emit(AtomicRMW(op, dst, as_operand(addr), as_operand(value), offset))
        return dst

    def io_write(self, port: int, value: OperandLike) -> None:
        """Emit ``value`` to external device ``port`` (Section 3.3)."""
        from repro.ir.instructions import IOWrite

        self.emit(IOWrite(port, as_operand(value)))

    def jump(self, label: str) -> None:
        self.emit(Jump(label))

    def branch(self, cond: OperandLike, if_true: str, if_false: str) -> None:
        self.emit(Branch(as_operand(cond), if_true, if_false))

    # -- structured control flow ----------------------------------------------

    @contextmanager
    def for_range(
        self,
        stop: OperandLike,
        start: OperandLike = 0,
        step: int = 1,
        counter: Optional[Reg] = None,
    ) -> Iterator[Reg]:
        """``for i in range(start, stop, step)`` — yields the counter register.

        The loop condition uses ``i < stop`` (or ``i > stop`` for negative
        ``step``).  The trip count is *dynamic* from the compiler's point of
        view whenever ``stop`` is a register, which is exactly the case the
        paper's speculative unrolling targets (Section 4.3).
        """
        if step == 0:
            raise ValueError("for_range step must be nonzero")
        i = counter or self.reg("i")
        self.move(i, start)
        header = self.label("for.header")
        body = self.label("for.body")
        exit_ = self.label("for.exit")
        self.start_block(header)
        cond = self.cmp("slt" if step > 0 else "sgt", i, stop)
        self.branch(cond, body, exit_)
        self.start_block(body)
        yield i
        if not self.terminated:
            self.add(i, step, dst=i)
            self.jump(header)
        self.func.new_block(exit_)
        self._current = self.func.block(exit_)

    @contextmanager
    def while_loop(self, cond_emitter) -> Iterator[str]:
        """``while cond:`` — ``cond_emitter()`` emits the condition each trip.

        Yields the exit label so the body can break out via ``f.jump(exit)``.
        """
        header = self.label("while.header")
        body = self.label("while.body")
        exit_ = self.label("while.exit")
        self.start_block(header)
        cond = cond_emitter()
        self.branch(cond, body, exit_)
        self.start_block(body)
        yield exit_
        if not self.terminated:
            self.jump(header)
        self.func.new_block(exit_)
        self._current = self.func.block(exit_)

    @contextmanager
    def if_then(self, cond: OperandLike) -> Iterator[None]:
        """``if cond:`` with no else branch."""
        then = self.label("if.then")
        done = self.label("if.end")
        self.branch(cond, then, done)
        self.func.new_block(then)
        self._current = self.func.block(then)
        yield
        if not self.terminated:
            self.jump(done)
        self.func.new_block(done)
        self._current = self.func.block(done)

    @contextmanager
    def if_else(self, cond: OperandLike) -> Iterator["ElseHandle"]:
        """``if cond: ... else: ...`` — call ``handle.otherwise()`` for else."""
        then = self.label("if.then")
        els = self.label("if.else")
        done = self.label("if.end")
        self.branch(cond, then, els)
        self.func.new_block(then)
        self._current = self.func.block(then)
        handle = ElseHandle(self, els, done)
        yield handle
        if not self.terminated:
            self.jump(done)
        if not handle.entered_else:
            # No else body emitted: the else label must still exist.
            blk = self.func.new_block(els)
            blk.append(Jump(done))
        self.func.new_block(done)
        self._current = self.func.block(done)

    # -- finalisation -----------------------------------------------------------

    def finish(self) -> Function:
        """Seal the function, defaulting an open block to ``ret``."""
        if self._current is not None:
            self.emit(Ret())
        self.module.add_function(self.func)
        return self.func


class ElseHandle:
    """Handle yielded by :meth:`FunctionBuilder.if_else`."""

    def __init__(self, fb: FunctionBuilder, else_label: str, done_label: str) -> None:
        self._fb = fb
        self._else = else_label
        self._done = done_label
        self.entered_else = False

    def otherwise(self) -> None:
        """Switch emission from the then-branch to the else-branch."""
        if self.entered_else:
            raise RuntimeError("otherwise() called twice")
        if not self._fb.terminated:
            self._fb.jump(self._done)
        self.entered_else = True
        self._fb.func.new_block(self._else)
        self._fb._current = self._fb.func.block(self._else)


class IRBuilder:
    """Top-level builder owning a :class:`~repro.ir.module.Module`."""

    def __init__(self, module_or_name: Union[Module, str] = "module") -> None:
        if isinstance(module_or_name, Module):
            self.module = module_or_name
        else:
            self.module = Module(module_or_name)

    @contextmanager
    def function(self, name: str, params: Sequence[str] = ()) -> Iterator[FunctionBuilder]:
        """Context manager building a function and adding it to the module."""
        fb = FunctionBuilder(self.module, name, params)
        yield fb
        fb.finish()
