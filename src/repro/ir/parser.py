"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Lets kernels and test cases be written as plain text and round-trips with
``format_function``/``format_module``::

    func saxpy(params=3, regs=8):
      entry:
        r3 = #0
        jump loop
      loop:
        r4 = slt r3, r2
        branch r4 ? body : done
      body:
        r5 = load [r0+0]
        store [r1+0] = r5
        r3 = add r3, #1
        jump loop
      done:
        ret r3

Grammar (one instruction per line; ``#`` starts an immediate, ``rN`` a
register):

================================  =======================================
``rD = <op> a, b``                binary ALU (op in BINARY_OPS)
``rD = <op> a``                   unary ALU (op in UNARY_OPS)
``rD = a``                        move
``rD = load [a+off]``             load
``store [a+off] = v``             store
``rD = atomic_<op> [a+off], v``   atomic RMW
``jump L`` / ``branch c ? T : F``  control flow
``rD = call f(a, b)`` / ``call f()``  calls
``ret`` / ``ret v`` / ``halt``    returns
``fence`` / ``nop``               misc
``region_boundary #N``            Capri boundary
``ckpt rN``                       Capri checkpoint store
================================  =======================================
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    ATOMIC_OPS,
    BINARY_OPS,
    UNARY_OPS,
    AtomicRMW,
    BinOp,
    Branch,
    Call,
    CheckpointStore,
    Fence,
    Halt,
    Instr,
    Jump,
    Load,
    Move,
    Nop,
    RegionBoundary,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import Module
from repro.ir.values import Imm, Operand, Reg


class ParseError(Exception):
    """Raised on malformed IR text, with a line number."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_FUNC_RE = re.compile(
    r"^func\s+(?P<name>[\w.$-]+)\(params=(?P<params>\d+),\s*regs=(?P<regs>\d+)\):$"
)
_LABEL_RE = re.compile(r"^(?P<label>[\w.$-]+):$")
_MEM_RE = re.compile(r"^\[(?P<base>\S+?)(?P<off>[+-]\d+)\]$")


def _parse_operand(token: str, line_no: int, line: str) -> Operand:
    token = token.strip()
    if token.startswith("#"):
        try:
            return Imm(int(token[1:], 0))
        except ValueError:
            raise ParseError(line_no, line, f"bad immediate {token!r}")
    if token.startswith("r") and token[1:].isdigit():
        return Reg(int(token[1:]))
    raise ParseError(line_no, line, f"bad operand {token!r}")


def _parse_mem(token: str, line_no: int, line: str) -> Tuple[Operand, int]:
    m = _MEM_RE.match(token.strip())
    if not m:
        raise ParseError(line_no, line, f"bad memory operand {token!r}")
    base = _parse_operand(m.group("base"), line_no, line)
    return base, int(m.group("off"))


def _parse_reg(token: str, line_no: int, line: str) -> Reg:
    op = _parse_operand(token, line_no, line)
    if not isinstance(op, Reg):
        raise ParseError(line_no, line, f"expected a register, got {token!r}")
    return op


def parse_instruction(text: str, line_no: int = 0) -> Instr:
    """Parse one instruction line (the printer's format)."""
    line = text.strip()
    if line == "nop":
        return Nop()
    if line == "fence":
        return Fence()
    if line == "halt":
        return Halt()
    if line == "ret":
        return Ret()
    if line.startswith("ret "):
        return Ret(_parse_operand(line[4:], line_no, line))
    if line.startswith("jump "):
        return Jump(line[5:].strip())
    if line.startswith("branch "):
        m = re.match(r"^branch\s+(\S+)\s*\?\s*(\S+)\s*:\s*(\S+)$", line)
        if not m:
            raise ParseError(line_no, line, "bad branch")
        return Branch(
            _parse_operand(m.group(1), line_no, line), m.group(2), m.group(3)
        )
    if line.startswith("region_boundary"):
        m = re.match(r"^region_boundary\s+#(-?\d+)$", line)
        if not m:
            raise ParseError(line_no, line, "bad region_boundary")
        return RegionBoundary(int(m.group(1)))
    if line.startswith("ckpt "):
        return CheckpointStore(_parse_reg(line[5:], line_no, line))
    if line.startswith("io["):
        m = re.match(r"^io\[(\d+)\]\s*=\s*(\S+)$", line)
        if not m:
            raise ParseError(line_no, line, "bad io write")
        from repro.ir.instructions import IOWrite

        return IOWrite(int(m.group(1)), _parse_operand(m.group(2), line_no, line))
    if line.startswith("store "):
        m = re.match(r"^store\s+(\S+)\s*=\s*(\S+)$", line)
        if not m:
            raise ParseError(line_no, line, "bad store")
        base, off = _parse_mem(m.group(1), line_no, line)
        return Store(_parse_operand(m.group(2), line_no, line), base, off)
    if line.startswith("call ") or line.startswith("call("):
        return _parse_call(line, line_no, dst=None)

    # Assignments: "rD = <rhs>"
    m = re.match(r"^(r\d+)\s*=\s*(.+)$", line)
    if not m:
        raise ParseError(line_no, line, "unrecognised instruction")
    dst = _parse_reg(m.group(1), line_no, line)
    rhs = m.group(2).strip()

    if rhs.startswith("load "):
        base, off = _parse_mem(rhs[5:], line_no, line)
        return Load(dst, base, off)
    if rhs.startswith("call "):
        return _parse_call(rhs, line_no, dst=dst)
    m2 = re.match(r"^atomic_(\w+)\s+(\S+)\s*,\s*(\S+)$", rhs)
    if m2:
        op = m2.group(1)
        if op not in ATOMIC_OPS:
            raise ParseError(line_no, line, f"unknown atomic op {op!r}")
        base, off = _parse_mem(m2.group(2), line_no, line)
        return AtomicRMW(op, dst, base, _parse_operand(m2.group(3), line_no, line), off)
    m2 = re.match(r"^(\w+)\s+(\S+)\s*,\s*(\S+)$", rhs)
    if m2 and m2.group(1) in BINARY_OPS:
        return BinOp(
            m2.group(1),
            dst,
            _parse_operand(m2.group(2), line_no, line),
            _parse_operand(m2.group(3), line_no, line),
        )
    m2 = re.match(r"^(\w+)\s+(\S+)$", rhs)
    if m2 and m2.group(1) in UNARY_OPS:
        return UnOp(m2.group(1), dst, _parse_operand(m2.group(2), line_no, line))
    # Bare operand: a move.
    if re.match(r"^(#-?\w+|r\d+)$", rhs):
        return Move(dst, _parse_operand(rhs, line_no, line))
    raise ParseError(line_no, line, "unrecognised instruction")


def _parse_call(text: str, line_no: int, dst: Optional[Reg]) -> Call:
    m = re.match(r"^call\s+([\w.$-]+)\((.*)\)$", text.strip())
    if not m:
        raise ParseError(line_no, text, "bad call")
    args_text = m.group(2).strip()
    args: Tuple[Operand, ...] = ()
    if args_text:
        args = tuple(
            _parse_operand(a, line_no, text) for a in args_text.split(",")
        )
    return Call(m.group(1), args, dst)


def parse_function(text: str, start_line: int = 1) -> Function:
    """Parse one ``func …:`` block (the printer's format)."""
    lines = text.splitlines()
    func: Optional[Function] = None
    block: Optional[BasicBlock] = None
    for offset, raw in enumerate(lines):
        line_no = start_line + offset
        line = raw.split(";", 1)[0].strip()  # ';' starts a comment
        if not line:
            continue
        m = _FUNC_RE.match(line)
        if m:
            if func is not None:
                raise ParseError(line_no, raw, "nested func")
            func = Function(
                m.group("name"),
                num_params=int(m.group("params")),
                num_regs=int(m.group("regs")),
            )
            continue
        if func is None:
            raise ParseError(line_no, raw, "instruction before func header")
        m = _LABEL_RE.match(line)
        if m:
            block = func.new_block(m.group("label"))
            continue
        if block is None:
            raise ParseError(line_no, raw, "instruction before a label")
        block.append(parse_instruction(line, line_no))
    if func is None:
        raise ParseError(start_line, text[:40], "no func header found")
    return func


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse multiple functions into a module.

    Data-segment symbols are not expressed in text; allocate them on the
    returned module before running.
    """
    module = Module(name)
    chunks: List[Tuple[int, List[str]]] = []
    current: Optional[List[str]] = None
    for i, raw in enumerate(text.splitlines(), start=1):
        if raw.strip().startswith("func "):
            current = [raw]
            chunks.append((i, current))
        elif current is not None:
            current.append(raw)
    if not chunks:
        raise ParseError(1, text[:40], "no functions found")
    for start, lines in chunks:
        module.add_function(parse_function("\n".join(lines), start))
    return module
