"""Compiler IR substrate for the Capri reproduction.

This package implements a small register-based intermediate representation
(IR) that plays the role LLVM 13 plays in the paper: the Capri compiler
passes in :mod:`repro.compiler` analyse and rewrite programs expressed in
this IR, and the functional machine in :mod:`repro.isa` executes it.

Design points
-------------
* Registers are *architectural*: a function declares how many registers it
  uses and they are identified by small integer indices.  This mirrors the
  paper's checkpoint storage, a global array with one fixed slot per
  architectural register (Section 4.2).
* The IR is not SSA.  Capri's analyses (liveness, reaching definitions,
  backward slicing) are classic bit-vector dataflow problems over a CFG of
  basic blocks, which is exactly what the paper's checkpoint-set analysis
  needs.
* Capri-specific instructions (:class:`~repro.ir.instructions.RegionBoundary`
  and :class:`~repro.ir.instructions.CheckpointStore`) are first-class
  members of the instruction set so that instrumented and uninstrumented
  programs flow through the same executor and simulator.
"""

from repro.ir.values import Reg, Imm, Operand
from repro.ir.instructions import (
    Instr,
    BinOp,
    UnOp,
    Move,
    Load,
    Store,
    Jump,
    Branch,
    Call,
    Ret,
    Halt,
    Fence,
    AtomicRMW,
    IOWrite,
    RegionBoundary,
    CheckpointStore,
    Nop,
    BINARY_OPS,
    UNARY_OPS,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder, FunctionBuilder
from repro.ir.cfg import CFG, DomTree, Loop, natural_loops
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.reaching import ReachingDefs, compute_reaching_defs
from repro.ir.slicing import backward_slice
from repro.ir.verifier import VerificationError, verify_function, verify_module
from repro.ir.printer import format_function, format_module
from repro.ir.parser import (
    ParseError,
    parse_function,
    parse_instruction,
    parse_module,
)

__all__ = [
    "Reg",
    "Imm",
    "Operand",
    "Instr",
    "BinOp",
    "UnOp",
    "Move",
    "Load",
    "Store",
    "Jump",
    "Branch",
    "Call",
    "Ret",
    "Halt",
    "Fence",
    "AtomicRMW",
    "IOWrite",
    "RegionBoundary",
    "CheckpointStore",
    "Nop",
    "BINARY_OPS",
    "UNARY_OPS",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "FunctionBuilder",
    "CFG",
    "DomTree",
    "Loop",
    "natural_loops",
    "LivenessInfo",
    "compute_liveness",
    "ReachingDefs",
    "compute_reaching_defs",
    "backward_slice",
    "VerificationError",
    "verify_function",
    "verify_module",
    "format_function",
    "format_module",
    "ParseError",
    "parse_function",
    "parse_instruction",
    "parse_module",
]
