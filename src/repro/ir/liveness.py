"""Register liveness analysis.

The Capri compiler checkpoints the *live-in* register set at region
boundaries: "the compiler performs static analysis over the control flow
graph to identify live-in registers to the next region" (Section 3.2).
This module provides block-level live-in/live-out sets plus an
instruction-level refinement used when boundaries fall mid-block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.ir.cfg import CFG
from repro.ir.dataflow import solve_backward
from repro.ir.function import Function


@dataclass
class LivenessInfo:
    """Per-block liveness facts for one function."""

    live_in: Dict[str, FrozenSet[int]]
    live_out: Dict[str, FrozenSet[int]]

    def live_before_index(self, func: Function, label: str, index: int) -> FrozenSet[int]:
        """Registers live immediately before ``block.instrs[index]``.

        Computed by walking the block backwards from its live-out set.
        ``index == len(instrs)`` gives the live-out set itself.
        """
        block = func.blocks[label]
        if not 0 <= index <= len(block.instrs):
            raise IndexError(index)
        live = set(self.live_out[label])
        for instr in reversed(block.instrs[index:]):
            for d in instr.defs():
                live.discard(d.index)
            for u in instr.uses():
                live.add(u.index)
        return frozenset(live)


def _block_use_def(func: Function, label: str) -> tuple[FrozenSet[int], FrozenSet[int]]:
    """(use, def) sets: use = upward-exposed reads, def = any write."""
    uses: set[int] = set()
    defs: set[int] = set()
    for instr in func.blocks[label].instrs:
        for u in instr.uses():
            if u.index not in defs:
                uses.add(u.index)
        for d in instr.defs():
            defs.add(d.index)
    return frozenset(uses), frozenset(defs)


def compute_liveness(func: Function, cfg: CFG | None = None) -> LivenessInfo:
    """Compute live-in/live-out register-index sets for every reachable block."""
    cfg = cfg or CFG(func)
    use_def = {label: _block_use_def(func, label) for label in cfg.rpo}

    def transfer(label: str, out: FrozenSet[int]) -> FrozenSet[int]:
        use, defs = use_def[label]
        return use | (out - defs)

    live_in = solve_backward(cfg, transfer)
    live_out: Dict[str, FrozenSet[int]] = {}
    for label in cfg.rpo:
        succs = cfg.succs[label]
        live_out[label] = (
            frozenset().union(*(live_in[s] for s in succs if s in live_in))
            if succs
            else frozenset()
        )
    return LivenessInfo(live_in=live_in, live_out=live_out)
