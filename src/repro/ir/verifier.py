"""Structural verification of IR modules.

Run after construction and after every Capri pass; rewriting bugs (dangling
labels, unterminated blocks, out-of-range registers) surface here instead
of deep inside the simulator.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Call, Instr, terminator_targets
from repro.ir.module import MAX_REGS, Module
from repro.ir.values import Reg


class VerificationError(Exception):
    """Raised when an IR structural invariant is violated."""


def verify_function(func: Function, module: Module | None = None) -> None:
    """Check structural invariants of one function.

    * at least one block; every block non-empty and ending in a terminator,
    * no terminator in the middle of a block,
    * branch targets exist,
    * register indices within ``num_regs`` (and the checkpoint-storage cap),
    * called functions exist and arity matches (when a module is given).
    """
    if not func.blocks:
        raise VerificationError(f"{func.name}: function has no blocks")
    if func.num_regs > MAX_REGS:
        raise VerificationError(
            f"{func.name}: {func.num_regs} registers exceeds checkpoint "
            f"storage capacity ({MAX_REGS})"
        )
    for label, block in func.blocks.items():
        if not block.instrs:
            raise VerificationError(f"{func.name}/{label}: empty block")
        for i, instr in enumerate(block.instrs):
            is_last = i == len(block.instrs) - 1
            if instr.is_terminator and not is_last:
                raise VerificationError(
                    f"{func.name}/{label}[{i}]: terminator {instr!r} mid-block"
                )
            if is_last and not instr.is_terminator:
                raise VerificationError(
                    f"{func.name}/{label}: block does not end in a terminator "
                    f"(ends with {instr!r})"
                )
            _check_registers(func, label, i, instr)
            if module is not None and isinstance(instr, Call):
                callee = module.functions.get(instr.callee)
                if callee is None:
                    raise VerificationError(
                        f"{func.name}/{label}[{i}]: call to unknown function "
                        f"{instr.callee!r}"
                    )
                if len(instr.args) != callee.num_params:
                    raise VerificationError(
                        f"{func.name}/{label}[{i}]: call to {instr.callee!r} "
                        f"passes {len(instr.args)} args, expected "
                        f"{callee.num_params}"
                    )
        for target in terminator_targets(block.terminator):
            if target not in func.blocks:
                raise VerificationError(
                    f"{func.name}/{label}: branch to unknown label {target!r}"
                )


def _check_registers(func: Function, label: str, index: int, instr: Instr) -> None:
    for reg in (*instr.defs(), *instr.uses()):
        if not isinstance(reg, Reg):
            raise VerificationError(
                f"{func.name}/{label}[{index}]: non-register in defs/uses"
            )
        if reg.index >= func.num_regs:
            raise VerificationError(
                f"{func.name}/{label}[{index}]: {reg!r} out of range "
                f"(num_regs={func.num_regs})"
            )


def verify_module(module: Module) -> None:
    """Verify every function in the module."""
    for func in module.functions.values():
        verify_function(func, module)
