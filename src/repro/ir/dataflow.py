"""Generic iterative dataflow solver over block-level transfer functions.

Both liveness (backward, union) and reaching definitions (forward, union)
are instances of this worklist solver.  Facts are Python ``frozenset``-like
sets; transfer functions are supplied per block.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Iterable, TypeVar

from repro.ir.cfg import CFG

T = TypeVar("T")

TransferFn = Callable[[str, FrozenSet[T]], FrozenSet[T]]


def solve_backward(
    cfg: CFG,
    transfer: TransferFn,
    init: FrozenSet[T] = frozenset(),
    boundary: FrozenSet[T] = frozenset(),
) -> Dict[str, FrozenSet[T]]:
    """Solve a backward may-analysis (union meet).

    Returns the IN set of every reachable block, where
    ``IN[b] = transfer(b, OUT[b])`` and ``OUT[b] = U IN[succ]``.
    Exit blocks (no successors) use ``boundary`` as their OUT set.
    """
    in_sets: Dict[str, FrozenSet[T]] = {label: init for label in cfg.rpo}
    worklist = deque(reversed(cfg.rpo))
    queued = set(worklist)
    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        succs = cfg.succs[label]
        if succs:
            out: FrozenSet[T] = frozenset().union(
                *(in_sets[s] for s in succs if s in in_sets)
            )
        else:
            out = boundary
        new_in = transfer(label, out)
        if new_in != in_sets[label]:
            in_sets[label] = new_in
            for pred in cfg.preds[label]:
                if pred in in_sets and pred not in queued:
                    worklist.append(pred)
                    queued.add(pred)
    return in_sets


def solve_forward(
    cfg: CFG,
    transfer: TransferFn,
    init: FrozenSet[T] = frozenset(),
    boundary: FrozenSet[T] = frozenset(),
) -> Dict[str, FrozenSet[T]]:
    """Solve a forward may-analysis (union meet).

    Returns the OUT set of every reachable block, where
    ``OUT[b] = transfer(b, IN[b])`` and ``IN[b] = U OUT[pred]``.
    The entry block uses ``boundary`` as its IN set.
    """
    out_sets: Dict[str, FrozenSet[T]] = {label: init for label in cfg.rpo}
    worklist = deque(cfg.rpo)
    queued = set(worklist)
    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        preds = [p for p in cfg.preds[label] if p in out_sets]
        if label == cfg.entry:
            in_set: FrozenSet[T] = boundary
            if preds:  # entry can also be a loop header
                in_set = in_set.union(*(out_sets[p] for p in preds))
        elif preds:
            in_set = frozenset().union(*(out_sets[p] for p in preds))
        else:
            in_set = boundary
        new_out = transfer(label, in_set)
        if new_out != out_sets[label]:
            out_sets[label] = new_out
            for succ in cfg.succs[label]:
                if succ in out_sets and succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return out_sets
