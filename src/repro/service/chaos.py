"""Deterministic power-failure schedules for chaos testing.

A :class:`CrashSchedule` pre-plans which (tenant, per-tenant request
ordinal) pairs lose power, and at which observer-event index inside that
request's execution — reusing :class:`repro.arch.crash.CrashInjector`
exactly as the fault campaign does, but live, inside a serving tenant.

Schedules are seeded and independent of wall clock or asyncio
interleaving: a tenant counts its own apply-attempts (replays included)
and recovery-attempts, so a given seed produces the same injection
points run after run.

Two kinds of failure are planned:

* *execution* crashes — (tenant, apply-attempt ordinal) -> observer
  event index inside that request's run, and
* *recovery* crashes — (tenant, recovery-attempt ordinal) -> durable
  step index inside :func:`repro.arch.recovery.run_recovery`, modelling
  power dying again while the lights were already out.  Re-entrant
  recovery makes these survivable: the tenant re-enters over the
  recovery-crashed domain.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

#: Recovery-attempt ordinals eligible for planned recovery crashes (the
#: first few recoveries of a tenant; later ones are increasingly rare).
_RECOVERY_ORDINALS = 4


class CrashSchedule:
    """Seeded plan: (tenant, attempt ordinal) -> crash event index."""

    def __init__(
        self,
        plans: Dict[Tuple[str, int], int],
        seed: int = 0,
        recovery_plans: Optional[Dict[Tuple[str, int], int]] = None,
    ) -> None:
        self._plans = dict(plans)
        self._recovery_plans = dict(recovery_plans or {})
        self.seed = seed
        self.fired = 0

    @classmethod
    def plan(
        cls,
        tenant_ids: Sequence[str],
        crashes: int,
        requests_per_tenant: int,
        seed: int = 0,
        event_range: Tuple[int, int] = (1, 35),
        recovery_crashes: int = 0,
        recovery_step_range: Tuple[int, int] = (1, 12),
    ) -> "CrashSchedule":
        """Spread ``crashes`` failures across tenants and request ordinals.

        Event indices default to early-in-request positions so planned
        crashes actually fire (a plan past the request's last event is a
        no-op, exactly like a campaign crash past end-of-program; a
        single KV op produces roughly 40 observer events).

        ``recovery_crashes`` additionally plans that many power failures
        *inside recovery* (nested failures), keyed by the tenant's
        recovery-attempt ordinal; a step index past the recovery's
        actual step count is a no-op, same as above.
        """
        rng = random.Random(seed)
        plans: Dict[Tuple[str, int], int] = {}
        if not tenant_ids or requests_per_tenant < 1:
            return cls(plans, seed)
        universe = [
            (tid, ordinal)
            for tid in tenant_ids
            for ordinal in range(requests_per_tenant)
        ]
        picks = rng.sample(universe, min(crashes, len(universe)))
        for tid, ordinal in picks:
            plans[(tid, ordinal)] = rng.randint(*event_range)
        recovery_plans: Dict[Tuple[str, int], int] = {}
        if recovery_crashes > 0:
            r_universe = [
                (tid, ordinal)
                for tid in tenant_ids
                for ordinal in range(_RECOVERY_ORDINALS)
            ]
            r_picks = rng.sample(
                r_universe, min(recovery_crashes, len(r_universe))
            )
            for tid, ordinal in r_picks:
                recovery_plans[(tid, ordinal)] = rng.randint(
                    *recovery_step_range
                )
        return cls(plans, seed, recovery_plans=recovery_plans)

    @classmethod
    def never(cls) -> "CrashSchedule":
        return cls({}, seed=0)

    def crash_event(self, tenant_id: str, ordinal: int) -> Optional[int]:
        """Event index to crash this attempt at, or ``None``."""
        return self._plans.get((tenant_id, ordinal))

    def recovery_crash_event(
        self, tenant_id: str, ordinal: int
    ) -> Optional[int]:
        """Recovery step index to crash this recovery attempt at, or
        ``None``."""
        return self._recovery_plans.get((tenant_id, ordinal))

    def note_fired(self) -> None:
        self.fired += 1

    @property
    def planned(self) -> int:
        return len(self._plans)

    @property
    def planned_recovery(self) -> int:
        return len(self._recovery_plans)
