"""Deterministic power-failure schedules for chaos testing.

A :class:`CrashSchedule` pre-plans which (tenant, per-tenant request
ordinal) pairs lose power, and at which observer-event index inside that
request's execution — reusing :class:`repro.arch.crash.CrashInjector`
exactly as the fault campaign does, but live, inside a serving tenant.

Schedules are seeded and independent of wall clock or asyncio
interleaving: a tenant counts its own apply-attempts (replays included),
so a given seed produces the same injection points run after run.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple


class CrashSchedule:
    """Seeded plan: (tenant, attempt ordinal) -> crash event index."""

    def __init__(
        self, plans: Dict[Tuple[str, int], int], seed: int = 0
    ) -> None:
        self._plans = dict(plans)
        self.seed = seed
        self.fired = 0

    @classmethod
    def plan(
        cls,
        tenant_ids: Sequence[str],
        crashes: int,
        requests_per_tenant: int,
        seed: int = 0,
        event_range: Tuple[int, int] = (1, 35),
    ) -> "CrashSchedule":
        """Spread ``crashes`` failures across tenants and request ordinals.

        Event indices default to early-in-request positions so planned
        crashes actually fire (a plan past the request's last event is a
        no-op, exactly like a campaign crash past end-of-program; a
        single KV op produces roughly 40 observer events).
        """
        rng = random.Random(seed)
        plans: Dict[Tuple[str, int], int] = {}
        if not tenant_ids or requests_per_tenant < 1:
            return cls(plans, seed)
        universe = [
            (tid, ordinal)
            for tid in tenant_ids
            for ordinal in range(requests_per_tenant)
        ]
        picks = rng.sample(universe, min(crashes, len(universe)))
        for tid, ordinal in picks:
            plans[(tid, ordinal)] = rng.randint(*event_range)
        return cls(plans, seed)

    @classmethod
    def never(cls) -> "CrashSchedule":
        return cls({}, seed=0)

    def crash_event(self, tenant_id: str, ordinal: int) -> Optional[int]:
        """Event index to crash this attempt at, or ``None``."""
        return self._plans.get((tenant_id, ordinal))

    def note_fired(self) -> None:
        self.fired += 1

    @property
    def planned(self) -> int:
        return len(self._plans)
