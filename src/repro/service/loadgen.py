"""Traffic generator with injected power failures.

Drives N tenants x M clients of mixed put/get/delete traffic through a
:class:`~repro.service.service.Service` while a seeded
:class:`~repro.service.chaos.CrashSchedule` cuts power mid-request, then
proves the service-level durability contract:

* **every acked write survives recovery** — after the run, each tenant's
  table is re-derived through a simulated final power failure + stock
  recovery and compared against a model rebuilt from the acked replies
  (ordered by ``applied_seq``, the tenant-local execution order, so
  concurrent clients don't confuse the oracle);
* **no in-flight request is silently dropped** — every captured dead
  letter ends ``replayed`` (acked) or ``dead`` (surfaced); a ``dead``
  letter's key becomes *indeterminate* in the model (the op may or may
  not have landed before the failure) but is never allowed to corrupt
  other keys.

Run it with ``python -m repro loadgen``; the report prints p50/p99
request latency, recovery counts and latency, and the verification
verdict.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.service.chaos import CrashSchedule
from repro.service.metrics import log_line
from repro.service.service import Service, ServiceConfig
from repro.service.tenant import Reply, Request, TenantConfig


@dataclass
class LoadgenConfig:
    """One campaign's shape."""

    tenants: int = 8
    clients_per_tenant: int = 4
    requests: int = 1000  # total, spread across tenants/clients
    crashes: int = 5
    #: nested failures: power failures injected into recovery itself.
    recovery_crashes: int = 0
    seed: int = 0
    key_space: int = 40
    backend: str = "memory"
    state_dir: Optional[str] = None
    shards: int = 4
    shard_workers: int = 0
    mailbox_depth: int = 64
    policy: str = "queue"
    threshold: int = 64
    slots: int = 128
    snapshot_every: int = 4
    log_interval: float = 0.0
    #: put / get / delete weights.
    mix: Tuple[int, int, int] = (5, 3, 2)


@dataclass
class LoadgenReport:
    """What a campaign did and whether the contract held."""

    config: LoadgenConfig
    wall_s: float
    stats: Dict[str, Any]
    acked_losses: List[str] = field(default_factory=list)
    silent_drops: int = 0
    verified_tenants: int = 0
    indeterminate_keys: int = 0

    @property
    def ok(self) -> bool:
        return not self.acked_losses and self.silent_drops == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
            "tenants": self.config.tenants,
            "requests": self.stats["requests"],
            "acked": self.stats["acked"],
            "rejected": self.stats["rejected"],
            "replayed": self.stats["replayed"],
            "crashes": self.stats["crashes"],
            "recoveries": self.stats["recoveries"],
            "dead_letters": self.stats["dead_letters"],
            "latency": self.stats["latency"],
            "recovery_latency": self.stats["recovery_latency"],
            "throughput_rps": round(self.stats["acked"] / self.wall_s, 1)
            if self.wall_s else 0.0,
            "verified_tenants": self.verified_tenants,
            "indeterminate_keys": self.indeterminate_keys,
            "acked_losses": self.acked_losses,
            "silent_drops": self.silent_drops,
        }

    def summary(self) -> str:
        d = self.to_dict()
        lines = [
            "repro.service loadgen report",
            f"  tenants={d['tenants']} requests={d['requests']} "
            f"acked={d['acked']} rejected={d['rejected']} "
            f"replayed={d['replayed']}",
            f"  crashes={d['crashes']} recoveries={d['recoveries']} "
            f"dead_letters={d['dead_letters']}",
            f"  latency p50={d['latency']['p50_ms']:.2f}ms "
            f"p99={d['latency']['p99_ms']:.2f}ms "
            f"max={d['latency']['max_ms']:.2f}ms",
            f"  recovery p50={d['recovery_latency']['p50_ms']:.2f}ms "
            f"p99={d['recovery_latency']['p99_ms']:.2f}ms "
            f"(n={d['recovery_latency']['count']})",
            f"  throughput={d['throughput_rps']} acked req/s "
            f"over {d['wall_s']}s",
            f"  verification: {d['verified_tenants']} tenants exact, "
            f"{d['indeterminate_keys']} indeterminate keys, "
            f"{len(d['acked_losses'])} acked-write losses, "
            f"{d['silent_drops']} silent drops",
            f"  verdict: {'OK' if self.ok else 'DURABILITY VIOLATION'}",
        ]
        return "\n".join(lines)


def _make_ops(
    config: LoadgenConfig, tenant_id: str, client: int
) -> List[Request]:
    """One client's deterministic request script."""
    # str seeds are hashed deterministically (sha512), unlike tuple hash.
    rng = random.Random(f"{config.seed}:{tenant_id}:{client}")
    per_client = config.requests // (config.tenants * config.clients_per_tenant)
    weights = config.mix
    ops = []
    for i in range(max(per_client, 1)):
        key = rng.randrange(1, config.key_space + 1)
        kind = rng.choices(("put", "get", "delete"), weights=weights)[0]
        value = rng.randrange(1, 1 << 30) if kind == "put" else 0
        ops.append(Request(kind, key=key, value=value))
    return ops


async def _client(
    service: Service,
    tenant_id: str,
    ops: List[Request],
    acked: List[Tuple[Request, Reply]],
) -> None:
    for request in ops:
        reply = await service.submit(tenant_id, request)
        if reply.ok:
            acked.append((request, reply))
        # Rejected / failed requests carry their own explicit status;
        # the oracle only models acked mutations.


def _expected_table(
    acked: List[Tuple[Request, Reply]]
) -> Dict[int, int]:
    """Rebuild the table from acked mutations in execution order."""
    model: Dict[int, int] = {}
    mutations = [
        (reply.applied_seq, request)
        for request, reply in acked
        if request.op in ("put", "delete")
    ]
    for _, request in sorted(mutations, key=lambda item: item[0]):
        if request.op == "put":
            model[request.key] = request.value
        else:
            model.pop(request.key, None)
    return model


def _check_tenant(
    tenant_id: str,
    acked: List[Tuple[Request, Reply]],
    recovered: Dict[int, int],
    dead_keys: Set[int],
) -> Tuple[List[str], int]:
    """Compare the post-recovery table against the acked-op model.

    Keys touched by a dead letter are indeterminate (the op's fate was
    surfaced, not hidden) — excluded from the exact comparison but still
    counted.  Everything else must match exactly: a missing or stale
    value for an acked put is an acked-write loss.
    """
    model = _expected_table(acked)
    losses: List[str] = []
    for key in sorted(set(model) | set(recovered)):
        if key in dead_keys:
            continue
        want = model.get(key)
        got = recovered.get(key)
        if want != got:
            losses.append(
                f"{tenant_id}: key {key} expected {want!r} got {got!r}"
            )
    return losses, len(dead_keys)


async def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Run one campaign and verify the durability contract."""
    tenant_ids = [f"t{i}" for i in range(config.tenants)]
    per_client = max(
        config.requests // (config.tenants * config.clients_per_tenant), 1
    )
    chaos = CrashSchedule.plan(
        tenant_ids,
        crashes=config.crashes,
        requests_per_tenant=per_client * config.clients_per_tenant,
        seed=config.seed,
        recovery_crashes=config.recovery_crashes,
    )
    service = Service(
        ServiceConfig(
            tenant_ids=tenant_ids,
            backend=config.backend,
            state_dir=config.state_dir,
            shards=config.shards,
            shard_workers=config.shard_workers,
            mailbox_depth=config.mailbox_depth,
            policy=config.policy,
            tenant=TenantConfig(
                threshold=config.threshold,
                slots=config.slots,
                snapshot_every=config.snapshot_every,
            ),
            log_interval=config.log_interval,
        ),
        chaos=chaos,
    )
    await service.start()
    acked: Dict[str, List[Tuple[Request, Reply]]] = {
        tid: [] for tid in tenant_ids
    }
    start = time.perf_counter()
    tasks = [
        _client(service, tid, _make_ops(config, tid, c), acked[tid])
        for tid in tenant_ids
        for c in range(config.clients_per_tenant)
    ]
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - start

    # -- the contract --------------------------------------------------------
    # 1. No silent drops: every captured letter has a terminal status.
    counts = service.dead_letters.counts()
    silent = counts["captured"]

    # 2. Every acked write survives a final power failure + recovery.
    recovered_tables = service.verify_recovered()
    losses: List[str] = []
    indeterminate = 0
    verified = 0
    for tid in tenant_ids:
        dead_keys = {
            letter.request.key
            for letter in service.dead_letters.dead(tid)
            if letter.request.op in ("put", "delete")
        }
        tenant_losses, ind = _check_tenant(
            tid, acked[tid], recovered_tables[tid], dead_keys
        )
        losses.extend(tenant_losses)
        indeterminate += ind
        if not tenant_losses:
            verified += 1

    stats = service.stats()
    await service.stop()
    return LoadgenReport(
        config=config,
        wall_s=wall,
        stats=stats,
        acked_losses=losses,
        silent_drops=silent,
        verified_tenants=verified,
        indeterminate_keys=indeterminate,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="Drive a repro.service fleet with crash-injected traffic "
        "and verify that every acked write survives recovery.",
    )
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent clients per tenant")
    parser.add_argument("--requests", type=int, default=1000,
                        help="total requests across the fleet")
    parser.add_argument("--crashes", type=int, default=5,
                        help="power failures to inject")
    parser.add_argument("--recovery-crashes", type=int, default=0,
                        help="nested failures: power failures injected "
                        "into recovery itself (re-entrant recovery)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--key-space", type=int, default=40)
    parser.add_argument("--backend", default="memory",
                        choices=["memory", "disk", "sharded"])
    parser.add_argument("--state-dir", default=None)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--mailbox-depth", type=int, default=64)
    parser.add_argument("--policy", default="queue",
                        choices=["queue", "reject"])
    parser.add_argument("--threshold", type=int, default=64)
    parser.add_argument("--snapshot-every", type=int, default=4)
    parser.add_argument("--log-interval", type=float, default=0.0)
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    return parser


def config_from_args(args: argparse.Namespace) -> LoadgenConfig:
    if args.backend in ("disk", "sharded") and not args.state_dir:
        raise SystemExit(f"--backend {args.backend} requires --state-dir")
    return LoadgenConfig(
        tenants=args.tenants,
        clients_per_tenant=args.clients,
        requests=args.requests,
        crashes=args.crashes,
        recovery_crashes=args.recovery_crashes,
        seed=args.seed,
        key_space=args.key_space,
        backend=args.backend,
        state_dir=args.state_dir,
        shards=args.shards,
        mailbox_depth=args.mailbox_depth,
        policy=args.policy,
        threshold=args.threshold,
        snapshot_every=args.snapshot_every,
        log_interval=args.log_interval,
    )


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    report = asyncio.run(run_loadgen(config))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        print(log_line(report.stats), file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
