"""The asyncio front-end: tenant manager, mailboxes, supervisor.

One consumer task per tenant drains its bounded mailbox and executes
requests on the tenant's Capri machine.  The supervisor behaviour lives
in the consumer's error path:

* a :class:`~repro.arch.crash.PowerFailure` mid-request captures the
  in-flight request into the dead-letter queue, runs crash recovery
  (which resumes and completes the interrupted execution), then replays
  the request — the client's future resolves with ``replayed=True``, or
  the letter is left ``dead`` and surfaced in stats after
  ``max_replay_attempts``.  Replay attempts are themselves eligible for
  scheduled crashes (crash-during-recovery chaos).
* a wedged machine (:class:`~repro.isa.machine.MachineError`) is
  power-cycled: capture the persistent domain, recover, fail the
  request with an error reply.

Request execution is synchronous inside the event loop: tenants are
GIL-bound CPU work, so a thread pool would add overhead without
parallelism; what asyncio buys is bounded mailboxes, backpressure, many
concurrent clients, and supervision — the service-shaped properties.
"""

from __future__ import annotations

import asyncio
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.arch.crash import PowerFailure
from repro.isa.machine import MachineError
from repro.service.backends import StateBackend, make_backend
from repro.service.chaos import CrashSchedule
from repro.service.mailbox import DeadLetterQueue, Mailbox, MailboxFull
from repro.service.metrics import TenantMetrics, aggregate, log_line
from repro.service.tenant import (
    Reply,
    Request,
    Tenant,
    TenantConfig,
    TenantError,
)

_STOP = object()  # mailbox sentinel


@dataclass
class ServiceConfig:
    """Everything the tenant manager needs to build the fleet."""

    tenant_ids: Sequence[str] = ("t0",)
    backend: str = "memory"
    state_dir: Union[str, Path, None] = None
    shards: int = 4
    shard_workers: int = 0
    mailbox_depth: int = 64
    policy: str = "queue"  # queue | reject
    tenant: TenantConfig = field(default_factory=TenantConfig)
    #: seconds between periodic log lines (0 = off).
    log_interval: float = 0.0

    @staticmethod
    def simple(num_tenants: int, **kwargs) -> "ServiceConfig":
        return ServiceConfig(
            tenant_ids=[f"t{i}" for i in range(num_tenants)], **kwargs
        )


@dataclass
class _Pending:
    request: Request
    future: asyncio.Future
    enqueued_at: float


class Service:
    """Hosts many independent Capri machines behind one request API."""

    def __init__(
        self,
        config: ServiceConfig,
        chaos: Optional[CrashSchedule] = None,
        backend: Optional[StateBackend] = None,
    ) -> None:
        self.config = config
        self.chaos = chaos
        self.backend = backend or make_backend(
            config.backend,
            state_dir=config.state_dir,
            shards=config.shards,
            workers=config.shard_workers,
        )
        self._owns_backend = backend is None
        self.dead_letters = DeadLetterQueue()
        self.tenants: Dict[str, Tenant] = {}
        self.mailboxes: Dict[str, Mailbox] = {}
        self.metrics: Dict[str, TenantMetrics] = {}
        self._consumers: List[asyncio.Task] = []
        self._logger_task: Optional[asyncio.Task] = None
        self.started = False
        self.recovered_at_boot = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Boot every tenant (recovery is the restart path) and start
        the consumer tasks."""
        if self.started:
            raise RuntimeError("service already started")
        for tenant_id in self.config.tenant_ids:
            metrics = TenantMetrics(tenant_id)
            tenant = Tenant(
                tenant_id,
                self.backend,
                config=self.config.tenant,
                chaos=self.chaos,
                metrics=metrics,
            )
            if tenant.boot():
                self.recovered_at_boot += 1
            self.tenants[tenant_id] = tenant
            self.metrics[tenant_id] = metrics
            self.mailboxes[tenant_id] = Mailbox(
                depth=self.config.mailbox_depth, policy=self.config.policy
            )
            self._consumers.append(
                asyncio.create_task(
                    self._consume(tenant_id), name=f"tenant-{tenant_id}"
                )
            )
        if self.config.log_interval > 0:
            self._logger_task = asyncio.create_task(self._log_loop())
        self.started = True

    async def stop(self) -> None:
        """Drain mailboxes, snapshot every tenant, stop the consumers."""
        for mailbox in self.mailboxes.values():
            await mailbox.put(_STOP)
        if self._consumers:
            await asyncio.gather(*self._consumers)
        self._consumers.clear()
        if self._logger_task is not None:
            self._logger_task.cancel()
            try:
                await self._logger_task
            except asyncio.CancelledError:
                pass
            self._logger_task = None
        if self._owns_backend:
            self.backend.close()
        self.started = False

    # -- request path --------------------------------------------------------

    async def submit(self, tenant_id: str, request: Request) -> Reply:
        """Enqueue a request and await its reply.

        Under the ``reject`` policy a full mailbox answers immediately
        with ``rejected=True`` — shed, never dropped.
        """
        mailbox = self.mailboxes.get(tenant_id)
        metrics = self.metrics.get(tenant_id)
        if mailbox is None or metrics is None:
            return Reply(ok=False, op=request.op, key=request.key,
                         error=f"unknown tenant {tenant_id!r}")
        metrics.note_op(request.op)
        if request.op == "stats":
            return self._stats_reply(tenant_id, request)
        if request.op in ("put", "delete", "get") and request.key <= 0:
            metrics.failed += 1
            return Reply(ok=False, op=request.op, key=request.key,
                         error="key must be a positive integer")
        pending = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=time.perf_counter(),
        )
        try:
            await mailbox.put(pending)
        except MailboxFull:
            metrics.rejected += 1
            return Reply(ok=False, op=request.op, key=request.key,
                         rejected=True, error="mailbox full")
        metrics.mailbox_depth = mailbox.qsize()
        metrics.mailbox_max_depth = mailbox.max_depth
        return await pending.future

    # -- consumers (the supervisor lives here) -------------------------------

    async def _consume(self, tenant_id: str) -> None:
        tenant = self.tenants[tenant_id]
        mailbox = self.mailboxes[tenant_id]
        metrics = self.metrics[tenant_id]
        while True:
            item = await mailbox.get()
            if item is _STOP:
                tenant.shutdown()
                return
            pending: _Pending = item
            reply = self._execute(tenant, pending.request)
            latency = time.perf_counter() - pending.enqueued_at
            metrics.latency.add(latency)
            if reply.ok:
                metrics.acked += 1
                if reply.replayed:
                    metrics.replayed += 1
            else:
                metrics.failed += 1
            metrics.mailbox_depth = mailbox.qsize()
            if not pending.future.cancelled():
                pending.future.set_result(reply)
            # One await per request keeps many-tenant runs fair even
            # when every mailbox is hot.
            await asyncio.sleep(0)

    def _execute(self, tenant: Tenant, request: Request) -> Reply:
        """Run one request with full supervision (sync, in-loop)."""
        try:
            return tenant.apply(request)
        except PowerFailure:
            return self._recover_and_replay(tenant, request)
        except MachineError as err:
            return self._power_cycle(tenant, request, err)
        except TenantError as err:
            return Reply(ok=False, op=request.op, key=request.key,
                         error=str(err))

    def _recover_and_replay(self, tenant: Tenant, request: Request) -> Reply:
        """The supervisor path: dead-letter capture, recovery, replay."""
        letter = self.dead_letters.capture(
            tenant.tenant_id, request, reason="power failure in flight"
        )
        attempts = 0
        max_attempts = tenant.config.max_replay_attempts
        while True:
            try:
                tenant.recover()
            except PowerFailure:
                # Power died *during recovery* (nested failure).  The
                # tenant stashed the recovery-crashed domain as its new
                # pending crash; run_recovery is re-entrant, so looping
                # back converges.  It still burns an attempt so a
                # pathological schedule cannot spin forever.
                attempts += 1
                if attempts > max_attempts:
                    self.dead_letters.mark_dead(
                        letter, attempts, "recovery attempts exhausted"
                    )
                    return Reply(ok=False, op=request.op, key=request.key,
                                 error="recovery attempts exhausted")
                continue
            except (TenantError, MachineError) as err:
                self.dead_letters.mark_dead(letter, attempts, f"recovery: {err}")
                return Reply(ok=False, op=request.op, key=request.key,
                             error=f"unrecoverable: {err}")
            if attempts >= max_attempts:
                self.dead_letters.mark_dead(
                    letter, attempts, "replay attempts exhausted"
                )
                return Reply(ok=False, op=request.op, key=request.key,
                             error="replay attempts exhausted")
            attempts += 1
            try:
                reply = tenant.apply(request)
            except PowerFailure:
                continue  # crash during replay: recover again
            except (TenantError, MachineError) as err:
                self.dead_letters.mark_dead(letter, attempts, str(err))
                return Reply(ok=False, op=request.op, key=request.key,
                             error=str(err))
            reply.replayed = True
            self.dead_letters.mark_replayed(letter, attempts)
            return reply

    def _power_cycle(self, tenant: Tenant, request: Request, err) -> Reply:
        while True:
            try:
                tenant.power_cycle()
            except PowerFailure:
                continue  # nested failure: re-enter recovery
            except (TenantError, MachineError):
                pass
            break
        return Reply(ok=False, op=request.op, key=request.key,
                     error=f"machine error: {err}")

    # -- stats / verification ------------------------------------------------

    def _stats_reply(self, tenant_id: str, request: Request) -> Reply:
        tenant = self.tenants[tenant_id]
        payload = self.metrics[tenant_id].to_dict()
        try:
            payload["table_size"] = len(tenant.table())
            payload["workload_stats"] = tenant.stats_words()
        except TenantError:
            pass
        payload["dead_letters"] = len(self.dead_letters.dead(tenant_id))
        return Reply(ok=True, op="stats", stats=payload)

    def stats(self) -> Dict[str, Any]:
        """Service-wide rollup plus the dead-letter ledger counts."""
        out = aggregate(list(self.metrics.values()))
        out["dead_letters"] = self.dead_letters.counts()
        out["chaos_fired"] = self.chaos.fired if self.chaos else 0
        out["recovered_at_boot"] = self.recovered_at_boot
        return out

    def verify_recovered(self) -> Dict[str, Dict[int, int]]:
        """Per-tenant table after a simulated final power failure +
        recovery (the loadgen oracle's ground truth)."""
        return {
            tenant_id: tenant.verify_recovered_table()
            for tenant_id, tenant in self.tenants.items()
        }

    # -- periodic log --------------------------------------------------------

    async def _log_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.log_interval)
            print(log_line(self.stats()), file=sys.stderr, flush=True)
