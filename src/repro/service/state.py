"""Durable-snapshot codec: :class:`~repro.arch.crash.CrashState` <-> JSON.

A tenant's persistent domain is exactly what a power failure preserves
(Sections 5.2/6.1): the NVM image, both proxy buffers' surviving entries
with their undo/redo words and valid bits, the staged register
checkpoints, the WPQ journal, and the durable PC checkpoints.  The
on-disk backends store that — nothing more, nothing less — so restoring
a tenant *is* crash recovery: load the snapshot, run
:func:`repro.arch.recovery.recover` over it, resume.

Checksums are serialised verbatim, never recomputed: a snapshot of a
torn entry must stay torn, so integrity verification still happens at
recovery time, not at codec time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.arch.crash import CrashState
from repro.arch.nvm import WpqRecord
from repro.arch.proxy import ProxyEntry
from repro.isa.machine import Continuation

#: Bump when the payload schema changes shape; loaders reject other
#: versions (treated as a cold start, like any unreadable snapshot).
SNAPSHOT_SCHEMA = 1


class SnapshotError(Exception):
    """A snapshot payload is structurally unusable."""


# ---------------------------------------------------------------------------
# continuations
# ---------------------------------------------------------------------------

def continuation_to_json(cont: Optional[Continuation]) -> Optional[Dict[str, Any]]:
    if cont is None:
        return None
    return {
        "func": cont.func_name,
        "label": cont.label,
        "index": cont.index,
        "callstack": [
            [name, label, index, list(regs), ret_reg]
            for (name, label, index, regs, ret_reg) in cont.callstack
        ],
    }


def continuation_from_json(payload: Optional[Dict[str, Any]]) -> Optional[Continuation]:
    if payload is None:
        return None
    return Continuation(
        func_name=payload["func"],
        label=payload["label"],
        index=int(payload["index"]),
        callstack=tuple(
            (name, label, int(index), tuple(int(r) for r in regs),
             None if ret_reg is None else int(ret_reg))
            for (name, label, index, regs, ret_reg) in payload["callstack"]
        ),
    )


# ---------------------------------------------------------------------------
# proxy entries
# ---------------------------------------------------------------------------

def entry_to_json(entry: ProxyEntry) -> Dict[str, Any]:
    return {
        "kind": entry.kind,
        "addr": entry.addr,
        "undo": entry.undo,
        "redo": entry.redo,
        "redo_valid": entry.redo_valid,
        "region_seq": entry.region_seq,
        "create_time": entry.create_time,
        "arrive_time": entry.arrive_time,
        "region_id": entry.region_id,
        "continuation": continuation_to_json(entry.continuation),
        "ckpts": {str(a): v for a, v in entry.ckpts.items()},
        "checksum": entry.checksum,
    }


def entry_from_json(payload: Dict[str, Any]) -> ProxyEntry:
    entry = ProxyEntry.__new__(ProxyEntry)
    entry.kind = int(payload["kind"])
    entry.addr = int(payload["addr"])
    entry.undo = int(payload["undo"])
    entry.redo = int(payload["redo"])
    entry.redo_valid = bool(payload["redo_valid"])
    entry.region_seq = int(payload["region_seq"])
    entry.create_time = float(payload["create_time"])
    entry.arrive_time = float(payload["arrive_time"])
    entry.region_id = int(payload["region_id"])
    entry.continuation = continuation_from_json(payload["continuation"])
    entry.ckpts = {int(a): int(v) for a, v in payload["ckpts"].items()}
    entry.checksum = int(payload["checksum"])
    return entry


# ---------------------------------------------------------------------------
# whole snapshots
# ---------------------------------------------------------------------------

def snapshot_to_payload(state: CrashState) -> Dict[str, Any]:
    """JSON-able image of one persistent domain."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "num_cores": state.num_cores,
        "nvm_image": {str(a): v for a, v in state.nvm_image.items()},
        "core_entries": [
            [entry_to_json(e) for e in entries] for entries in state.core_entries
        ],
        "pc_checkpoints": {
            str(core): [continuation_to_json(cont), region_id]
            for core, (cont, region_id) in state.pc_checkpoints.items()
        },
        "wpq": [[r.addr, r.value, r.prev, r.checksum] for r in state.wpq],
        "ckpt_shadow": {str(a): v for a, v in state.ckpt_shadow.items()},
    }


def payload_to_snapshot(payload: Dict[str, Any]) -> CrashState:
    """Rebuild a :class:`CrashState` from :func:`snapshot_to_payload` output."""
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload is not a JSON object")
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"unsupported snapshot schema {payload.get('schema')!r}"
        )
    try:
        wpq: List[WpqRecord] = [
            WpqRecord(
                addr=int(addr),
                value=int(value),
                prev=None if prev is None else int(prev),
                checksum=int(checksum),
            )
            for (addr, value, prev, checksum) in payload["wpq"]
        ]
        return CrashState(
            nvm_image={int(a): int(v) for a, v in payload["nvm_image"].items()},
            core_entries=[
                [entry_from_json(e) for e in entries]
                for entries in payload["core_entries"]
            ],
            num_cores=int(payload["num_cores"]),
            pc_checkpoints={
                int(core): (continuation_from_json(cont), region_id)
                for core, (cont, region_id) in payload["pc_checkpoints"].items()
            },
            wpq=wpq,
            ckpt_shadow={int(a): int(v) for a, v in payload["ckpt_shadow"].items()},
        )
    except (KeyError, TypeError, ValueError) as err:
        raise SnapshotError(f"malformed snapshot payload: {err}") from err
