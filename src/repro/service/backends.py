"""Pluggable tenant-state backends: where a persistence domain lives.

Three implementations behind one abstraction (mirroring the pluggable
persistence layers of actor runtimes):

* :class:`MemoryBackend` — snapshots held in process memory.  Survives
  tenant restarts within one service lifetime; the fastest option and
  the loadgen default.
* :class:`DiskBackend` — one atomically-replaced JSON file per tenant.
  Torn or unreadable snapshots are quarantined (renamed ``*.corrupt``)
  and treated as a cold start, never a crash — the same contract as
  :class:`repro.sweep.cache.ResultCache`.
* :class:`ShardedBackend` — the NVM image split across N shard files,
  written (optionally) by a pool of worker processes, with a
  generation-directory scheme: a snapshot becomes current only when the
  small ``CURRENT`` pointer file is atomically replaced, so a crash
  mid-store leaves the previous generation intact.  Per-shard digests
  recorded in the generation's meta file catch cross-file tears.

All backends speak :class:`~repro.arch.crash.CrashState` — the exact
persistent domain a power failure preserves — so *restoring* a tenant is
literally crash recovery over the loaded snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.arch.crash import CrashState
from repro.service.state import (
    SnapshotError,
    payload_to_snapshot,
    snapshot_to_payload,
)

_SAFE_ID = re.compile(r"[^A-Za-z0-9._-]")


def _fs_name(tenant_id: str) -> str:
    """Filesystem-safe name for a tenant id (collisions are the caller's
    problem — service tenant ids are already ``t0``-style slugs)."""
    return _SAFE_ID.sub("_", tenant_id) or "_"


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".snap-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _image_digest(image: Dict[int, int]) -> str:
    blob = json.dumps(
        sorted(image.items()), separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class StateBackend(ABC):
    """Durable home of tenant persistence domains."""

    name = "abstract"

    @abstractmethod
    def load(self, tenant_id: str) -> Optional[CrashState]:
        """The tenant's last stored snapshot, or ``None`` (cold start)."""

    @abstractmethod
    def store(self, tenant_id: str, state: CrashState) -> None:
        """Durably record ``state`` as the tenant's current snapshot."""

    @abstractmethod
    def delete(self, tenant_id: str) -> None:
        """Forget the tenant's snapshot (missing is not an error)."""

    def close(self) -> None:
        """Release pools/handles; further use is undefined."""


# ---------------------------------------------------------------------------
# in-memory
# ---------------------------------------------------------------------------

class MemoryBackend(StateBackend):
    """Snapshots in process memory (cloned on both sides: the backend
    must never alias a live pipeline)."""

    name = "memory"

    def __init__(self) -> None:
        self._snapshots: Dict[str, CrashState] = {}
        self.stores = 0
        self.loads = 0

    def load(self, tenant_id: str) -> Optional[CrashState]:
        state = self._snapshots.get(tenant_id)
        if state is None:
            return None
        self.loads += 1
        return state.clone()

    def store(self, tenant_id: str, state: CrashState) -> None:
        self._snapshots[tenant_id] = state.clone()
        self.stores += 1

    def delete(self, tenant_id: str) -> None:
        self._snapshots.pop(tenant_id, None)


# ---------------------------------------------------------------------------
# one JSON file per tenant
# ---------------------------------------------------------------------------

class DiskBackend(StateBackend):
    """One atomically-replaced snapshot file per tenant."""

    name = "disk"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.stores = 0
        self.loads = 0
        self.quarantined = 0

    def _path(self, tenant_id: str) -> Path:
        return self.root / f"{_fs_name(tenant_id)}.json"

    def load(self, tenant_id: str) -> Optional[CrashState]:
        path = self._path(tenant_id)
        try:
            with open(path, "r") as fh:
                payload = json.load(fh)
            state = payload_to_snapshot(payload)
        except FileNotFoundError:
            return None
        except (ValueError, OSError, SnapshotError):
            self._quarantine(path)
            return None
        self.loads += 1
        return state

    def store(self, tenant_id: str, state: CrashState) -> None:
        _atomic_write_json(self._path(tenant_id), snapshot_to_payload(state))
        self.stores += 1

    def delete(self, tenant_id: str) -> None:
        try:
            self._path(tenant_id).unlink()
        except OSError:
            pass

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass
        self.quarantined += 1


# ---------------------------------------------------------------------------
# sharded, multi-process
# ---------------------------------------------------------------------------

def _write_shard(path_str: str, payload: dict) -> None:
    """Worker-side shard write (module-level: must be picklable)."""
    _atomic_write_json(Path(path_str), payload)


class ShardedBackend(StateBackend):
    """NVM image sharded across files; generation flip makes it atomic.

    Layout per tenant::

        <root>/<tenant>/
          CURRENT            -> "gen-000042"   (atomically replaced)
          gen-000042/
            meta.json        everything but the image + shard digests
            shard-0.json     {"image": {...}, "digest": ...}
            ...

    ``workers > 0`` writes the shard files through a shared
    :class:`concurrent.futures.ProcessPoolExecutor`; the pool is created
    lazily and the backend falls back to in-process writes if process
    spawning is unavailable.
    """

    name = "sharded"

    def __init__(
        self, root: Union[str, Path], shards: int = 4, workers: int = 0
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = Path(root)
        self.shards = shards
        self.workers = workers
        self.stores = 0
        self.loads = 0
        self.quarantined = 0
        self._pool = None
        self._pool_broken = False

    # -- paths ---------------------------------------------------------------

    def _dir(self, tenant_id: str) -> Path:
        return self.root / _fs_name(tenant_id)

    # -- pool ----------------------------------------------------------------

    def _get_pool(self):
        if self.workers <= 0 or self._pool_broken:
            return None
        if self._pool is None:
            try:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ImportError):
                self._pool_broken = True
                return None
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- store ---------------------------------------------------------------

    def store(self, tenant_id: str, state: CrashState) -> None:
        base = self._dir(tenant_id)
        base.mkdir(parents=True, exist_ok=True)
        gen = f"gen-{self.stores:06d}-{os.getpid()}"
        gen_dir = base / gen

        payload = snapshot_to_payload(state)
        image = payload.pop("nvm_image")
        buckets: List[Dict[str, int]] = [{} for _ in range(self.shards)]
        for addr_str, value in image.items():
            buckets[int(addr_str) % self.shards][addr_str] = value

        shard_jobs: List[Tuple[Path, dict]] = []
        digests = []
        for k, bucket in enumerate(buckets):
            digest = _image_digest({int(a): v for a, v in bucket.items()})
            digests.append(digest)
            shard_jobs.append(
                (gen_dir / f"shard-{k}.json",
                 {"shard": k, "digest": digest, "image": bucket})
            )

        pool = self._get_pool()
        if pool is not None:
            try:
                futures = [
                    pool.submit(_write_shard, str(path), data)
                    for path, data in shard_jobs
                ]
                for fut in futures:
                    fut.result()
            except (OSError, RuntimeError):
                # Pool died (e.g. forbidden process spawn): degrade to
                # serial writes for the rest of this backend's life.
                self._pool_broken = True
                for path, data in shard_jobs:
                    _write_shard(str(path), data)
        else:
            for path, data in shard_jobs:
                _write_shard(str(path), data)

        payload["shards"] = self.shards
        payload["shard_digests"] = digests
        _atomic_write_json(gen_dir / "meta.json", payload)
        # The commit point: CURRENT flips to the new generation only
        # after every shard and the meta file are fully on disk.
        _atomic_write_json(base / "CURRENT", {"generation": gen})
        self.stores += 1
        self._prune(base, keep=gen)

    def _prune(self, base: Path, keep: str) -> None:
        for child in base.glob("gen-*"):
            if child.name != keep and child.is_dir():
                shutil.rmtree(child, ignore_errors=True)

    # -- load ----------------------------------------------------------------

    def load(self, tenant_id: str) -> Optional[CrashState]:
        base = self._dir(tenant_id)
        current = base / "CURRENT"
        try:
            with open(current, "r") as fh:
                gen = json.load(fh)["generation"]
            gen_dir = base / gen
            with open(gen_dir / "meta.json", "r") as fh:
                payload = json.load(fh)
            shards = int(payload.pop("shards"))
            digests = payload.pop("shard_digests")
            image: Dict[str, int] = {}
            for k in range(shards):
                with open(gen_dir / f"shard-{k}.json", "r") as fh:
                    shard = json.load(fh)
                bucket = shard["image"]
                if _image_digest({int(a): v for a, v in bucket.items()}) != digests[k]:
                    raise SnapshotError(f"shard {k} digest mismatch")
                image.update(bucket)
            payload["nvm_image"] = image
            state = payload_to_snapshot(payload)
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError, SnapshotError):
            self._quarantine(current)
            return None
        self.loads += 1
        return state

    def delete(self, tenant_id: str) -> None:
        shutil.rmtree(self._dir(tenant_id), ignore_errors=True)

    def _quarantine(self, current: Path) -> None:
        try:
            os.replace(current, current.with_suffix(".corrupt"))
        except OSError:
            pass
        self.quarantined += 1


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------

def make_backend(
    kind: str,
    state_dir: Union[str, Path, None] = None,
    shards: int = 4,
    workers: int = 0,
) -> StateBackend:
    """Build a backend from CLI-ish parameters."""
    if kind == "memory":
        return MemoryBackend()
    if state_dir is None:
        raise ValueError(f"backend {kind!r} needs a state directory")
    if kind == "disk":
        return DiskBackend(state_dir)
    if kind == "sharded":
        return ShardedBackend(state_dir, shards=shards, workers=workers)
    raise ValueError(
        f"unknown backend {kind!r}; known: memory, disk, sharded"
    )
