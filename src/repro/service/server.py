"""A line-oriented TCP endpoint in front of :class:`~repro.service.service.Service`.

Wire protocol: one JSON object per line, both directions.

Request lines::

    {"tenant": "t3", "op": "put", "key": 7, "value": 42}
    {"tenant": "t3", "op": "get", "key": 7}
    {"tenant": "t3", "op": "delete", "key": 7}
    {"tenant": "t3", "op": "stats"}

Reply lines are :meth:`~repro.service.tenant.Reply.to_dict` plus the
echoed ``tenant``.  Malformed lines get ``{"ok": false, "error": ...}``
rather than a dropped connection — the transport never hides a fate.

Run it with ``python -m repro serve``; ``--port 0`` binds an ephemeral
port and prints the chosen one (handy for tests).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from repro.service.service import Service, ServiceConfig
from repro.service.tenant import Request, TenantConfig

#: Longest accepted request line (a put is ~80 bytes; this is ample).
MAX_LINE = 64 * 1024


def parse_request_line(raw: bytes):
    """Decode one wire line into ``(tenant_id, Request)``.

    Raises ``ValueError`` with a client-presentable message on any
    malformed input.
    """
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ValueError(f"bad json: {err}") from None
    if not isinstance(obj, dict):
        raise ValueError("request must be a json object")
    tenant_id = obj.get("tenant")
    if not isinstance(tenant_id, str):
        raise ValueError("missing string field 'tenant'")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ValueError("missing string field 'op'")
    key = obj.get("key", 0)
    value = obj.get("value", 0)
    if not isinstance(key, int) or not isinstance(value, int):
        raise ValueError("'key' and 'value' must be integers")
    return tenant_id, Request(op=op, key=key, value=value)


class Server:
    """Owns the listener and the Service behind it."""

    def __init__(self, service: Service, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Boot the service, bind, and return the bound port."""
        if not self.service.started:
            await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_error_line("request line too long"))
                    await writer.drain()
                    break
                if not raw:
                    break
                line = raw.strip()
                if not line:
                    continue
                try:
                    tenant_id, request = parse_request_line(line)
                except ValueError as err:
                    writer.write(_error_line(str(err)))
                    await writer.drain()
                    continue
                reply = await self.service.submit(tenant_id, request)
                payload = reply.to_dict()
                payload["tenant"] = tenant_id
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, asyncio.CancelledError):
            # Shutdown cancels in-flight handlers; the connection is
            # going away either way, so finish closing quietly.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass


def _error_line(message: str) -> bytes:
    return json.dumps({"ok": False, "error": message}).encode() + b"\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve many Capri persistence domains over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421,
                        help="listen port (0 = ephemeral, printed at boot)")
    parser.add_argument("--tenants", type=int, default=4,
                        help="number of tenants (ids t0..tN-1)")
    parser.add_argument("--backend", default="memory",
                        choices=["memory", "disk", "sharded"])
    parser.add_argument("--state-dir", default=None,
                        help="state directory for disk/sharded backends")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--shard-workers", type=int, default=0,
                        help="process-pool workers for sharded stores (0 = serial)")
    parser.add_argument("--mailbox-depth", type=int, default=64)
    parser.add_argument("--policy", default="queue", choices=["queue", "reject"])
    parser.add_argument("--threshold", type=int, default=64)
    parser.add_argument("--slots", type=int, default=128)
    parser.add_argument("--snapshot-every", type=int, default=1,
                        help="backend snapshot every N acked requests (0 = shutdown only)")
    parser.add_argument("--log-interval", type=float, default=10.0,
                        help="seconds between health log lines (0 = off)")
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    if args.backend in ("disk", "sharded") and not args.state_dir:
        raise SystemExit(f"--backend {args.backend} requires --state-dir")
    return ServiceConfig(
        tenant_ids=[f"t{i}" for i in range(args.tenants)],
        backend=args.backend,
        state_dir=args.state_dir,
        shards=args.shards,
        shard_workers=args.shard_workers,
        mailbox_depth=args.mailbox_depth,
        policy=args.policy,
        tenant=TenantConfig(
            threshold=args.threshold,
            slots=args.slots,
            snapshot_every=args.snapshot_every,
        ),
        log_interval=args.log_interval,
    )


async def _amain(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    server = Server(Service(config), host=args.host, port=args.port)
    port = await server.start()
    print(f"[repro.service] serving {len(config.tenant_ids)} tenants "
          f"({config.backend} backend) on {args.host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("[repro.service] interrupted; state persisted at last snapshot",
              file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
