"""Live service metrics: counters plus bounded latency reservoirs.

Latencies are kept in fixed-size uniform reservoirs (Vitter's
algorithm R, seeded per reservoir) so a million-request run reports
p50/p99 without unbounded memory — the same trick the workload
characterisation tables use (:mod:`repro.compiler.stats`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile over an unsorted sample.

    Float-safe lerp (clamped index arithmetic), matching the convention
    in :mod:`repro.compiler.stats`.
    """
    if not values:
        return 0.0
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * (q / 100.0)
    lo = min(int(pos), len(data) - 2)
    frac = min(max(pos - lo, 0.0), 1.0)
    return data[lo] * (1.0 - frac) + data[lo + 1] * frac


class LatencyReservoir:
    """Bounded uniform sample of a latency stream (seconds)."""

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._sample: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.max_value = max(self.max_value, value)
        if len(self._sample) < self.capacity:
            self._sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._sample[slot] = value

    def percentile(self, q: float) -> float:
        return percentile(self._sample, q)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "max_ms": self.max_value * 1e3,
        }


@dataclass
class TenantMetrics:
    """One tenant's live counters."""

    tenant_id: str
    requests: int = 0
    acked: int = 0
    failed: int = 0
    rejected: int = 0
    replayed: int = 0
    crashes: int = 0
    recoveries: int = 0
    snapshots: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    recovery_latency: LatencyReservoir = field(
        default_factory=lambda: LatencyReservoir(capacity=1024)
    )
    mailbox_depth: int = 0
    mailbox_max_depth: int = 0

    def note_op(self, op: str) -> None:
        self.requests += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant_id,
            "requests": self.requests,
            "acked": self.acked,
            "failed": self.failed,
            "rejected": self.rejected,
            "replayed": self.replayed,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "snapshots": self.snapshots,
            "by_op": dict(self.by_op),
            "latency": self.latency.to_dict(),
            "recovery_latency": self.recovery_latency.to_dict(),
            "mailbox_depth": self.mailbox_depth,
            "mailbox_max_depth": self.mailbox_max_depth,
        }


def aggregate(per_tenant: List[TenantMetrics]) -> Dict[str, Any]:
    """Service-wide rollup for the stats endpoint and the periodic log."""
    out: Dict[str, Any] = {
        "tenants": len(per_tenant),
        "requests": sum(m.requests for m in per_tenant),
        "acked": sum(m.acked for m in per_tenant),
        "failed": sum(m.failed for m in per_tenant),
        "rejected": sum(m.rejected for m in per_tenant),
        "replayed": sum(m.replayed for m in per_tenant),
        "crashes": sum(m.crashes for m in per_tenant),
        "recoveries": sum(m.recoveries for m in per_tenant),
        "snapshots": sum(m.snapshots for m in per_tenant),
        "mailbox_depth": sum(m.mailbox_depth for m in per_tenant),
        "mailbox_max_depth": max(
            (m.mailbox_max_depth for m in per_tenant), default=0
        ),
    }
    lat: List[float] = []
    rec: List[float] = []
    for m in per_tenant:
        lat.extend(m.latency._sample)
        rec.extend(m.recovery_latency._sample)
    out["latency"] = {
        "count": sum(m.latency.count for m in per_tenant),
        "p50_ms": percentile(lat, 50) * 1e3,
        "p99_ms": percentile(lat, 99) * 1e3,
        "max_ms": max((m.latency.max_value for m in per_tenant), default=0.0) * 1e3,
    }
    out["recovery_latency"] = {
        "count": sum(m.recovery_latency.count for m in per_tenant),
        "p50_ms": percentile(rec, 50) * 1e3,
        "p99_ms": percentile(rec, 99) * 1e3,
    }
    return out


def log_line(stats: Dict[str, Any]) -> str:
    """The one-line periodic health summary."""
    lat = stats["latency"]
    return (
        f"[repro.service] tenants={stats['tenants']} "
        f"req={stats['requests']} acked={stats['acked']} "
        f"rej={stats['rejected']} crash={stats['crashes']} "
        f"recov={stats['recoveries']} depth={stats['mailbox_depth']} "
        f"p50={lat['p50_ms']:.2f}ms p99={lat['p99_ms']:.2f}ms"
    )
