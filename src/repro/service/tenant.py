"""One tenant: a private Capri machine serving per-operation requests.

Each tenant owns an entire persistence domain — a functional
:class:`~repro.isa.machine.Machine` plus a
:class:`~repro.arch.system.CapriSystem` (proxy pipelines, NVM image, PC
checkpoints) — running the compiled ``kv_store`` module.  A request is
one hart activation: the operation's entry point (``kv_put`` /
``kv_get`` / ``kv_delete``) is spawned on core 0, run to completion
under the system observer, and the reply read back from memory.

Why this is crash-consistent with *zero* service-level persistence code:

* The spawn-time implicit boundary (region ``-1``) both commits the
  previous request's trailing region and records the new request's
  entry point as the durable resume target.
* A power failure mid-request is recovered by the stock Section 5.4
  protocol (:func:`repro.arch.recovery.recover`); the resumed machine
  *finishes the interrupted execution* — recovery is the restart path —
  and the service then replays the request for its reply.
* Replays are safe because the table operations are idempotent: a put
  re-finds its slot, a delete re-misses.  (The module's ``stats``
  counters are at-least-once, like any counter under replay.)

The tenant is synchronous; :mod:`repro.service.service` provides the
asyncio mailbox/supervision layer around it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.arch.crash import (
    CrashInjector,
    CrashPlan,
    CrashState,
    PowerFailure,
    capture_crash_state,
)
from repro.arch.params import SimParams
from repro.arch.recovery import prepare_resumed_run, recover, run_recovery
from repro.arch.system import CapriSystem
from repro.compiler import CapriCompiler, OptConfig
from repro.ir.module import Module
from repro.isa.machine import Machine, MachineError
from repro.service.chaos import CrashSchedule
from repro.service.metrics import TenantMetrics
from repro.workloads.kvstore import KvLayout, build_kv_service_module, dump_table

#: op -> (entry point, arg builder)
_OPS = {
    "put": ("kv_put", lambda r: [r.key, r.value]),
    "get": ("kv_get", lambda r: [r.key]),
    "delete": ("kv_delete", lambda r: [r.key]),
}

#: The spawn used when recovery needs a cold-restart configuration but
#: no request is in flight.
_BOOT_SPAWN = ("kv_boot", [])


class TenantError(Exception):
    """A request the tenant cannot serve (bad op, fenced core, ...)."""


@dataclass(frozen=True)
class Request:
    """One client operation."""

    op: str  # put | get | delete | stats
    key: int = 0
    value: int = 0

    def describe(self) -> str:
        if self.op == "put":
            return f"put {self.key}={self.value}"
        return f"{self.op} {self.key}" if self.op != "stats" else "stats"


@dataclass
class Reply:
    """The service's answer; ``applied_seq`` is the tenant-local
    execution order (loadgen rebuilds its oracle model from it)."""

    ok: bool
    op: str
    key: int = 0
    value: Optional[int] = None
    found: Optional[bool] = None
    replayed: bool = False
    rejected: bool = False
    applied_seq: int = -1
    error: Optional[str] = None
    stats: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"ok": self.ok, "op": self.op, "key": self.key}
        if self.value is not None:
            out["value"] = self.value
        if self.found is not None:
            out["found"] = self.found
        if self.replayed:
            out["replayed"] = True
        if self.rejected:
            out["rejected"] = True
        if self.applied_seq >= 0:
            out["seq"] = self.applied_seq
        if self.error:
            out["error"] = self.error
        if self.stats is not None:
            out["stats"] = self.stats
        return out


@dataclass
class TenantConfig:
    """Per-tenant machine parameters."""

    threshold: int = 64
    quantum: int = 32
    slots: int = 128
    max_steps: int = 2_000_000
    #: Store a backend snapshot every N acked requests (0 = only at
    #: shutdown / explicit save).
    snapshot_every: int = 1
    #: How many replay attempts a dead-lettered request gets before it
    #: is declared dead (each attempt may itself be crash-injected).
    max_replay_attempts: int = 8
    params: Optional[SimParams] = None

    def effective_params(self) -> SimParams:
        return self.params if self.params is not None else SimParams.scaled()


#: Compiled-module cache: tenants of one service share the (immutable)
#: compiled program; only machine/system state is per-tenant.
_COMPILED: Dict[Tuple[int, int], Tuple[Module, KvLayout]] = {}


def compiled_kv_module(slots: int, threshold: int) -> Tuple[Module, KvLayout]:
    key = (slots, threshold)
    cached = _COMPILED.get(key)
    if cached is None:
        module, layout = build_kv_service_module(slots)
        compiled = CapriCompiler(OptConfig.licm(threshold)).compile(module).module
        cached = _COMPILED[key] = (compiled, layout)
    return cached


class Tenant:
    """One persistence domain behind the service."""

    def __init__(
        self,
        tenant_id: str,
        backend,
        config: Optional[TenantConfig] = None,
        chaos: Optional[CrashSchedule] = None,
        metrics: Optional[TenantMetrics] = None,
    ) -> None:
        self.tenant_id = tenant_id
        self.backend = backend
        self.config = config or TenantConfig()
        self.chaos = chaos
        self.metrics = metrics or TenantMetrics(tenant_id)
        self.module, self.layout = compiled_kv_module(
            self.config.slots, self.config.threshold
        )
        self.machine: Optional[Machine] = None
        self.system: Optional[CapriSystem] = None
        #: apply-attempt ordinal (replays included) — the chaos schedule's
        #: per-tenant clock.
        self.attempts = 0
        #: recovery-attempt ordinal — the chaos schedule's clock for
        #: *nested* failures (power dying during recovery itself).
        self.recovery_attempts = 0
        #: tenant-local execution order of successful applies.
        self.applied_seq = 0
        self._acked_since_snapshot = 0
        self._pending_crash: Optional[CrashState] = None
        self._in_flight_spawn: Optional[Tuple[str, list]] = None

    # -- lifecycle -----------------------------------------------------------

    def boot(self) -> bool:
        """Start (or restart) the tenant; returns True if a stored
        snapshot was recovered, False for a cold start.

        Recovery *is* the restart path: a stored snapshot goes through
        the stock crash-recovery protocol, and any execution that was in
        flight when the snapshot was taken is resumed to completion.
        """
        state = self.backend.load(self.tenant_id)
        if state is None:
            self._fresh_machine()
            return False
        # Recovery is itself crashable (chaos may schedule a nested
        # failure); run_recovery is re-entrant, so re-entering over the
        # recovery-crashed domain converges.  Boot absorbs those retries
        # itself — there is no supervisor yet to do it.
        while True:
            try:
                self._recover_from(state, cold_spawn=_BOOT_SPAWN)
                break
            except PowerFailure as pf:
                state = pf.state
        self._pending_crash = None
        return True

    def _fresh_machine(self) -> None:
        self.machine = Machine(self.module, quantum=self.config.quantum)
        self.system = CapriSystem(
            self.config.effective_params(),
            num_cores=1,
            threshold=self.config.threshold,
        )
        self.system.attach(self.machine)

    def shutdown(self) -> None:
        """Persist a final snapshot (clean handoff to the backend)."""
        if self.system is not None:
            self.save_snapshot()

    # -- snapshots -----------------------------------------------------------

    def capture(self) -> CrashState:
        """Deep snapshot of the live persistent domain (what a power
        failure at this instant would preserve)."""
        if self.system is None:
            raise TenantError(f"tenant {self.tenant_id} is not booted")
        return capture_crash_state(self.system)

    def save_snapshot(self) -> None:
        self.backend.store(self.tenant_id, self.capture())
        self.metrics.snapshots += 1
        self._acked_since_snapshot = 0

    # -- requests ------------------------------------------------------------

    def apply(
        self, request: Request, crash_at: Optional[int] = None
    ) -> Reply:
        """Execute one request to completion; raises :class:`PowerFailure`
        if the (scheduled or explicit) power failure fires mid-request.

        After a :class:`PowerFailure` the tenant is unusable until
        :meth:`recover` runs — the supervisor's job.
        """
        if self._pending_crash is not None:
            raise TenantError(
                f"tenant {self.tenant_id} crashed and was not recovered"
            )
        if self.machine is None or self.system is None:
            raise TenantError(f"tenant {self.tenant_id} is not booted")
        spec = _OPS.get(request.op)
        if spec is None:
            return Reply(ok=False, op=request.op, key=request.key,
                         error=f"unknown op {request.op!r}")
        func_name, make_args = spec

        ordinal = self.attempts
        self.attempts += 1
        plan = crash_at
        if plan is None and self.chaos is not None:
            plan = self.chaos.crash_event(self.tenant_id, ordinal)

        machine = self.machine
        machine.harts.clear()  # the next spawn lands on core 0
        machine.spawn(func_name, make_args(request))
        observer = self.system
        injector = None
        if plan is not None:
            injector = CrashInjector(self.system, CrashPlan(at_event=plan))
            observer = injector
        try:
            machine.run(observer, max_steps=self.config.max_steps)
        except PowerFailure as pf:
            # The machine is now volatile garbage; only pf.state (the
            # persistent domain) survives.  Recovery rebuilds everything.
            self.metrics.crashes += 1
            if self.chaos is not None and injector is not None:
                self.chaos.note_fired()
            self._pending_crash = pf.state
            self._in_flight_spawn = (func_name, make_args(request))
            self.machine = None
            self.system = None
            raise
        return self._reply_for(request)

    def _reply_for(self, request: Request) -> Reply:
        self.applied_seq += 1
        reply = Reply(
            ok=True, op=request.op, key=request.key,
            applied_seq=self.applied_seq,
        )
        memory = self.machine.memory
        if request.op == "get":
            reply.found = bool(memory.get(self.layout.result, 0))
            reply.value = memory.get(self.layout.result + 8, 0)
        elif request.op == "put":
            reply.value = request.value
        every = self.config.snapshot_every
        if every > 0:
            self._acked_since_snapshot += 1
            if self._acked_since_snapshot >= every:
                self.save_snapshot()
        return reply

    # -- recovery ------------------------------------------------------------

    def recover(self, state: Optional[CrashState] = None) -> "RecoveryInfo":
        """Run crash recovery and resume interrupted execution.

        ``state`` defaults to the pending in-flight crash snapshot (the
        supervisor path); tests may pass an explicit snapshot.  The
        resumed machine runs to completion, finishing whatever execution
        the failure interrupted, before the tenant accepts new requests.

        Recovery itself may lose power (a chaos-scheduled nested
        failure): then this raises :class:`PowerFailure` with the
        recovery-crashed domain stashed as the new pending crash, and the
        supervisor simply calls :meth:`recover` again — the arch-level
        protocol is re-entrant, so the retry converges to the same state
        an uninterrupted recovery would have produced.
        """
        if state is None:
            state = self._pending_crash
        if state is None:
            raise TenantError("nothing to recover from")
        cold = self._in_flight_spawn or _BOOT_SPAWN
        info = self._recover_from(state, cold_spawn=cold)
        self._pending_crash = None
        self._in_flight_spawn = None
        return info

    def _recover_from(
        self, state: CrashState, cold_spawn: Tuple[str, list]
    ) -> "RecoveryInfo":
        start = time.perf_counter()
        ordinal = self.recovery_attempts
        self.recovery_attempts += 1
        plan = None
        if self.chaos is not None:
            plan = self.chaos.recovery_crash_event(self.tenant_id, ordinal)
        domain = state.clone()
        observer = None
        if plan is not None:
            # Crash recovery itself at durable step ``plan``: the injector
            # counts the step engine's observer events and captures the
            # partially recovered domain — which, because run_recovery
            # only commits at its final step, is itself recoverable.
            observer = CrashInjector(
                None, CrashPlan(at_event=plan), capture=lambda: domain
            )
        try:
            recovered = run_recovery(domain, self.module, strict=False,
                                     observer=observer)
        except PowerFailure as pf:
            self.metrics.crashes += 1
            if self.chaos is not None:
                self.chaos.note_fired()
            self._pending_crash = pf.state
            self.machine = None
            self.system = None
            raise
        if 0 in recovered.report.quarantined_cores:
            raise TenantError(
                f"tenant {self.tenant_id}: core fenced off by recovery "
                f"({recovered.report.summary()})"
            )
        machine, system = prepare_resumed_run(
            recovered,
            self.module,
            [cold_spawn],
            params=self.config.effective_params(),
            threshold=self.config.threshold,
            quantum=self.config.quantum,
        )
        # Recovery is the restart path: finish the interrupted execution
        # before serving anything new.
        machine.run(system, max_steps=self.config.max_steps)
        machine.harts.clear()
        self.machine = machine
        self.system = system
        wall = time.perf_counter() - start
        self.metrics.recoveries += 1
        self.metrics.recovery_latency.add(wall)
        return RecoveryInfo(
            wall_s=wall,
            regions_redone=recovered.regions_redone,
            regions_rolled_back=recovered.regions_rolled_back,
            redo_words=recovered.redo_words,
            undo_words=recovered.undo_words,
            clean=recovered.report.clean,
        )

    def power_cycle(self) -> "RecoveryInfo":
        """Capture the live persistent domain and go through recovery —
        the supervisor's response to a wedged (non-crash) failure."""
        state = self._pending_crash or self.capture()
        self._pending_crash = state
        return self.recover(state)

    # -- inspection ----------------------------------------------------------

    def table(self) -> Dict[int, int]:
        """Live key->value mapping (architectural state)."""
        if self.machine is None:
            raise TenantError(f"tenant {self.tenant_id} is not booted")
        return dump_table(self.machine.memory, self.layout)

    def verify_recovered_table(self) -> Dict[int, int]:
        """The table as it would exist after a power failure *right now*
        followed by recovery — a simulated final outage that leaves the
        live tenant untouched (capture is a deep copy)."""
        state = self.capture()
        recovered = recover(state, self.module, strict=False)
        machine, system = prepare_resumed_run(
            recovered,
            self.module,
            [_BOOT_SPAWN],
            params=self.config.effective_params(),
            threshold=self.config.threshold,
            quantum=self.config.quantum,
        )
        machine.run(system, max_steps=self.config.max_steps)
        return dump_table(machine.memory, self.layout)

    def stats_words(self) -> Dict[str, int]:
        """The module's own stats counters (at-least-once under replay)."""
        if self.machine is None:
            raise TenantError(f"tenant {self.tenant_id} is not booted")
        s = self.layout.stats
        mem = self.machine.memory
        return {
            "puts": mem.get(s, 0),
            "deletes": mem.get(s + 8, 0),
            "misses": mem.get(s + 16, 0),
            "probes": mem.get(s + 24, 0),
        }


@dataclass
class RecoveryInfo:
    """What one recovery pass did."""

    wall_s: float
    regions_redone: int = 0
    regions_rolled_back: int = 0
    redo_words: int = 0
    undo_words: int = 0
    clean: bool = True
