"""Persistent-memory-as-a-service: the async multi-tenant front-end.

The stack beneath this package simulates one Capri machine at a time.
This package makes it *connectable*: a long-running asyncio service that
hosts many independent Capri machines — one persistence domain per
tenant — behind a request API, where crash recovery is simply the
restart path (execution transparently resumed after a power failure).

Modules
-------
state       durable-snapshot codec: CrashState <-> JSON payload
backends    pluggable tenant-state stores (memory / disk / sharded)
tenant      one Capri machine serving per-operation requests
mailbox     bounded per-tenant queues, backpressure, dead letters
metrics     per-tenant counters and p50/p99 latency reservoirs
chaos       deterministic power-failure schedules for testing
service     the asyncio front-end: tenant manager + supervisor
server      a line-oriented TCP endpoint (``python -m repro serve``)
loadgen     traffic generator with injected power failures
            (``python -m repro loadgen``)
"""

from repro.service.backends import (
    DiskBackend,
    MemoryBackend,
    ShardedBackend,
    StateBackend,
    make_backend,
)
from repro.service.chaos import CrashSchedule
from repro.service.mailbox import DeadLetter, DeadLetterQueue, Mailbox, MailboxFull
from repro.service.service import Service, ServiceConfig
from repro.service.tenant import Reply, Request, Tenant, TenantConfig

__all__ = [
    "CrashSchedule",
    "DeadLetter",
    "DeadLetterQueue",
    "DiskBackend",
    "Mailbox",
    "MailboxFull",
    "MemoryBackend",
    "Reply",
    "Request",
    "Service",
    "ServiceConfig",
    "ShardedBackend",
    "StateBackend",
    "Tenant",
    "TenantConfig",
    "make_backend",
]
