"""Bounded per-tenant mailboxes and the dead-letter queue.

Backpressure is a *policy*, chosen per service:

* ``queue`` — ``submit`` awaits until the mailbox has room (clients are
  throttled to the tenant's service rate),
* ``reject`` — a full mailbox fails the submit immediately with
  :class:`MailboxFull` (load shedding; the service turns it into a
  rejected reply, never a dropped one).

The dead-letter queue is the service's no-silent-loss ledger: a request
in flight when the power fails is captured here *before* recovery
starts; after recovery it is replayed, and the entry is marked
``replayed`` (acked to the client) or left ``dead`` (surfaced in
``stats``).  Either way the request's fate is observable.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: DeadLetter.status values.
CAPTURED = "captured"
REPLAYED = "replayed"
DEAD = "dead"

_POLICIES = ("queue", "reject")


class MailboxFull(Exception):
    """Raised by ``reject``-policy mailboxes when at capacity."""


class Mailbox:
    """An asyncio queue with a depth bound, a policy, and depth metrics."""

    def __init__(self, depth: int = 64, policy: str = "queue") -> None:
        if depth < 1:
            raise ValueError("mailbox depth must be >= 1")
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {_POLICIES}")
        self.depth = depth
        self.policy = policy
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=depth)
        self.max_depth = 0
        self.enqueued = 0
        self.rejected = 0

    def qsize(self) -> int:
        return self._queue.qsize()

    async def put(self, item: Any) -> None:
        if self.policy == "reject":
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                self.rejected += 1
                raise MailboxFull(
                    f"mailbox at capacity ({self.depth})"
                ) from None
        else:
            await self._queue.put(item)
        self.enqueued += 1
        self.max_depth = max(self.max_depth, self._queue.qsize())

    async def get(self) -> Any:
        return await self._queue.get()


@dataclass
class DeadLetter:
    """One captured in-flight request."""

    seq: int
    tenant_id: str
    request: Any
    reason: str
    status: str = CAPTURED
    attempts: int = 0
    detail: str = ""


@dataclass
class DeadLetterQueue:
    """Service-wide ledger of requests interrupted by power failures."""

    letters: List[DeadLetter] = field(default_factory=list)
    _seq: "itertools.count" = field(default_factory=itertools.count)

    def capture(self, tenant_id: str, request: Any, reason: str) -> DeadLetter:
        letter = DeadLetter(
            seq=next(self._seq),
            tenant_id=tenant_id,
            request=request,
            reason=reason,
        )
        self.letters.append(letter)
        return letter

    def mark_replayed(self, letter: DeadLetter, attempts: int) -> None:
        letter.status = REPLAYED
        letter.attempts = attempts

    def mark_dead(self, letter: DeadLetter, attempts: int, detail: str) -> None:
        letter.status = DEAD
        letter.attempts = attempts
        letter.detail = detail

    # -- queries -------------------------------------------------------------

    def dead(self, tenant_id: Optional[str] = None) -> List[DeadLetter]:
        return [
            l for l in self.letters
            if l.status == DEAD and (tenant_id is None or l.tenant_id == tenant_id)
        ]

    def counts(self) -> Dict[str, int]:
        out = {CAPTURED: 0, REPLAYED: 0, DEAD: 0}
        for letter in self.letters:
            out[letter.status] += 1
        return out
