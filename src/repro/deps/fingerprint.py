"""Subsystem-granularity content fingerprints.

The package is partitioned into declared *subsystems* — compiler, arch,
check, workloads, trace, fault, eval glue, service, plus a ``core`` of
shared plumbing — and each gets one sha256 content hash over its source
files.  Cache entries (:mod:`repro.sweep.cache`) record the subsystem
hashes their run actually depended on (:mod:`repro.deps.probe`), so a
source change invalidates exactly the dependent entries instead of the
whole cache: editing an eval script leaves every simulation warm, while
editing ``arch/`` re-runs only the runs that exercised the architecture.

The partition is *path-prefix declared*, not inferred: every ``.py``
file under ``src/repro`` maps to exactly one subsystem via
:func:`subsystem_for_path` (unmatched files land in ``core``, the
implicit dependency of every run — safe by construction: a file nobody
classified invalidates everything that ran).

Environment knobs (both honoured by :func:`subsystem_hashes`):

``REPRO_CODE_VERSION``
    The historical whole-tree override.  When set, every subsystem hash
    derives from it — the existing test idiom "bump the version, watch
    everything invalidate" keeps working unchanged.
``REPRO_SUBSYSTEM_SALT``
    ``"arch=x,eval=y"`` mixes a salt into the named subsystems only.
    Tests use it to simulate a source edit in one subsystem without
    touching files.

Delta sweeps (``repro sweep --since <rev>``) compare the working tree's
hashes against :func:`subsystem_hashes_at_rev`, which reads blobs
straight out of git (``ls-tree`` + ``cat-file --batch``) and hashes them
byte-identically to the working-tree scan.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Environment override for the whole-tree code version (legacy knob).
CODE_VERSION_ENV = "REPRO_CODE_VERSION"

#: ``"name=salt,name=salt"`` — perturb named subsystem hashes (tests).
SUBSYSTEM_SALT_ENV = "REPRO_SUBSYSTEM_SALT"

#: Every declared subsystem, in stable order.
SUBSYSTEMS: Tuple[str, ...] = (
    "arch",
    "check",
    "compiler",
    "core",
    "eval",
    "fault",
    "litmus",
    "service",
    "trace",
    "workloads",
)

#: First path component under ``src/repro`` -> subsystem.
_DIR_MAP: Dict[str, str] = {
    "ir": "compiler",
    "compiler": "compiler",
    "arch": "arch",
    "check": "check",
    "workloads": "workloads",
    "trace": "trace",
    "fault": "fault",
    "litmus": "litmus",
    "eval": "eval",
    "sweep": "eval",  # engine/cache/CLI glue: orchestration, not semantics
    "service": "service",
    "isa": "core",  # the functional machine: everything executes on it
    "deps": "core",
}

#: Top-level files that are not ``core`` plumbing.
_FILE_MAP: Dict[str, str] = {
    "jsonout.py": "eval",  # CLI output convention: never affects results
}


class DepsError(RuntimeError):
    """Subsystem hashing failed (typically: git unavailable / bad rev)."""


def package_root() -> Path:
    """The installed ``repro`` package directory (``…/src/repro``)."""
    return Path(__file__).resolve().parent.parent


def subsystem_for_path(relpath: str) -> str:
    """Subsystem owning ``relpath`` (POSIX, relative to the package root)."""
    parts = relpath.split("/")
    if len(parts) == 1:
        return _FILE_MAP.get(parts[0], "core")
    return _DIR_MAP.get(parts[0], "core")


def subsystem_for_module(module_name: str) -> Optional[str]:
    """Subsystem owning a dotted module name, or ``None`` if foreign.

    ``repro.arch.nvm`` -> ``"arch"``; ``repro.api`` -> ``"core"``;
    ``json`` -> ``None``.
    """
    parts = module_name.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "core"
    sub = _DIR_MAP.get(parts[1])
    if sub is not None:
        return sub
    return _FILE_MAP.get(parts[1] + ".py", "core")


# ---------------------------------------------------------------------------
# hashing
# ---------------------------------------------------------------------------

def _digest(entries: Iterable[Tuple[str, bytes]]) -> str:
    digest = hashlib.sha256()
    for relpath, content in entries:
        digest.update(relpath.encode())
        digest.update(b"\0")
        digest.update(content)
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _bucketed(files: Iterable[Tuple[str, bytes]]) -> Dict[str, str]:
    buckets: Dict[str, List[Tuple[str, bytes]]] = {s: [] for s in SUBSYSTEMS}
    for relpath, content in sorted(files):
        buckets[subsystem_for_path(relpath)].append((relpath, content))
    return {name: _digest(entries) for name, entries in buckets.items()}


def _scan_tree(root: Path) -> Dict[str, str]:
    return _bucketed(
        (path.relative_to(root).as_posix(), path.read_bytes())
        for path in root.rglob("*.py")
    )


def _parse_salt(raw: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, salt = item.partition("=")
        out[name.strip()] = salt
    return out


def _apply_env(hashes: Dict[str, str]) -> Dict[str, str]:
    env_version = os.environ.get(CODE_VERSION_ENV)
    if env_version:
        # Legacy whole-tree override: derive every subsystem hash from it
        # so bumping the env invalidates everything, exactly as before.
        hashes = {
            name: hashlib.sha256(f"{env_version}:{name}".encode())
            .hexdigest()[:16]
            for name in hashes
        }
    salt_raw = os.environ.get(SUBSYSTEM_SALT_ENV)
    if salt_raw:
        hashes = dict(hashes)
        for name, salt in _parse_salt(salt_raw).items():
            if name in hashes:
                hashes[name] = hashlib.sha256(
                    f"{hashes[name]}:{salt}".encode()
                ).hexdigest()[:16]
    return hashes


#: memo: (REPRO_CODE_VERSION, REPRO_SUBSYSTEM_SALT) -> hashes
_HASHES: Dict[Tuple[Optional[str], Optional[str]], Dict[str, str]] = {}
_TREE_HASHES: Optional[Dict[str, str]] = None


def subsystem_hashes(package: Optional[Path] = None) -> Dict[str, str]:
    """Current content hash per subsystem (``{name: 16-hex}``).

    With no argument, hashes the installed package with the environment
    overrides applied, memoised per (version, salt) environment — the
    hot path for cache validation.  An explicit ``package`` path hashes
    that tree raw (tests point this at synthetic packages).
    """
    if package is not None:
        return _scan_tree(Path(package))
    global _TREE_HASHES
    key = (
        os.environ.get(CODE_VERSION_ENV),
        os.environ.get(SUBSYSTEM_SALT_ENV),
    )
    cached = _HASHES.get(key)
    if cached is None:
        if _TREE_HASHES is None:
            _TREE_HASHES = _scan_tree(package_root())
        cached = _HASHES[key] = _apply_env(_TREE_HASHES)
    return cached


def code_version() -> str:
    """Whole-tree content hash (the schema-v1 fallback key).

    Kept for entries and callers that predate subsystem granularity: a
    cache payload carrying ``code_version`` but no ``deps`` is validated
    against this.  ``REPRO_CODE_VERSION`` overrides, as always.
    """
    env = os.environ.get(CODE_VERSION_ENV)
    if env:
        return env
    return _digest(
        (name, value.encode())
        for name, value in sorted(subsystem_hashes().items())
    )


def deps_token(names: Iterable[str]) -> Dict[str, str]:
    """The validity token a cache entry stores: ``{subsystem: hash}``."""
    hashes = subsystem_hashes()
    return {name: hashes[name] for name in sorted(set(names)) if name in hashes}


# ---------------------------------------------------------------------------
# git: subsystem hashes at a revision
# ---------------------------------------------------------------------------

def _git(args: List[str], cwd: Path, input_bytes: Optional[bytes] = None) -> bytes:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            input=input_bytes,
            capture_output=True,
            check=True,
        )
    except FileNotFoundError as err:
        raise DepsError("git executable not found") from err
    except subprocess.CalledProcessError as err:
        detail = err.stderr.decode(errors="replace").strip()
        raise DepsError(f"git {' '.join(args[:2])} failed: {detail}") from err
    return proc.stdout


def _repo_root(package: Path) -> Path:
    out = _git(["rev-parse", "--show-toplevel"], cwd=package)
    return Path(out.decode().strip())


def subsystem_hashes_at_rev(
    rev: str,
    repo_root: Optional[Path] = None,
    package: Optional[Path] = None,
) -> Dict[str, str]:
    """Subsystem hashes of the package as committed at git ``rev``.

    Reads blobs directly from the object store (no checkout) and hashes
    them with the exact byte recipe of the working-tree scan, so equal
    trees produce equal hashes.  Raises :class:`DepsError` when git or
    the revision is unavailable.
    """
    package = Path(package) if package is not None else package_root()
    root = Path(repo_root) if repo_root is not None else _repo_root(package)
    prefix = package.resolve().relative_to(root.resolve()).as_posix()

    listing = _git(["ls-tree", "-r", "-z", rev, "--", prefix], cwd=root)
    entries: List[Tuple[str, str]] = []  # (oid, relpath-within-package)
    for record in listing.split(b"\0"):
        if not record:
            continue
        header, _, path = record.partition(b"\t")
        fields = header.split()
        if len(fields) != 3 or fields[1] != b"blob":
            continue
        relpath = path.decode()
        if not relpath.endswith(".py"):
            continue
        if prefix and relpath.startswith(prefix + "/"):
            relpath = relpath[len(prefix) + 1:]
        entries.append((fields[2].decode(), relpath))

    if not entries:
        return _bucketed([])

    batch_input = "".join(oid + "\n" for oid, _ in entries).encode()
    blob = _git(["cat-file", "--batch"], cwd=root, input_bytes=batch_input)
    files: List[Tuple[str, bytes]] = []
    pos = 0
    for oid, relpath in entries:
        nl = blob.index(b"\n", pos)
        header = blob[pos:nl].split()
        if len(header) < 3 or header[1] != b"blob":
            raise DepsError(f"unexpected cat-file record for {oid}: {header!r}")
        size = int(header[2])
        start = nl + 1
        files.append((relpath, blob[start:start + size]))
        pos = start + size + 1  # trailing newline after each blob
    return _bucketed(files)


def changed_subsystems_since(
    rev: str,
    repo_root: Optional[Path] = None,
    package: Optional[Path] = None,
) -> List[str]:
    """Subsystems whose hash differs between ``rev`` and the present.

    "The present" means :func:`subsystem_hashes` — the working tree with
    the environment overrides applied — matching exactly what cache
    validation compares entries against, so a delta sweep's re-run set
    agrees with what the cache will actually miss on.
    """
    old = subsystem_hashes_at_rev(rev, repo_root=repo_root, package=package)
    new = subsystem_hashes() if package is None else subsystem_hashes(package)
    return sorted(
        name for name in SUBSYSTEMS if old.get(name) != new.get(name)
    )
