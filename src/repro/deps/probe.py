"""The usage probe: which subsystems did this run actually exercise?

Two complementary mechanisms, both cheap enough for the hot path:

* **Declared touch points.**  The handful of chokepoints every
  simulation funnels through call :func:`touch` with their subsystem
  name — ``Workload.build`` -> ``workloads``, ``CapriCompiler.compile``
  -> ``compiler``, ``build_system`` -> ``arch``,
  ``PersistencyChecker.attach`` -> ``check``, ``capture_trace`` ->
  ``trace``, ``golden_run`` -> ``fault``.  With no probe active a touch
  is a dict lookup and a return — nothing to allocate, nothing to lock.
* **Import scan.**  On exit the probe diffs ``sys.modules`` against its
  entry snapshot and maps any newly imported ``repro.*`` module to its
  subsystem — belt and braces for code paths that slip past the declared
  points (a fresh worker process importing ``repro.check`` lazily, say).

Probes nest (``execute_spec`` inside a campaign inside a sweep): every
touch is broadcast to *all* active probes, so an outer probe sees the
union of its children.  ``core`` is always included — shared plumbing
(api, isa, deps itself) is everybody's dependency.
"""

from __future__ import annotations

import sys
from typing import List, Set, Tuple

from repro.deps.fingerprint import SUBSYSTEMS, subsystem_for_module

#: Active probes, innermost last.  Module-global by design: the touch
#: points must not thread a probe argument through every call signature.
_STACK: List["UsageProbe"] = []

_KNOWN = frozenset(SUBSYSTEMS)


def touch(*names: str) -> None:
    """Record that the calling code exercised ``names`` subsystems.

    No-op (and near-free) when no probe is active.  Unknown names are
    ignored rather than raised: a touch point must never be able to
    break a simulation.
    """
    if not _STACK:
        return
    for probe in _STACK:
        probe._seen.update(name for name in names if name in _KNOWN)


class UsageProbe:
    """Context manager collecting the subsystems used inside its window."""

    __slots__ = ("_seen", "_modules_before")

    def __init__(self) -> None:
        self._seen: Set[str] = {"core"}
        self._modules_before: Set[str] = set()

    def __enter__(self) -> "UsageProbe":
        self._modules_before = set(sys.modules)
        _STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Remove *this* probe wherever it sits (exceptions can unwind
        # nested probes out of order without corrupting the stack).
        try:
            _STACK.remove(self)
        except ValueError:
            pass
        for name in set(sys.modules) - self._modules_before:
            sub = subsystem_for_module(name)
            if sub is not None:
                self._seen.add(sub)
        return None

    def subsystems(self) -> Tuple[str, ...]:
        """The recorded dependency set, sorted, always including core."""
        return tuple(sorted(self._seen))


def active() -> bool:
    """Is any probe currently recording?  (Introspection for tests.)"""
    return bool(_STACK)
