"""Subsystem fingerprints + usage probes: dependency-aware invalidation.

``repro.deps`` answers two questions the result cache needs:

1. *What version is each part of the code at?* —
   :func:`subsystem_hashes` partitions the package into declared
   subsystems and content-hashes each (:mod:`repro.deps.fingerprint`).
2. *Which parts did this run actually use?* — :class:`UsageProbe` /
   :func:`touch` record the subsystems exercised by one execution
   (:mod:`repro.deps.probe`).

A cache entry stores ``deps_token(probe.subsystems())`` and stays valid
as long as those subsystems' hashes are unchanged.  Delta sweeps diff
the hashes against a git revision (:func:`changed_subsystems_since`)
to predict — and then verify — exactly which figures a change affects.
"""

from repro.deps.fingerprint import (
    CODE_VERSION_ENV,
    SUBSYSTEM_SALT_ENV,
    SUBSYSTEMS,
    DepsError,
    changed_subsystems_since,
    code_version,
    deps_token,
    package_root,
    subsystem_for_module,
    subsystem_for_path,
    subsystem_hashes,
    subsystem_hashes_at_rev,
)
from repro.deps.probe import UsageProbe, touch

__all__ = [
    "CODE_VERSION_ENV",
    "SUBSYSTEM_SALT_ENV",
    "SUBSYSTEMS",
    "DepsError",
    "UsageProbe",
    "changed_subsystems_since",
    "code_version",
    "deps_token",
    "package_root",
    "subsystem_for_module",
    "subsystem_for_path",
    "subsystem_hashes",
    "subsystem_hashes_at_rev",
    "touch",
]
