"""The consolidated command line: ``python -m repro <subcommand>``.

========   ==========================================================
sweep      parallel benchmark sweep with persistent result cache
fault      crash-consistency fault-injection campaign
check      online persistency checker: sanitized runs, mutant matrix
trace      columnar trace capture / replay / campaign bench
litmus     persistency litmus tests: generate / run / explore / mutants
profile    workload characterisation tables
report     one-shot full evaluation report (all figures + analyses)
figures    individual paper figures (fig8, fig9, …)
ablations  hardware-parameter ablation sweeps
serve      async multi-tenant persistence service over TCP
loadgen    crash-injected traffic generator for the service
========   ==========================================================

Each subcommand delegates to the existing module (``repro.sweep.cli``,
``repro.fault``, ``repro.check``, ``repro.eval.profile``,
``repro.eval.make_report``, ``repro.eval.figures``,
``repro.eval.ablations``); the old per-module entry points keep working
and print a pointer here.
"""

from __future__ import annotations

import sys
from typing import List, Optional

_USAGE = """\
usage: python -m repro <subcommand> [options]

subcommands:
  sweep      parallel benchmark sweep with persistent result cache
  fault      crash-consistency fault-injection campaign
  check      online persistency checker (sanitized runs / --mutants)
  trace      trace capture|replay|bench (repro.trace)
  litmus     litmus generate|run|explore|mutants (repro.litmus)
  profile    workload characterisation tables
  report     one-shot full evaluation report
  figures    individual paper figures (fig8, fig9, ...)
  ablations  hardware-parameter ablation sweeps
  serve      async multi-tenant persistence service over TCP
  loadgen    crash-injected traffic generator for the service

`python -m repro <subcommand> --help` shows the subcommand's options.
"""


def _dispatch(command: str):
    if command == "sweep":
        from repro.sweep.cli import main
    elif command == "fault":
        from repro.fault.__main__ import main
    elif command == "check":
        from repro.check.__main__ import main
    elif command == "trace":
        from repro.trace.cli import main
    elif command == "litmus":
        from repro.litmus.cli import main
    elif command == "profile":
        from repro.eval.profile import main
    elif command == "report":
        from repro.eval.make_report import main
    elif command == "figures":
        from repro.eval.figures import main
    elif command == "ablations":
        from repro.eval.ablations import main
    elif command == "serve":
        from repro.service.server import main
    elif command == "loadgen":
        from repro.service.loadgen import main
    else:
        return None
    return main


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help", "help"):
        print(_USAGE, end="")
        return 0
    entry = _dispatch(args[0])
    if entry is None:
        print(f"unknown subcommand {args[0]!r}\n\n{_USAGE}", end="", file=sys.stderr)
        return 2
    return entry(args[1:])


if __name__ == "__main__":
    sys.exit(main())
