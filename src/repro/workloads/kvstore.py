"""The ``kv_store`` workload: an ordinary open-addressing hash table.

The paper's Section 1 motivation made executable: a linear-probing hash
table written with *no* transactions, no pmalloc, no flushes and no
recovery code, made crash-consistent purely by compiling it under Capri.
It started life as ``examples/kv_store.py``; promoting it into the
registry means the sweep engine, the fault campaign, the persistency
checker, and the multi-tenant service front-end
(:mod:`repro.service`) all share one builder instead of four private
copies.

Two entry points:

* :func:`build_kv_store` — the registry builder: the table plus a
  seeded batch driver (``main``) issuing a put/get/delete mix, exactly
  like every other benchmark stand-in.
* :func:`build_kv_service_module` — the same module with its
  :class:`KvLayout` (table/stats/result addresses), for callers that
  spawn the per-operation entry points (``kv_put``/``kv_get``/
  ``kv_delete``) directly — one request per hart activation, the
  service front-end's request model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.ir.module import Module

#: Registry name.
KV_STORE = "kv_store"

#: Slots in the table (power of two); each slot is [key, value].
TABLE_SLOTS = 128

#: Slot values with special meaning in the key word.
EMPTY = 0
TOMBSTONE = -1

#: Largest key the drivers generate (keys are 1..KEY_SPACE).
KEY_SPACE = 64


@dataclass(frozen=True)
class KvLayout:
    """Data-segment addresses of one built kv module."""

    table: int
    stats: int  # [puts, deletes, misses, probes]
    result: int  # [found, value] — written by kv_get
    slots: int

    def slot_addr(self, index: int) -> int:
        return self.table + 16 * index


def dump_table(memory: Dict[int, int], layout: KvLayout) -> Dict[int, int]:
    """Live key -> value mapping from a (machine or NVM) word image."""
    live: Dict[int, int] = {}
    for i in range(layout.slots):
        k = memory.get(layout.slot_addr(i), 0)
        if k not in (EMPTY, TOMBSTONE):
            live[k] = memory.get(layout.slot_addr(i) + 8, 0)
    return live


def _build(slots: int) -> Tuple[Module, KvLayout]:
    """The table and its operations — plain code, no persistence logic."""
    from repro.ir import IRBuilder, verify_module

    b = IRBuilder(KV_STORE)
    table = b.module.alloc("table", 2 * slots)
    stats = b.module.alloc("stats", 4)
    result = b.module.alloc("result", 2)

    def slot_addr(f, idx):
        return f.add(table, f.shl(f.mul(idx, 2), 3))

    def hash_index(f, key):
        h = f.mul(key, 0x9E3779B1)
        return f.and_(f.xor(h, f.shr(h, 16)), slots - 1)

    with b.function("kv_put", params=["key", "value"]) as f:
        idx = hash_index(f, f.param(0))
        # Earliest tombstone in the probe chain; claimed only after the
        # whole chain (up to the first EMPTY) proves the key absent —
        # inserting at the first tombstone blindly would leave a stale
        # duplicate of an existing key further down the chain.
        free = f.li(-1)
        with f.for_range(slots):
            addr = slot_addr(f, idx)
            k = f.load(addr)
            with f.if_then(f.cmp("seq", k, f.param(0))):
                f.store(f.param(0), addr)  # two plain stores: the torn-
                f.store(f.param(1), addr, offset=8)  # write hazard, solved
                f.store(f.add(f.load(stats), 1), stats)
                f.ret(1)
            tomb = f.cmp("seq", k, TOMBSTONE)
            with f.if_then(f.and_(tomb, f.cmp("slt", free, 0))):
                f.add(idx, 0, dst=free)
            with f.if_then(f.cmp("seq", k, EMPTY)):
                with f.if_then(f.cmp("slt", free, 0)):
                    f.add(idx, 0, dst=free)
                ins = slot_addr(f, free)
                f.store(f.param(0), ins)
                f.store(f.param(1), ins, offset=8)
                f.store(f.add(f.load(stats), 1), stats)
                f.ret(1)
            f.add(idx, 1, dst=idx)
            f.and_(idx, slots - 1, dst=idx)
            f.store(f.add(f.load(stats, offset=24), 1), stats, offset=24)
        with f.if_then(f.cmp("slt", f.li(-1), free)):
            ins = slot_addr(f, free)  # chain fully probed: reuse a tombstone
            f.store(f.param(0), ins)
            f.store(f.param(1), ins, offset=8)
            f.store(f.add(f.load(stats), 1), stats)
            f.ret(1)
        f.ret(0)  # table full

    with b.function("kv_get", params=["key"]) as f:
        f.store(0, result)
        f.store(0, result, offset=8)
        idx = hash_index(f, f.param(0))
        with f.for_range(slots):
            addr = slot_addr(f, idx)
            k = f.load(addr)
            with f.if_then(f.cmp("seq", k, f.param(0))):
                f.store(1, result)
                f.store(f.load(addr, offset=8), result, offset=8)
                f.ret(1)
            with f.if_then(f.cmp("seq", k, EMPTY)):
                f.store(f.add(f.load(stats, offset=16), 1), stats, offset=16)
                f.ret(0)  # not present
            f.add(idx, 1, dst=idx)
            f.and_(idx, slots - 1, dst=idx)
        f.ret(0)

    with b.function("kv_delete", params=["key"]) as f:
        idx = hash_index(f, f.param(0))
        with f.for_range(slots):
            addr = slot_addr(f, idx)
            k = f.load(addr)
            with f.if_then(f.cmp("seq", k, f.param(0))):
                f.store(TOMBSTONE, addr)
                f.store(0, addr, offset=8)
                f.store(f.add(f.load(stats, offset=8), 1), stats, offset=8)
                f.ret(1)
            with f.if_then(f.cmp("seq", k, EMPTY)):
                f.store(f.add(f.load(stats, offset=16), 1), stats, offset=16)
                f.ret(0)
            f.add(idx, 1, dst=idx)
            f.and_(idx, slots - 1, dst=idx)
        f.ret(0)

    # No-op boot entry: the cold-restart spawn point of a tenant with no
    # in-flight request (recovery needs *a* spawn configuration even when
    # there is nothing to replay).
    with b.function("kv_boot") as f:
        f.ret()

    # The batch driver every registry runner (sweeps, campaigns, the
    # checker) uses: a seeded put/get/delete mix over a small key space.
    with b.function("main", params=["ops"]) as f:
        rng = f.li(0xBEEF)
        with f.for_range(f.param(0)):
            f.mul(rng, 0x9E3779B1, dst=rng)
            f.xor(rng, f.shr(rng, 13), dst=rng)
            key = f.add(f.and_(rng, KEY_SPACE - 1), 1)  # keys 1..KEY_SPACE
            kind = f.and_(f.shr(rng, 20), 7)
            with f.if_else(f.cmp("slt", kind, 2)) as br:
                f.call("kv_delete", [key], returns=True)
                br.otherwise()
                with f.if_else(f.cmp("slt", kind, 4)) as br2:
                    f.call("kv_get", [key], returns=True)
                    br2.otherwise()
                    value = f.and_(f.shr(rng, 8), 0xFFFF)
                    f.call("kv_put", [key, value], returns=True)
        f.ret()

    verify_module(b.module)
    return b.module, KvLayout(table=table, stats=stats, result=result, slots=slots)


def build_kv_store(
    scale: float = 1.0, ops: int = None
) -> Tuple[Module, List[Tuple[str, Sequence[int]]]]:
    """Registry builder: the table plus the seeded batch driver."""
    if ops is None:
        ops = max(1, int(240 * scale))
    module, _layout = _build(TABLE_SLOTS)
    return module, [("main", [ops])]


def build_kv_service_module(slots: int = TABLE_SLOTS) -> Tuple[Module, KvLayout]:
    """The module plus its data layout, for per-operation spawning."""
    return _build(slots)
