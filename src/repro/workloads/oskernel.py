"""The OS-service stand-in.

The paper recompiles the whole Linux kernel with the Capri compiler so
the operating system itself lives in the persistence domain.  We cannot
run Linux; this workload models the kernel-code contribution to WSP cost:
syscall-handler-shaped code — short functions, frequent calls (mandatory
boundaries), dense small stores to kernel structures (run queues, file
tables), and branchy dispatch.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.workloads.generators import HASH_MULT


def build_oskernel(scale: float = 1.0) -> Module:
    """A syscall-dispatch loop over short handler functions."""
    b = IRBuilder("oskernel")
    runqueue = b.module.alloc("runqueue", 64)
    filetable = b.module.alloc("filetable", 128)
    counters = b.module.alloc("counters", 16)

    with b.function("sys_sched", params=["task"]) as f:
        slot = f.and_(f.param(0), 63)
        addr = f.add(runqueue, f.shl(slot, 3))
        f.store(f.add(f.load(addr), 1), addr)
        f.store(f.param(0), counters, offset=0)
        f.ret(slot)

    with b.function("sys_open", params=["inode"]) as f:
        h = f.mul(f.param(0), HASH_MULT)
        slot = f.and_(f.xor(h, f.shr(h, 9)), 127)
        addr = f.add(filetable, f.shl(slot, 3))
        old = f.load(addr)
        with f.if_else(f.cmp("seq", old, 0)) as br:
            f.store(f.param(0), addr)
            br.otherwise()
            f.store(f.add(old, 1), addr)
        f.store(f.param(0), counters, offset=8)
        f.ret(slot)

    with b.function("sys_write", params=["fd", "len"]) as f:
        total = f.li(0)
        with f.for_range(f.param(1)) as i:  # short copy loop
            slot = f.and_(f.add(f.param(0), i), 127)
            addr = f.add(filetable, f.shl(slot, 3))
            f.store(f.add(f.load(addr), i), addr)
            f.add(total, 1, dst=total)
        f.store(total, counters, offset=16)
        f.ret(total)

    with b.function("main", params=["syscalls"]) as f:
        rng = f.li(0xC0FFEE)
        acc = f.li(0)
        with f.for_range(f.param(0)):
            f.mul(rng, HASH_MULT, dst=rng)
            f.xor(rng, f.shr(rng, 17), dst=rng)
            kind = f.and_(rng, 3)
            with f.if_else(f.cmp("seq", kind, 0)) as br0:
                r = f.call("sys_sched", [rng], returns=True)
                f.add(acc, r, dst=acc)
                br0.otherwise()
                with f.if_else(f.cmp("seq", kind, 1)) as br1:
                    r = f.call("sys_open", [rng], returns=True)
                    f.add(acc, r, dst=acc)
                    br1.otherwise()
                    ln = f.add(f.and_(rng, 7), 1)
                    r = f.call("sys_write", [rng, ln], returns=True)
                    f.add(acc, r, dst=acc)
        f.store(acc, counters, offset=24)
        f.ret(acc)
    verify_module(b.module)
    return b.module
