"""Synthetic benchmark suite standing in for SPEC CPU2017 / STAMP / Splash-3.

The paper evaluates Capri on licensed benchmark binaries we cannot run;
what drives Capri's behaviour is program *shape* — store density, loop
trip counts (short loops limit region sizes, Section 4.3), function-call
frequency (calls are mandatory boundaries), register pressure (live-out
sets size the checkpoint traffic), working-set size (writeback traffic on
the regular path), and threading.  Each stand-in reproduces its
benchmark's shape along those axes; see the per-function docstrings and
DESIGN.md's substitution table.

Public API:

* :func:`repro.workloads.registry.get_workload` — name -> :class:`Workload`
* :func:`repro.workloads.registry.all_workloads` / ``suite_workloads``
* :data:`repro.workloads.registry.SUITES` — the Figure 8/9 benchmark lists
"""

from repro.workloads.registry import (
    SUITES,
    Workload,
    all_workloads,
    get_workload,
    suite_workloads,
    workload_names,
)

__all__ = [
    "SUITES",
    "Workload",
    "all_workloads",
    "get_workload",
    "suite_workloads",
    "workload_names",
]
