"""SPEC CPU2017 stand-ins (the five benchmarks of Figures 8-11).

Each builder returns an uninstrumented module with a single-threaded
``main``.  The ``scale`` parameter multiplies dynamic work so the same
kernels serve quick tests (scale<1) and the benchmark harness (scale>=1).
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.workloads.generators import (
    emit_hash_insert_loop,
    emit_pointer_chase,
    emit_recursive_search,
    emit_short_loop_kernel,
    emit_streaming_stencil,
    emit_tree_walk,
)


def _scaled(n: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(n * scale))


def build_mcf(scale: float = 1.0) -> Module:
    """505.mcf_r — network simplex on sparse graphs.

    Shape: pointer chasing over arc/node tables (latency bound), sparse
    conditional updates, modest store density.  Long chase loops mean
    regions are load-dominated; checkpoint traffic is the main Capri cost.
    """
    b = IRBuilder("505.mcf_r")
    num_nodes = 512
    nodes = b.module.alloc("nodes", 2 * num_nodes)
    init = []
    for i in range(num_nodes):
        init += [i % 97 + 1, (i * 193 + 7) % num_nodes]
    b.module.initial_data.update({nodes + k * 8: v for k, v in enumerate(init)})
    with b.function("main") as f:
        hops = f.li(_scaled(1500, scale))
        acc = emit_pointer_chase(f, f.li(nodes), num_nodes, hops, update=True)
        f.store(acc, nodes)
        f.ret(acc)
    verify_module(b.module)
    return b.module


def build_deepsjeng(scale: float = 1.0) -> Module:
    """531.deepsjeng_r — alpha-beta chess search.

    Shape: deep recursion (call boundaries per node), branchy evaluation,
    sparse transposition-table stores.  Call-heavy code keeps regions
    short regardless of the threshold — exactly the flat threshold curve
    the paper shows for this benchmark.
    """
    b = IRBuilder("531.deepsjeng_r")
    tt = b.module.alloc("ttable", 256)
    emit_recursive_search(b, "search", tt, max_depth=12)
    with b.function("main") as f:
        depth = _scaled(11, min(1.0, scale), minimum=5)
        best = f.call("search", [depth, 1], returns=True)
        f.store(best, tt)
        f.ret(best)
    verify_module(b.module)
    return b.module


def build_leela(scale: float = 1.0) -> Module:
    """541.leela_r — Monte-Carlo tree search for Go.

    Shape: repeated tree descents with leaf playout compute and per-visit
    node updates; a mix of branchy traversal and moderate stores.
    """
    b = IRBuilder("541.leela_r")
    tree_levels = 10
    tree = b.module.alloc("tree", 1 << (tree_levels + 2))
    with b.function("main") as f:
        walks = f.li(_scaled(120, scale))
        acc = emit_tree_walk(f, f.li(tree), tree_levels, walks)
        f.store(acc, tree)
        f.ret(acc)
    verify_module(b.module)
    return b.module


def build_namd(scale: float = 1.0) -> Module:
    """508.namd_r — molecular dynamics force computation.

    Shape: for each particle, a *short* runtime-length inner loop over its
    neighbour list with a force accumulation store.  The paper highlights
    namd as a large winner from speculative unrolling (Sections 4.3/6.2):
    the short inner loop otherwise bounds every region at a handful of
    stores.
    """
    b = IRBuilder("508.namd_r")
    words = 1024
    forces = b.module.alloc("forces", words)
    with b.function("main") as f:
        outer = f.li(_scaled(80, scale))
        # Neighbour-list length is runtime data: ~16 per particle.
        neighbors = f.li(16)
        acc = emit_short_loop_kernel(
            f, f.li(forces), words, outer, neighbors, stores_per_iter=1
        )
        f.store(acc, forces)
        f.ret(acc)
    verify_module(b.module)
    return b.module


def build_lbm(scale: float = 1.0) -> Module:
    """519.lbm_r — lattice Boltzmann fluid streaming.

    Shape: long streaming loops with several stores per site (the D3Q19
    site update writes many distributions) — the most store-dense SPEC
    member, stressing proxy-path and NVM write bandwidth.
    """
    b = IRBuilder("519.lbm_r")
    words = 2048
    lattice = b.module.alloc("lattice", words, init=[i % 101 for i in range(words)])
    with b.function("main") as f:
        trips = f.li(_scaled(500, scale))
        acc = emit_streaming_stencil(
            f, f.li(lattice), words, trips, stores_per_iter=5
        )
        f.store(acc, lattice)
        f.ret(acc)
    verify_module(b.module)
    return b.module
