"""Splash-3 stand-ins — the paper's multi-threaded scientific suite.

Every builder returns a module whose ``worker(tid, ...)`` function runs on
``SPLASH_THREADS`` harts over shared data; synchronisation uses atomic
spin locks (mandatory region boundaries, Section 4.1) and disjoint
per-thread partitions, mirroring Splash-3's properly-synchronised style.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.workloads.generators import (
    emit_grid_relax,
    emit_hash_insert_loop,
    emit_histogram_pass,
    emit_locked_update,
    emit_pointer_chase,
    emit_short_loop_kernel,
    emit_streaming_stencil,
    emit_tree_walk,
)

#: Default hart count for the multi-threaded suite (the paper models 8
#: cores; we default to 4 to keep simulation turnaround reasonable).
#: Every builder accepts ``threads=`` to override (the core-count
#: scaling ablation uses 1..8).
SPLASH_THREADS = 4


def _scaled(n: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(n * scale))


Spawns = List[Tuple[str, Sequence[int]]]


def _spawns(args_fn, threads: int) -> Spawns:
    return [("worker", list(args_fn(tid))) for tid in range(threads)]


def build_barnes(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """barnes — Barnes-Hut N-body: per-thread octree walks + body updates."""
    b = IRBuilder("barnes")
    tree_levels = 9
    tree = b.module.alloc("octree", 1 << (tree_levels + 2))
    bodies = b.module.alloc("bodies", 512)
    with b.function("worker", params=["tid", "walks"]) as f:
        acc = emit_tree_walk(f, f.li(tree), tree_levels, f.param(1))
        # disjoint per-thread body partition update
        part = f.add(bodies, f.shl(f.mul(f.param(0), 512 // max(1, threads)), 3))
        with f.for_range(32) as i:
            addr = f.add(part, f.shl(i, 3))
            f.store(f.add(f.load(addr), acc), addr)
        f.ret(acc)
    verify_module(b.module)
    walks = _scaled(40, scale)
    return b.module, _spawns(lambda tid: (tid, walks), threads)


def build_fmm(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """fmm — fast multipole: hierarchical cell interactions, short lists."""
    b = IRBuilder("fmm")
    words = 1024
    cells = b.module.alloc("cells", words, init=[i % 43 for i in range(words)])
    part_words = words // max(1, threads)
    with b.function("worker", params=["tid", "outer"]) as f:
        lists = f.li(10)  # interaction-list length (runtime data, short)
        part = f.add(cells, f.shl(f.mul(f.param(0), part_words), 3))
        acc = emit_short_loop_kernel(
            f, part, part_words, f.param(1), lists, stores_per_iter=1
        )
        f.ret(acc)
    verify_module(b.module)
    outer = _scaled(30, scale)
    return b.module, _spawns(lambda tid: (tid, outer), threads)


def build_ocean(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """ocean — grid relaxation over disjoint row bands, lock-synced."""
    b = IRBuilder("ocean")
    rows, cols = 20, 20
    grids = [
        b.module.alloc(
            f"grid{t}", rows * cols, init=[(i * 13) % 89 for i in range(rows * cols)]
        )
        for t in range(threads)
    ]
    lock = b.module.alloc("lock", 1)
    shared = b.module.alloc("shared_sum", 8)
    with b.function("worker", params=["grid", "sweeps", "tid"]) as f:
        acc = emit_grid_relax(f, f.param(0), rows, cols, f.param(1))
        emit_locked_update(f, lock, f.li(shared), 8, f.li(2), f.param(2))
        f.store(acc, f.param(0))
        f.ret(acc)
    verify_module(b.module)
    sweeps = _scaled(3, scale, minimum=1)
    return b.module, [
        ("worker", [grids[t], sweeps, t]) for t in range(threads)
    ]


def build_radiosity(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """radiosity — task-queue driven patch refinement: hash + chase mix."""
    b = IRBuilder("radiosity")
    patches = b.module.alloc("patches", 1024)
    queues = b.module.alloc("queues", 2 * 256)
    init = []
    for i in range(256):
        init += [i % 7 + 1, (i * 47 + 3) % 256]
    b.module.initial_data.update({queues + k * 8: v for k, v in enumerate(init)})
    with b.function("worker", params=["tid", "n"]) as f:
        part_words = 1024 // max(1, threads)
        col = emit_hash_insert_loop(
            f,
            f.add(patches, f.shl(f.mul(f.param(0), part_words), 3)),
            min(256, part_words),
            f.param(1),
        )
        acc = emit_pointer_chase(f, f.li(queues), 256, f.param(1), update=False)
        f.ret(f.add(col, acc))
    verify_module(b.module)
    n = _scaled(120, scale)
    return b.module, _spawns(lambda tid: (tid, n), threads)


def build_raytrace(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """raytrace — per-ray BVH descent with short shading stores."""
    b = IRBuilder("raytrace")
    tree_levels = 11
    bvh = b.module.alloc("bvh", 1 << (tree_levels + 2))
    frame = b.module.alloc("frame", 1024)
    with b.function("worker", params=["tid", "rays"]) as f:
        acc = emit_tree_walk(f, f.li(bvh), tree_levels, f.param(1))
        part = f.add(frame, f.shl(f.mul(f.param(0), 1024 // max(1, threads)), 3))
        with f.for_range(16) as i:
            f.store(f.add(acc, i), f.add(part, f.shl(i, 3)))
        f.ret(acc)
    verify_module(b.module)
    rays = _scaled(35, scale)
    return b.module, _spawns(lambda tid: (tid, rays), threads)


def build_volrend(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """volrend — volume-rendering ray casting: very short sampling loops.

    The paper names volrend among the biggest unrolling winners; its
    per-ray sample loop is tiny and runtime bounded."""
    b = IRBuilder("volrend")
    words = 2048
    volume = b.module.alloc("volume", words, init=[i % 29 for i in range(words)])
    part_words = words // max(1, threads)
    with b.function("worker", params=["tid", "rays"]) as f:
        samples = f.li(12)  # samples per ray segment: short, runtime data
        part = f.add(volume, f.shl(f.mul(f.param(0), part_words), 3))
        acc = emit_short_loop_kernel(
            f, part, part_words, f.param(1), samples, stores_per_iter=1
        )
        f.ret(acc)
    verify_module(b.module)
    rays = _scaled(40, scale)
    return b.module, _spawns(lambda tid: (tid, rays), threads)


def build_water_nsquared(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """water-nsquared — all-pairs molecular forces, locked accumulation."""
    b = IRBuilder("water-nsquared")
    mols = 48
    positions = b.module.alloc(
        "positions", mols, init=[(i * 17) % 83 for i in range(mols)]
    )
    forces = b.module.alloc("forces", mols * threads)
    lock = b.module.alloc("lock", 1)
    shared = b.module.alloc("potential", 8)
    with b.function("worker", params=["tid", "pairs"]) as f:
        acc = f.li(0)
        with f.for_range(f.param(1)) as i:
            a = f.and_(f.mul(i, 7), mols - 1)
            c = f.and_(f.add(f.mul(i, 13), f.param(0)), mols - 1)
            pa = f.load(f.add(positions, f.shl(a, 3)))
            pb = f.load(f.add(positions, f.shl(c, 3)))
            force = f.sub(pa, pb)
            # disjoint per-thread force slot
            slot = f.add(f.mul(f.param(0), mols), a)
            faddr = f.add(forces, f.shl(slot, 3))
            f.store(f.add(f.load(faddr), force), faddr)
            f.add(acc, force, dst=acc)
        emit_locked_update(f, lock, f.li(shared), 8, f.li(2), f.param(0))
        f.ret(acc)
    verify_module(b.module)
    pairs = _scaled(200, scale)
    return b.module, _spawns(lambda tid: (tid, pairs), threads)


def build_water_spatial(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """water-spatial — cell-list molecular forces: short per-cell loops."""
    b = IRBuilder("water-spatial")
    words = 1024
    cells = b.module.alloc("cells", words, init=[i % 37 for i in range(words)])
    part_words = words // max(1, threads)
    with b.function("worker", params=["tid", "cells_n"]) as f:
        occupants = f.li(8)  # molecules per cell: short, runtime data
        part = f.add(cells, f.shl(f.mul(f.param(0), part_words), 3))
        acc = emit_short_loop_kernel(
            f, part, part_words, f.param(1), occupants, stores_per_iter=1
        )
        f.ret(acc)
    verify_module(b.module)
    cells_n = _scaled(50, scale)
    return b.module, _spawns(lambda tid: (tid, cells_n), threads)


def build_radix(scale: float = 1.0, threads: int = SPLASH_THREADS) -> Tuple[Module, Spawns]:
    """radix — parallel radix sort: histogram passes, maximal store density."""
    b = IRBuilder("radix")
    src_words = 1024
    keys = b.module.alloc(
        "keys", src_words, init=[(i * 2654435761) % 4096 for i in range(src_words)]
    )
    hists = b.module.alloc("hists", 256 * threads)
    with b.function("worker", params=["tid", "n"]) as f:
        hist = f.add(hists, f.shl(f.mul(f.param(0), 256), 3))
        emit_histogram_pass(f, f.li(keys), src_words, hist, 256, f.param(1))
        f.ret()
    verify_module(b.module)
    n = _scaled(300, scale)
    return b.module, _spawns(lambda tid: (tid, n), threads)
