"""STAMP stand-ins (compiled sequential, as in the paper's methodology).

The paper runs the five STAMP members of Figures 8-11 as sequential
programs; the transactional structure survives as *phases* of map/queue
manipulation with data-dependent control flow.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.workloads.generators import (
    HASH_MULT,
    emit_grid_relax,
    emit_hash_insert_loop,
    emit_pointer_chase,
    emit_short_loop_kernel,
    emit_tree_walk,
)


def _scaled(n: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(n * scale))


def build_genome(scale: float = 1.0) -> Module:
    """genome — gene sequencing by segment deduplication and overlap match.

    Shape: phase 1 hashes segments into a set (hash-probe + insert
    stores); phase 2 links matched segments (pointer updates).  Hash
    scatter dominates: random single-word stores over a table.
    """
    b = IRBuilder("genome")
    table_words = 1024
    table = b.module.alloc("segments", table_words)
    chain = b.module.alloc("chain", 512)
    with b.function("dedup", params=["table", "n"]) as f:
        collisions = emit_hash_insert_loop(
            f, f.param(0), table_words, f.param(1), seed=777
        )
        f.ret(collisions)
    with b.function("main") as f:
        n = f.li(_scaled(600, scale))
        col = f.call("dedup", [table, n], returns=True)
        # overlap-link phase: short chase over the chain table
        hops = f.li(_scaled(200, scale))
        acc = emit_pointer_chase(f, f.li(chain), 256, hops, update=True)
        f.store(f.add(col, acc), chain)
        f.ret(col)
    verify_module(b.module)
    return b.module


def build_intruder(scale: float = 1.0) -> Module:
    """intruder — network-packet reassembly and signature detection.

    Shape: per-packet, a short runtime-length fragment loop feeding a map
    insert, then a branchy scan.  Short inner loops make it an unrolling
    beneficiary; hash inserts give scattered stores.
    """
    b = IRBuilder("intruder")
    frag_words = 512
    frags = b.module.alloc("frags", frag_words)
    flows = b.module.alloc("flows", 256)
    with b.function("main") as f:
        packets = f.li(_scaled(70, scale))
        frag_count = f.li(8)  # fragments per packet: runtime data
        acc = emit_short_loop_kernel(
            f, f.li(frags), frag_words, packets, frag_count, stores_per_iter=1
        )
        n = f.li(_scaled(250, scale))
        col = emit_hash_insert_loop(f, f.li(flows), 256, n, seed=31337)
        f.store(f.add(acc, col), flows)
        f.ret(acc)
    verify_module(b.module)
    return b.module


def build_labyrinth(scale: float = 1.0) -> Module:
    """labyrinth — 3-D grid maze routing.

    Shape: breadth-first wavefront expansion over a grid — store bursts
    per wavefront with spatial locality; modelled as repeated grid
    relaxation sweeps plus path write-back.
    """
    b = IRBuilder("labyrinth")
    rows, cols = 24, 24
    grid = b.module.alloc(
        "grid", rows * cols, init=[(i * 31) % 173 for i in range(rows * cols)]
    )
    with b.function("main") as f:
        sweeps = f.li(_scaled(4, scale, minimum=1))
        acc = emit_grid_relax(f, f.li(grid), rows, cols, sweeps)
        f.store(acc, grid)
        f.ret(acc)
    verify_module(b.module)
    return b.module


def build_ssca2(scale: float = 1.0) -> Module:
    """ssca2 — scalable synthetic compact applications graph kernel.

    Shape: per-vertex scans of *short* adjacency lists with per-edge
    stores.  The paper singles out ssca2's threshold-32 -> 64 jump and its
    unrolling benefit: its tiny inner loops bound regions hard.
    """
    b = IRBuilder("ssca2")
    words = 2048
    adj = b.module.alloc("adjacency", words, init=[i % 59 for i in range(words)])
    with b.function("main") as f:
        vertices = f.li(_scaled(120, scale))
        degree = f.li(8)  # short adjacency lists, runtime value
        acc = emit_short_loop_kernel(
            f, f.li(adj), words, vertices, degree, stores_per_iter=1
        )
        f.store(acc, adj)
        f.ret(acc)
    verify_module(b.module)
    return b.module


def build_vacation(scale: float = 1.0) -> Module:
    """vacation — travel-reservation database.

    Shape: per-transaction tree lookups (customer/flight/room tables)
    followed by reservation updates — tree walks plus hash-table stores.
    """
    b = IRBuilder("vacation")
    tree_levels = 8
    tree = b.module.alloc("relation", 1 << (tree_levels + 2))
    reservations = b.module.alloc("reservations", 512)
    with b.function("transact", params=["tree", "reservations", "n"]) as f:
        from repro.workloads.generators import emit_tree_walk as walk

        acc = walk(f, f.param(0), tree_levels, f.param(2))
        col = emit_hash_insert_loop(f, f.param(1), 512, f.param(2), seed=99)
        f.ret(f.add(acc, col))
    with b.function("main") as f:
        n = f.li(_scaled(90, scale))
        total = f.call("transact", [tree, reservations, n], returns=True)
        f.store(total, reservations)
        f.ret(total)
    verify_module(b.module)
    return b.module
