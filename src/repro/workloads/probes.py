"""Merge-proof microkernel probes for hardware-parameter sweeps.

The benchmark suite's recurring store addresses merge in the front-end
proxy — an elastic relief valve (Section 5.2.1) that masks raw pipeline
limits — so the ablation sweeps use these probes instead.  They live in
the workload registry (under the ``probe`` suite, excluded from the
figure suites) so that any runner that resolves workloads *by name* —
in particular the :mod:`repro.sweep` worker processes — can build them.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ir.module import Module

#: Registry name of the streaming-write probe.
STREAM_PROBE = "stream-write"


def build_stream_probe(
    scale: float = 1.0, trips: int = None
) -> Tuple[Module, List[Tuple[str, Sequence[int]]]]:
    """Pure streaming writes to distinct words (no proxy merging possible)."""
    from repro.ir import IRBuilder, verify_module

    if trips is None:
        trips = int(4000 * scale)
    b = IRBuilder(STREAM_PROBE)
    words = 8192
    arr = b.module.alloc("arr", words)
    with b.function("main") as f:
        with f.for_range(trips) as i:
            addr = f.add(arr, f.shl(f.and_(i, words - 1), 3))
            f.store(i, addr)
        f.ret()
    verify_module(b.module)
    return b.module, [("main", [])]
