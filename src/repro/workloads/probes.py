"""Merge-proof microkernel probes for hardware-parameter sweeps.

The benchmark suite's recurring store addresses merge in the front-end
proxy — an elastic relief valve (Section 5.2.1) that masks raw pipeline
limits — so the ablation sweeps use these probes instead.  They live in
the workload registry (under the ``probe`` suite, excluded from the
figure suites) so that any runner that resolves workloads *by name* —
in particular the :mod:`repro.sweep` worker processes — can build them.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ir.module import Module

#: Registry name of the streaming-write probe.
STREAM_PROBE = "stream-write"

#: Registry name of the hot-word + writeback-pressure probe.
HOT_WRITEBACK_PROBE = "hot-writeback"

#: Registry name of the deep-call-chain probe.
DEEP_CALL_PROBE = "deep-call"


def build_stream_probe(
    scale: float = 1.0, trips: int = None
) -> Tuple[Module, List[Tuple[str, Sequence[int]]]]:
    """Pure streaming writes to distinct words (no proxy merging possible)."""
    from repro.ir import IRBuilder, verify_module

    if trips is None:
        trips = int(4000 * scale)
    b = IRBuilder(STREAM_PROBE)
    words = 8192
    arr = b.module.alloc("arr", words)
    with b.function("main") as f:
        with f.for_range(trips) as i:
            addr = f.add(arr, f.shl(f.and_(i, words - 1), 3))
            f.store(i, addr)
        f.ret()
    verify_module(b.module)
    return b.module, [("main", [])]


def build_hot_writeback_probe(
    scale: float = 1.0, trips: int = None
) -> Tuple[Module, List[Tuple[str, Sequence[int]]]]:
    """Address reuse inside the proxy pipeline's occupancy window.

    Two behaviours the benchmark stand-ins almost never produce at
    matched thresholds, both needed by the persistency checker's mutant
    matrix (:mod:`repro.check.mutants`):

    * **One store per cache line**, cycling a footprint larger than the
      matrix's shrunken caches: every store allocates a line and evicts a
      dirty one only a few tens of stores old — and with phase-2 drain
      throttled by NVM write latency, the proxy FIFO still holds that
      address's entry, so the regular-path writeback must invalidate a
      *live* redo word (the Section 5.3.2 window the
      ``drop_invalidation`` / ``invalidate_everything`` mutants break).
    * **A hot accumulator word stored every iteration**: the previous
      region's entry for it is still buffered (drain backlog) when the
      next region stores it again — the cross-region merge window the
      ``merge_across_regions`` mutant needs.
    """
    from repro.ir import IRBuilder, verify_module

    if trips is None:
        trips = int(1500 * scale)
    b = IRBuilder(HOT_WRITEBACK_PROBE)
    lines = 64  # 64 lines x 64 B = 4 KiB, larger than every matrix cache
    arr = b.module.alloc("arr", lines * 8)
    hot = b.module.alloc("hot", 1)
    with b.function("main") as f:
        with f.for_range(trips) as i:
            word = f.shl(f.and_(i, lines - 1), 3)  # 8 words per line
            addr = f.add(arr, f.shl(word, 3))
            f.store(i, addr)
            f.store(i, hot)
        f.ret()
    verify_module(b.module)
    return b.module, [("main", [])]


def build_deep_call_probe(
    scale: float = 1.0, trips: int = None, depth: int = 6
) -> Tuple[Module, List[Tuple[str, Sequence[int]]]]:
    """Nested calls with persistent-stack resumption at every depth.

    A chain of *distinct* functions ``f0 → f1 → … → f{depth}`` (so every
    suspended frame carries its own continuation and register-checkpoint
    frame in the WSP-persistent stack, à la Aksenov et al.).  Each level
    read-modify-writes its own counter word *before* the call and mixes
    the callee's return value into it *after* — non-idempotent on both
    sides of every call site, so a crash (or a crash during recovery)
    that loses or duplicates a frame, resumes at the wrong depth, or
    rebuilds the checkpoint array incorrectly shows up in the durable
    image.  The leaf runs a short accumulator loop for the same reason.

    The probe exists to stress checkpoint-array rebuild across many call
    depths under crash-during-recovery — the benchmark stand-ins rarely
    crash deeper than two frames.
    """
    from repro.ir import IRBuilder, verify_module

    if trips is None:
        trips = max(2, int(60 * scale))
    b = IRBuilder(DEEP_CALL_PROBE)
    levels = b.module.alloc("levels", depth + 1)
    acc = b.module.alloc("acc", 1)

    # Leaf: a small non-idempotent loop over the shared accumulator.
    with b.function(f"f{depth}", ["x"]) as f:
        with f.for_range(4) as i:
            v = f.load(acc)
            f.store(f.add(f.add(v, f.param(0)), i), acc)
        f.ret(f.add(f.param(0), 1))

    # Interior levels, leaf upward so every callee already exists.
    for k in range(depth - 1, -1, -1):
        with b.function(f"f{k}", ["x"]) as f:
            slot = levels + 8 * k
            before = f.load(slot)
            f.store(f.add(f.add(before, f.param(0)), 1), slot)
            r = f.call(f"f{k + 1}", [f.add(f.param(0), k)], returns=True)
            after = f.load(slot)
            f.store(f.add(f.xor(after, r), 1), slot)
            f.ret(f.add(r, 1))

    with b.function("main") as f:
        with f.for_range(trips) as i:
            r = f.call("f0", [i], returns=True)
            v = f.load(acc)
            f.store(f.add(v, r), acc)
        f.ret()
    verify_module(b.module)
    return b.module, [("main", [])]
