"""Parametric kernel generators shared by the benchmark stand-ins.

Each generator emits a characteristic program shape through the public
IR-builder API.  The benchmark modules combine and parameterise them —
trip counts, store densities and working sets are the levers that map a
stand-in onto its paper benchmark (see the suite modules).

All generators take a :class:`FunctionBuilder` and emit code inline, so a
benchmark can stitch several phases into one program.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.builder import FunctionBuilder
from repro.ir.values import Reg

#: Multiplicative hash constant (Knuth) used by the hash-based kernels.
HASH_MULT = 0x9E3779B1


def emit_streaming_stencil(
    f: FunctionBuilder,
    base: Reg,
    words: int,
    trips: Reg,
    stores_per_iter: int = 4,
) -> Reg:
    """Long-trip streaming loop: load a neighbourhood, store several results.

    Shape of lattice/grid codes (519.lbm, ocean): large regions even
    without unrolling, high store density, sequential working set.
    Returns an accumulator register.
    """
    acc = f.li(0)
    lo = f.li(2**40)
    hi = f.li(-(2**40))
    mask = words - 1
    with f.for_range(trips) as i:
        idx = f.and_(i, mask)
        addr = f.add(base, f.shl(idx, 3))
        left = f.load(addr)
        right = f.load(addr, offset=8)
        center = f.add(left, f.shr(right, 1))
        for k in range(stores_per_iter):
            f.store(f.add(center, k), addr, offset=k * 8 % (words * 8 // 2))
        f.add(acc, center, dst=acc)
        f.binop("min", lo, center, dst=lo)
        f.binop("max", hi, center, dst=hi)
    return f.xor(acc, f.sub(hi, lo))


def emit_short_loop_kernel(
    f: FunctionBuilder,
    base: Reg,
    words: int,
    outer_trips: Reg,
    inner_trip_reg: Reg,
    stores_per_iter: int = 1,
    accumulators: int = 6,
) -> Reg:
    """Nested loop whose *inner* trip count is a runtime value and short.

    This is the Section 4.3 motif (namd's neighbour lists, ssca2's
    adjacency scans, volrend's ray steps): the compiler cannot see the
    inner trip count, so without speculative unrolling every inner
    iteration pays a header boundary and re-checkpoints the counters.
    ``accumulators`` models the kernel's register pressure — each is
    loop-carried and therefore live at the header boundary (checkpointed
    once per region).  Returns the folded accumulator register.
    """
    accs = [f.li(k) for k in range(max(1, accumulators))]
    mask = words - 1
    with f.for_range(outer_trips) as i:
        with f.for_range(inner_trip_reg) as j:
            idx = f.and_(f.add(f.mul(i, 7), j), mask)
            addr = f.add(base, f.shl(idx, 3))
            v = f.load(addr)
            for k in range(stores_per_iter):
                f.store(f.add(v, j), addr, offset=(k * 8) % 64)
            for k, acc in enumerate(accs):
                f.add(acc, f.add(v, k) if k else v, dst=acc)
    result = accs[0]
    for acc in accs[1:]:
        result = f.xor(result, acc)
    return result


def emit_pointer_chase(
    f: FunctionBuilder,
    nodes_base: Reg,
    num_nodes: int,
    hops: Reg,
    update: bool = True,
) -> Reg:
    """Dependent-load chain over a node table with optional updates.

    Shape of 505.mcf's network-simplex arc walks: latency-bound loads,
    sparse stores, data-dependent control.  Node ``i`` is two words:
    ``[value, next_index]``.  Returns the final accumulator.
    """
    acc = f.li(0)
    positives = f.li(0)
    idx = f.li(0)
    mask = num_nodes - 1
    with f.for_range(hops):
        node = f.add(nodes_base, f.shl(f.mul(f.and_(idx, mask), 2), 3))
        v = f.load(node)
        nxt = f.load(node, offset=8)
        if update:
            with f.if_then(f.cmp("sgt", v, 0)):
                f.store(f.add(v, 1), node)
                f.add(positives, 1, dst=positives)
        f.add(acc, v, dst=acc)
        f.move(idx, nxt)
    return f.xor(acc, f.shl(positives, 24))


def emit_hash_insert_loop(
    f: FunctionBuilder,
    table_base: Reg,
    table_words: int,
    trips: Reg,
    seed: int = 12345,
) -> Reg:
    """Hashed scatter stores: insert/update a hash table.

    Shape of genome's segment dedup and vacation's index updates: random
    single-word stores over a table, load-test-store per probe, with the
    usual rolling statistics (collision/occupancy counters, checksum) kept
    live across iterations.  Returns a fold of those statistics.
    """
    collisions = f.li(0)
    occupancy = f.li(0)
    checksum = f.li(seed >> 1)
    key = f.li(seed)
    mask = table_words - 1
    with f.for_range(trips):
        f.mul(key, HASH_MULT, dst=key)
        f.xor(key, f.shr(key, 15), dst=key)
        slot = f.and_(key, mask)
        addr = f.add(table_base, f.shl(slot, 3))
        old = f.load(addr)
        with f.if_else(f.cmp("sne", old, 0)) as br:
            f.add(collisions, 1, dst=collisions)
            br.otherwise()
            f.add(occupancy, 1, dst=occupancy)
        f.store(f.add(old, 1), addr)
        f.xor(checksum, f.add(old, slot), dst=checksum)
    return f.xor(collisions, f.xor(f.shl(occupancy, 20), checksum))


def emit_tree_walk(
    f: FunctionBuilder,
    tree_base: Reg,
    depth_words: int,
    walks: Reg,
    fanout_bits: int = 1,
) -> Reg:
    """Implicit-heap tree descent with per-level touch.

    Shape of barnes/fmm tree traversals and deepsjeng/leela search: a
    branchy descent whose path depends on loaded data, with occasional
    node updates.  The tree is an implicit binary heap of ``depth_words``
    levels.  Returns an accumulator.
    """
    acc = f.li(0)
    depth_sum = f.li(0)
    visit_hash = f.li(0x1234)
    key = f.li(0x5DEECE66)
    with f.for_range(walks):
        node = f.li(1)
        f.mul(key, HASH_MULT, dst=key)
        path = f.xor(key, f.shr(key, 11))
        with f.for_range(depth_words) as lvl:
            addr = f.add(tree_base, f.shl(node, 3))
            v = f.load(addr)
            f.add(acc, v, dst=acc)
            f.add(depth_sum, lvl, dst=depth_sum)
            f.xor(visit_hash, f.add(v, node), dst=visit_hash)
            bit = f.and_(f.shr(path, lvl), (1 << fanout_bits) - 1)
            f.move(node, f.add(f.shl(node, fanout_bits), bit))
        # update the reached leaf: atomic, so concurrent walkers stay
        # data-race-free (Splash-3 is the *properly synchronized* suite)
        leaf_mask = (1 << (depth_words + 1)) - 1
        leaf = f.and_(node, leaf_mask)
        addr = f.add(tree_base, f.shl(leaf, 3))
        f.atomic("add", addr, 1)
    return f.xor(acc, f.xor(depth_sum, visit_hash))


def emit_recursive_search(
    b,
    name: str,
    branch_table: int,
    max_depth: int,
) -> None:
    """Define a recursive game-tree search function ``name(depth, pos)``.

    Shape of deepsjeng/leela: recursion (call boundaries every node),
    branchy evaluation, few stores (the transposition-table update).
    """
    with b.function(name, params=["depth", "pos"]) as f:
        # Static evaluation at every node: mobility/material-style scan
        # (real engines spend most instructions here, between the calls).
        e = f.mul(f.param(1), HASH_MULT)
        with f.for_range(12):
            f.xor(e, f.shr(e, 13), dst=e)
            f.add(e, f.mul(f.and_(e, 0xFF), 31), dst=e)
        with f.if_then(f.cmp("sle", f.param(0), 0)):
            f.ret(f.and_(e, 0xFFFF))  # leaf: bounded 16-bit score
        best = f.li(-(2**31))
        # two children (alpha-beta style with a data-dependent cutoff)
        for child in range(2):
            pos = f.add(f.mul(f.param(1), 2), child + 1)
            score = f.call(name, [f.sub(f.param(0), 1), pos], returns=True)
            f.binop("max", best, score, dst=best)
            # transposition-table store for this node
            slot = f.and_(pos, 255)
            f.store(best, f.add(branch_table, f.shl(slot, 3)))
            # beta cutoff: stop exploring on a near-maximal score (rare)
            with f.if_then(f.cmp("sgt", best, 0xFFF8)):
                f.ret(best)
        f.ret(best)


def emit_grid_relax(
    f: FunctionBuilder,
    grid_base: Reg,
    rows: int,
    cols: int,
    sweeps: Reg,
) -> Reg:
    """Red-black style grid relaxation (ocean/labyrinth shape).

    Row-major neighbour averaging with a store per cell: long inner loops,
    high store density, spatial locality.
    """
    acc = f.li(0)
    residual = f.li(0)
    with f.for_range(sweeps):
        with f.for_range(rows - 2, start=1) as r:
            row_off = f.mul(r, cols * 8)
            with f.for_range(cols - 2, start=1) as c:
                addr = f.add(grid_base, f.add(row_off, f.shl(c, 3)))
                up = f.load(addr, offset=-cols * 8)
                down = f.load(addr, offset=cols * 8)
                left = f.load(addr, offset=-8)
                right = f.load(addr, offset=8)
                avg = f.shr(f.add(f.add(up, down), f.add(left, right)), 2)
                old = f.load(addr)
                f.store(avg, addr)
                f.add(acc, avg, dst=acc)
                f.add(residual, f.unop("abs", f.sub(avg, old)), dst=residual)
    return f.xor(acc, residual)


def emit_histogram_pass(
    f: FunctionBuilder,
    src_base: Reg,
    src_words: int,
    hist_base: Reg,
    hist_words: int,
    trips: Reg,
) -> None:
    """Counting pass of a radix sort: read keys, bump bucket counters.

    Extremely store-dense with tiny loop bodies — radix's shape.
    """
    src_mask = src_words - 1
    hist_mask = hist_words - 1
    total = f.li(0)
    max_key = f.li(0)
    with f.for_range(trips) as i:
        key = f.load(f.add(src_base, f.shl(f.and_(i, src_mask), 3)))
        bucket = f.and_(key, hist_mask)
        baddr = f.add(hist_base, f.shl(bucket, 3))
        f.store(f.add(f.load(baddr), 1), baddr)
        f.add(total, key, dst=total)
        f.binop("max", max_key, key, dst=max_key)
    f.store(f.xor(total, max_key), hist_base, offset=(hist_words - 1) * 8)


def emit_locked_update(
    f: FunctionBuilder,
    lock_addr: int,
    data_base: Reg,
    data_words: int,
    trips: Reg,
    tid: Reg,
) -> None:
    """Lock-protected shared-counter updates (Splash-3 synchronisation).

    Spin on an atomic test-and-set, update a shared cell, release.  The
    atomics force region boundaries (Section 4.1), exactly as the paper's
    multi-threaded suite does.
    """
    mask = data_words - 1
    with f.for_range(trips) as i:
        # acquire
        with f.while_loop(
            lambda: f.atomic("swap", lock_addr, 1)
        ):
            pass
        slot = f.and_(f.add(i, tid), mask)
        addr = f.add(data_base, f.shl(slot, 3))
        f.store(f.add(f.load(addr), 1), addr)
        # release
        f.atomic("swap", lock_addr, 0)
