"""Benchmark registry: name -> builder, organised by suite.

Suites and member order follow the x-axes of the paper's Figures 8-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.deps import touch
from repro.ir.module import Module
from repro.workloads import kvstore, oskernel, probes, spec, splash, stamp

Spawns = List[Tuple[str, Sequence[int]]]


@dataclass(frozen=True)
class Workload:
    """One benchmark stand-in, ready to build at a given scale."""

    name: str
    suite: str
    builder: Callable  # (scale) -> Module | (Module, Spawns)
    multithreaded: bool = False
    #: default scale for the benchmark harness (tests use smaller).
    default_scale: float = 1.0

    def build(
        self, scale: float | None = None, threads: int | None = None
    ) -> Tuple[Module, Spawns]:
        """Build the uninstrumented module and its spawn list.

        ``threads`` overrides the hart count for multithreaded workloads
        (core-count scaling); single-threaded builders ignore it.
        """
        touch("workloads")  # usage-probe dependency recording
        s = self.default_scale if scale is None else scale
        if self.multithreaded and threads is not None:
            result = self.builder(s, threads=threads)
        else:
            result = self.builder(s)
        if isinstance(result, tuple):
            module, spawns = result
        else:
            module = result
            main = module.functions["main"]
            args = [int(400 * s)] if main.num_params == 1 else []
            spawns = [("main", args)]
        return module, spawns


#: Suite membership in the paper's figure order.
SUITES: Dict[str, List[str]] = {
    "cpu2017": [
        "505.mcf_r",
        "531.deepsjeng_r",
        "541.leela_r",
        "508.namd_r",
        "519.lbm_r",
    ],
    "stamp": ["genome", "intruder", "labyrinth", "ssca2", "vacation"],
    "splash3": [
        "barnes",
        "fmm",
        "ocean",
        "radiosity",
        "raytrace",
        "volrend",
        "water-nsquared",
        "water-spatial",
        "radix",
    ],
    "os": ["oskernel"],
}


_REGISTRY: Dict[str, Workload] = {}


def _register(name: str, suite: str, builder, multithreaded=False) -> None:
    _REGISTRY[name] = Workload(
        name=name, suite=suite, builder=builder, multithreaded=multithreaded
    )


_register("505.mcf_r", "cpu2017", spec.build_mcf)
_register("531.deepsjeng_r", "cpu2017", spec.build_deepsjeng)
_register("541.leela_r", "cpu2017", spec.build_leela)
_register("508.namd_r", "cpu2017", spec.build_namd)
_register("519.lbm_r", "cpu2017", spec.build_lbm)

_register("genome", "stamp", stamp.build_genome)
_register("intruder", "stamp", stamp.build_intruder)
_register("labyrinth", "stamp", stamp.build_labyrinth)
_register("ssca2", "stamp", stamp.build_ssca2)
_register("vacation", "stamp", stamp.build_vacation)

_register("barnes", "splash3", splash.build_barnes, multithreaded=True)
_register("fmm", "splash3", splash.build_fmm, multithreaded=True)
_register("ocean", "splash3", splash.build_ocean, multithreaded=True)
_register("radiosity", "splash3", splash.build_radiosity, multithreaded=True)
_register("raytrace", "splash3", splash.build_raytrace, multithreaded=True)
_register("volrend", "splash3", splash.build_volrend, multithreaded=True)
_register("water-nsquared", "splash3", splash.build_water_nsquared, multithreaded=True)
_register("water-spatial", "splash3", splash.build_water_spatial, multithreaded=True)
_register("radix", "splash3", splash.build_radix, multithreaded=True)

_register("oskernel", "os", oskernel.build_oskernel)

# Hardware-parameter probes: resolvable by name (the sweep engine's
# worker processes build workloads by registry name) but deliberately
# absent from SUITES, so the figure suites and ``workload_names`` are
# unchanged.
_register("stream-write", "probe", probes.build_stream_probe)
_register("hot-writeback", "probe", probes.build_hot_writeback_probe)
_register("deep-call", "probe", probes.build_deep_call_probe)

# Application workloads outside the paper's figure suites: first-class
# registry members (sweeps, fault campaigns, the checker, and the
# service front-end all resolve them by name) but, like the probes,
# deliberately absent from SUITES so the figure axes are unchanged.
_register("kv_store", "service", kvstore.build_kv_store)


def get_workload(name: str) -> Workload:
    """Look up one benchmark stand-in by its paper name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def workload_names() -> List[str]:
    return [name for members in SUITES.values() for name in members]


def suite_workloads(suite: str) -> List[Workload]:
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; known: {sorted(SUITES)}")
    return [get_workload(name) for name in SUITES[suite]]


def all_workloads() -> List[Workload]:
    return [get_workload(name) for name in workload_names()]
