"""Functional execution of IR modules.

The :class:`Machine` runs one hart per core over a shared, word-granular
memory, delivering events to an :class:`~repro.isa.trace.Observer` as
instructions retire.  It is *architecturally exact*: the Capri architecture
never changes what programs compute, only how stores become persistent, so
this machine is the reference that crash-recovery tests compare against.

Calls and recovery
------------------
Functions have private register namespaces; on ``Call`` the machine
suspends the caller frame and starts the callee with arguments in
``r0..rN-1``.  Two things bridge this to the paper's recovery story:

* **Argument checkpoints.**  Real Capri checkpoints a callee's live-in
  registers on the caller side (the arg registers' last defs precede the
  call boundary).  The machine mirrors this by emitting checkpoint events
  for every argument at call time, into the *callee-depth* slots.
* **Continuations.**  At every region boundary the machine snapshots the
  resume point: (function, label, index-after-boundary) plus the suspended
  caller frames.  In a real system the caller frames live in stack memory,
  which WSP makes persistent; the continuation snapshot is our image of
  that persistent stack (see DESIGN.md).  The *interrupted* frame's
  registers are deliberately **not** in the snapshot — recovery must
  rebuild them from checkpoint storage plus recovery blocks, so the Capri
  compiler's checkpoint analyses are load-bearing in our correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    AtomicRMW,
    BinOp,
    Branch,
    Call,
    CheckpointStore,
    Fence,
    Halt,
    IOWrite,
    Jump,
    Load,
    Move,
    Nop,
    RegionBoundary,
    Ret,
    Store,
    UnOp,
    eval_atomic,
    eval_binop,
    eval_unop,
)
from repro.ir.module import MAX_CALL_DEPTH, Module, ckpt_slot_addr
from repro.ir.values import Imm, Reg, wrap_word
from repro.isa.trace import Observer


class MachineError(Exception):
    """Raised on runtime errors: step-limit overrun, stack overflow, etc."""


#: Immutable snapshot of one suspended caller frame.
#: (function name, resume label, resume index, regs tuple, ret-dst index | None)
FrameSnapshot = Tuple[str, str, int, Tuple[int, ...], Optional[int]]


@dataclass(frozen=True)
class Continuation:
    """A resume point captured at a region boundary.

    ``label``/``index`` address the first instruction of the interrupted
    region (the instruction *after* the boundary).  ``callstack`` holds the
    suspended caller frames, innermost last.
    """

    func_name: str
    label: str
    index: int
    callstack: Tuple[FrameSnapshot, ...]

    @property
    def depth(self) -> int:
        """Call depth of the interrupted frame."""
        return len(self.callstack)


class Frame:
    """A suspended caller awaiting a ``Ret``."""

    __slots__ = ("func", "label", "index", "regs", "ret_reg")

    def __init__(
        self,
        func: Function,
        label: str,
        index: int,
        regs: List[int],
        ret_reg: Optional[int],
    ) -> None:
        self.func = func
        self.label = label
        self.index = index
        self.regs = regs
        self.ret_reg = ret_reg

    def snapshot(self) -> FrameSnapshot:
        return (self.func.name, self.label, self.index, tuple(self.regs), self.ret_reg)


class Hart:
    """One hardware thread of execution (one per core)."""

    __slots__ = (
        "core_id",
        "func",
        "label",
        "index",
        "regs",
        "callstack",
        "halted",
        "started",
        "spawn_args",
        "spawn_func",
        "retired",
    )

    def __init__(self, core_id: int, func: Function, args: Sequence[int]) -> None:
        self.core_id = core_id
        self.func = func
        self.label = func.entry.label
        self.index = 0
        self.regs: List[int] = [0] * func.num_regs
        for i, a in enumerate(args):
            self.regs[i] = wrap_word(a)
        self.callstack: List[Frame] = []
        self.halted = False
        self.started = False
        self.spawn_func = func.name
        self.spawn_args = tuple(wrap_word(a) for a in args)
        self.retired = 0

    @property
    def depth(self) -> int:
        return len(self.callstack)

    def continuation(self) -> Continuation:
        """Snapshot the current position (used at region boundaries)."""
        return Continuation(
            func_name=self.func.name,
            label=self.label,
            index=self.index,
            callstack=tuple(f.snapshot() for f in self.callstack),
        )


_NULL_OBSERVER = Observer()


class Machine:
    """Executes a module's harts over shared memory, emitting events.

    Parameters
    ----------
    module:
        The (possibly Capri-instrumented) program.
    quantum:
        Instructions executed per hart per scheduling turn.  Round-robin
        with a fixed quantum keeps multi-hart runs deterministic.
    """

    def __init__(self, module: Module, quantum: int = 32) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.module = module
        self.quantum = quantum
        self.memory: Dict[int, int] = dict(module.initial_data)
        self.harts: List[Hart] = []
        self.total_retired = 0
        #: External-device output log: (core, port, value) in issue order.
        #: I/O effects leave the persistence domain — a crash cannot undo
        #: them (the Section 3.3 open problem); tests use this log to
        #: check at-least-once delivery across failures.
        self.io_log: List[Tuple[int, int, int]] = []

    # -- hart management -----------------------------------------------------

    def spawn(self, func_name: str, args: Sequence[int] = ()) -> Hart:
        """Create a hart running ``func_name(*args)`` on the next core id."""
        func = self.module.functions[func_name]
        if len(args) != func.num_params:
            raise MachineError(
                f"spawn {func_name!r}: {len(args)} args, expected {func.num_params}"
            )
        hart = Hart(len(self.harts), func, args)
        self.harts.append(hart)
        return hart

    def resume(
        self, core_id: int, continuation: Continuation, regs: Sequence[int]
    ) -> Hart:
        """Install a recovered hart at ``continuation`` with register file ``regs``.

        Used by the crash-recovery protocol: ``regs`` comes from the NVM
        checkpoint storage (plus recovery-block reconstruction) and the
        caller frames from the continuation snapshot.
        """
        func = self.module.functions[continuation.func_name]
        hart = Hart(core_id, func, ())
        hart.label = continuation.label
        hart.index = continuation.index
        hart.regs = [wrap_word(v) for v in regs]
        if len(hart.regs) < func.num_regs:
            hart.regs.extend([0] * (func.num_regs - len(hart.regs)))
        hart.callstack = [
            Frame(
                self.module.functions[name],
                label,
                index,
                list(saved_regs),
                ret_reg,
            )
            for (name, label, index, saved_regs, ret_reg) in continuation.callstack
        ]
        hart.started = True  # no spawn-time events on resume
        while len(self.harts) <= core_id:
            self.harts.append(None)  # type: ignore[arg-type]
        self.harts[core_id] = hart
        return hart

    # -- memory ----------------------------------------------------------------

    def read_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        self.memory[addr] = wrap_word(value)

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        observer: Optional[Observer] = None,
        max_steps: int = 50_000_000,
    ) -> int:
        """Round-robin execute all harts until they halt; return retired count.

        Raises :class:`MachineError` if ``max_steps`` instructions retire
        without completion (runaway loop guard).
        """
        obs = observer or _NULL_OBSERVER
        steps_left = max_steps
        live = [h for h in self.harts if h is not None and not h.halted]
        while live:
            progressed = False
            for hart in live:
                if hart.halted:
                    continue
                n = self._run_quantum(hart, obs, min(self.quantum, steps_left))
                steps_left -= n
                progressed = progressed or n > 0
                if steps_left <= 0:
                    raise MachineError(f"machine exceeded max_steps={max_steps}")
            live = [h for h in live if not h.halted]
            if live and not progressed:
                raise MachineError("no hart can make progress")
        return self.total_retired

    def _start_hart(self, hart: Hart, obs: Observer) -> None:
        """Emit spawn-time events: argument checkpoints + an implicit boundary.

        The implicit boundary (region id -1) gives crash recovery a
        committed resume point covering "crash before the first compiler
        boundary commits"; its continuation is simply the spawn point.
        """
        hart.started = True
        core = hart.core_id
        for i, value in enumerate(hart.spawn_args):
            addr = ckpt_slot_addr(core, i, 0)
            self.memory[addr] = value
            obs.on_ckpt(core, i, value, addr)
        obs.on_boundary(core, -1, hart.continuation())

    def _run_quantum(self, hart: Hart, obs: Observer, budget: int) -> int:
        """Execute up to ``budget`` instructions on ``hart``."""
        if budget <= 0:
            return 0
        if not hart.started:
            self._start_hart(hart, obs)
        executed = 0
        memory = self.memory
        module = self.module
        core = hart.core_id
        while executed < budget and not hart.halted:
            block = hart.func.blocks[hart.label]
            instr = block.instrs[hart.index]
            regs = hart.regs
            cls = type(instr)
            obs.on_retire(core, cls.__name__)
            executed += 1
            advance = True

            if cls is BinOp:
                lhs = instr.lhs
                rhs = instr.rhs
                a = regs[lhs.index] if type(lhs) is Reg else lhs.value
                b = regs[rhs.index] if type(rhs) is Reg else rhs.value
                regs[instr.dst.index] = eval_binop(instr.op, a, b)
            elif cls is Move:
                src = instr.src
                regs[instr.dst.index] = (
                    regs[src.index] if type(src) is Reg else src.value
                )
            elif cls is Load:
                base = instr.addr
                addr = (
                    regs[base.index] if type(base) is Reg else base.value
                ) + instr.offset
                regs[instr.dst.index] = memory.get(addr, 0)
                obs.on_load(core, addr)
            elif cls is Store:
                base = instr.addr
                addr = (
                    regs[base.index] if type(base) is Reg else base.value
                ) + instr.offset
                v = instr.value
                value = regs[v.index] if type(v) is Reg else v.value
                old = memory.get(addr, 0)
                memory[addr] = value
                obs.on_store(core, addr, value, old)
            elif cls is Branch:
                c = instr.cond
                cond = regs[c.index] if type(c) is Reg else c.value
                hart.label = instr.if_true if cond != 0 else instr.if_false
                hart.index = 0
                advance = False
            elif cls is Jump:
                hart.label = instr.target
                hart.index = 0
                advance = False
            elif cls is UnOp:
                s = instr.src
                a = regs[s.index] if type(s) is Reg else s.value
                regs[instr.dst.index] = eval_unop(instr.op, a)
            elif cls is RegionBoundary:
                # The continuation points at the *next* instruction: the
                # first instruction of the region this boundary opens.
                hart.index += 1
                obs.on_boundary(core, instr.region_id, hart.continuation())
                advance = False
            elif cls is CheckpointStore:
                reg = instr.src.index
                value = regs[reg]
                addr = ckpt_slot_addr(core, reg, hart.depth)
                memory[addr] = value
                obs.on_ckpt(core, reg, value, addr)
            elif cls is Call:
                self._do_call(hart, instr, obs)
                advance = False
            elif cls is Ret:
                self._do_ret(hart, instr, obs)
                advance = False
            elif cls is AtomicRMW:
                base = instr.addr
                addr = (
                    regs[base.index] if type(base) is Reg else base.value
                ) + instr.offset
                v = instr.value
                value = regs[v.index] if type(v) is Reg else v.value
                old = memory.get(addr, 0)
                new = eval_atomic(instr.op, old, value)
                memory[addr] = new
                regs[instr.dst.index] = old
                obs.on_atomic(core, addr, new, old)
            elif cls is Fence:
                obs.on_fence(core)
            elif cls is IOWrite:
                v = instr.value
                value = regs[v.index] if type(v) is Reg else v.value
                self.io_log.append((core, instr.port, value))
                obs.on_io(core, instr.port, value)
            elif cls is Halt:
                hart.halted = True
                obs.on_halt(core)
                advance = False
            elif cls is Nop:
                pass
            else:  # pragma: no cover - defensive
                raise MachineError(f"unknown instruction {instr!r}")

            if advance:
                hart.index += 1
        hart.retired += executed
        self.total_retired += executed
        return executed

    def _do_call(self, hart: Hart, instr: Call, obs: Observer) -> None:
        callee = self.module.functions.get(instr.callee)
        if callee is None:
            raise MachineError(f"call to unknown function {instr.callee!r}")
        if hart.depth + 1 >= MAX_CALL_DEPTH:
            raise MachineError(f"call stack overflow in {hart.func.name!r}")
        regs = hart.regs
        args = [
            regs[a.index] if type(a) is Reg else a.value for a in instr.args
        ]
        # Caller-side checkpoints of the callee's live-in (argument)
        # registers, written to the callee-depth slots (see module docs).
        callee_depth = hart.depth + 1
        core = hart.core_id
        for i, value in enumerate(args):
            addr = ckpt_slot_addr(core, i, callee_depth)
            self.memory[addr] = value
            obs.on_ckpt(core, i, value, addr)
        hart.callstack.append(
            Frame(
                hart.func,
                hart.label,
                hart.index + 1,
                regs,
                instr.dst.index if instr.dst is not None else None,
            )
        )
        new_regs = [0] * callee.num_regs
        new_regs[: len(args)] = args
        hart.func = callee
        hart.label = callee.entry.label
        hart.index = 0
        hart.regs = new_regs

    def _do_ret(self, hart: Hart, instr: Ret, obs: Observer) -> None:
        value = 0
        if instr.value is not None:
            v = instr.value
            value = hart.regs[v.index] if type(v) is Reg else v.value
        if not hart.callstack:
            hart.halted = True
            obs.on_halt(hart.core_id)
            return
        frame = hart.callstack.pop()
        hart.func = frame.func
        hart.label = frame.label
        hart.index = frame.index
        hart.regs = frame.regs
        if frame.ret_reg is not None:
            hart.regs[frame.ret_reg] = value

    # -- conveniences for tests/harness ----------------------------------------

    def run_function(
        self,
        func_name: str,
        args: Sequence[int] = (),
        observer: Optional[Observer] = None,
        max_steps: int = 50_000_000,
    ) -> int:
        """Spawn a single hart, run to completion, return its return value.

        The return value of a top-level function is delivered through
        register 0 convention-free: we capture it from the final ``Ret``.
        """
        capture = _ReturnCapture(observer or _NULL_OBSERVER)
        hart = self.spawn(func_name, args)
        self._capture = capture
        # Wrap: intercept the final ret by running normally and reading the
        # hart's last known return; simplest is to wrap Ret in _do_ret.
        old_do_ret = self._do_ret

        def capturing_do_ret(h: Hart, instr: Ret, obs: Observer) -> None:
            if not h.callstack and instr.value is not None:
                v = instr.value
                capture.value = h.regs[v.index] if type(v) is Reg else v.value
            old_do_ret(h, instr, obs)

        self._do_ret = capturing_do_ret  # type: ignore[method-assign]
        try:
            self.run(capture.observer, max_steps=max_steps)
        finally:
            self._do_ret = old_do_ret  # type: ignore[method-assign]
        return capture.value


class _ReturnCapture:
    def __init__(self, observer: Observer) -> None:
        self.observer = observer
        self.value = 0
