"""Event stream between the functional machine and its observers.

Rather than materialising a trace list (memory-hungry for long runs), the
machine invokes observer callbacks as it retires instructions.  The
callback set mirrors what the Capri architecture reacts to:

* every retired instruction (pipeline occupancy costs),
* loads and stores with addresses and (for stores) old/new values — the
  persistence engine builds undo+redo proxy entries from these,
* checkpoint stores (routed to the front-end register-file storage,
  Section 5.2.1),
* region boundaries carrying the recovery continuation,
* fences/atomics (persist-order points), and hart halts.
"""

from __future__ import annotations

from typing import Any, List, Tuple

# Event kind tags used by CollectingObserver tuples.
EV_RETIRE = "retire"
EV_LOAD = "load"
EV_STORE = "store"
EV_CKPT = "ckpt"
EV_BOUNDARY = "boundary"
EV_FENCE = "fence"
EV_ATOMIC = "atomic"
EV_HALT = "halt"
EV_IO = "io"


class Observer:
    """Base observer; all callbacks default to no-ops.

    ``core`` is the hart/core id.  ``kind`` in :meth:`on_retire` is the
    instruction class name (e.g. ``"BinOp"``), letting timing models assign
    per-class costs without re-dispatching on types.
    """

    def on_retire(self, core: int, kind: str) -> None:  # noqa: D401
        """Called once per retired instruction, before specific callbacks."""

    def on_load(self, core: int, addr: int) -> None:
        """A word load from ``addr`` retired."""

    def on_store(self, core: int, addr: int, value: int, old: int) -> None:
        """A word store retired: ``addr`` changed ``old`` -> ``value``."""

    def on_ckpt(self, core: int, reg: int, value: int, addr: int) -> None:
        """A register-checkpointing store retired (register ``reg``)."""

    def on_boundary(self, core: int, region_id: int, continuation: Any) -> None:
        """A region boundary retired; ``continuation`` is the resume point."""

    def on_fence(self, core: int) -> None:
        """A full memory fence retired."""

    def on_atomic(self, core: int, addr: int, value: int, old: int) -> None:
        """An atomic RMW retired (also reported as a store for persistence)."""

    def on_halt(self, core: int) -> None:
        """The hart halted (end of its program)."""

    def on_io(self, core: int, port: int, value: int) -> None:
        """An I/O write left the persistence domain (Section 3.3)."""


class CollectingObserver(Observer):
    """Records every event as a tuple; for tests and small demos only."""

    def __init__(self) -> None:
        self.events: List[Tuple[Any, ...]] = []

    def on_retire(self, core, kind):
        self.events.append((EV_RETIRE, core, kind))

    def on_load(self, core, addr):
        self.events.append((EV_LOAD, core, addr))

    def on_store(self, core, addr, value, old):
        self.events.append((EV_STORE, core, addr, value, old))

    def on_ckpt(self, core, reg, value, addr):
        self.events.append((EV_CKPT, core, reg, value, addr))

    def on_boundary(self, core, region_id, continuation):
        self.events.append((EV_BOUNDARY, core, region_id, continuation))

    def on_fence(self, core):
        self.events.append((EV_FENCE, core))

    def on_atomic(self, core, addr, value, old):
        self.events.append((EV_ATOMIC, core, addr, value, old))

    def on_halt(self, core):
        self.events.append((EV_HALT, core))

    def on_io(self, core, port, value):
        self.events.append((EV_IO, core, port, value))

    def of_kind(self, kind: str) -> List[Tuple[Any, ...]]:
        return [e for e in self.events if e[0] == kind]


class CountingObserver(Observer):
    """Cheap aggregate counters; used by the compiler-stats harness."""

    def __init__(self) -> None:
        self.retired = 0
        self.loads = 0
        self.stores = 0
        self.ckpts = 0
        self.boundaries = 0
        self.fences = 0
        self.atomics = 0
        self.io_writes = 0

    def on_retire(self, core, kind):
        self.retired += 1

    def on_load(self, core, addr):
        self.loads += 1

    def on_store(self, core, addr, value, old):
        self.stores += 1

    def on_ckpt(self, core, reg, value, addr):
        self.ckpts += 1

    def on_boundary(self, core, region_id, continuation):
        self.boundaries += 1

    def on_fence(self, core):
        self.fences += 1

    def on_atomic(self, core, addr, value, old):
        self.atomics += 1

    def on_io(self, core, port, value):
        self.io_writes += 1
