"""Event stream between the functional machine and its observers.

Rather than materialising a trace list (memory-hungry for long runs), the
machine invokes observer callbacks as it retires instructions.  The
callback set mirrors what the Capri architecture reacts to:

* every retired instruction (pipeline occupancy costs),
* loads and stores with addresses and (for stores) old/new values — the
  persistence engine builds undo+redo proxy entries from these,
* checkpoint stores (routed to the front-end register-file storage,
  Section 5.2.1),
* region boundaries carrying the recovery continuation,
* fences/atomics (persist-order points), and hart halts.

Event-ordering contract
-----------------------
Observers (the Capri system, the persistency checker, the crash
injector) may rely on the following, pinned by
``tests/isa/test_trace_contract.py``:

1. **Synchronous delivery.** The machine applies an instruction's
   architectural effect and then invokes the observer callback before
   executing the next instruction of that hart.  A store's ``old`` value
   is the architectural value the store overwrote.
2. **Per-core program order.** For a fixed core, ``on_store`` /
   ``on_ckpt`` / ``on_boundary`` / ``on_atomic`` arrive exactly in that
   hart's dynamic instruction order.  Events of *different* cores
   interleave at quantum granularity with no cross-core ordering
   promise.
3. **Spawn prologue.** A hart's first events are its spawn-argument
   ``on_ckpt`` calls followed by an implicit ``on_boundary`` with
   ``region_id == -1`` — before any instruction of the hart retires.
4. **Boundary-before-drain.** ``on_boundary(core, region, cont)`` is
   delivered (and hence the persistence engine emits the region's
   boundary entry) *before* any of that region's redo data may drain to
   NVM: phase-2 drain is enabled only by a boundary entry reaching the
   back-end buffer, which requires the boundary event first.
5. **One tick per callback.** Crash indices (``CrashPlan.at_event``)
   and golden-run event counts share the same universe: every callback,
   including ``on_retire`` and ``on_halt``, counts as one event
   (:class:`TickCountingObserver`).
"""

from __future__ import annotations

from typing import Any, List, Tuple

# Event kind tags used by CollectingObserver tuples.
EV_RETIRE = "retire"
EV_LOAD = "load"
EV_STORE = "store"
EV_CKPT = "ckpt"
EV_BOUNDARY = "boundary"
EV_FENCE = "fence"
EV_ATOMIC = "atomic"
EV_HALT = "halt"
EV_IO = "io"


class Observer:
    """Base observer; all callbacks default to no-ops.

    ``core`` is the hart/core id.  ``kind`` in :meth:`on_retire` is the
    instruction class name (e.g. ``"BinOp"``), letting timing models assign
    per-class costs without re-dispatching on types.
    """

    def on_retire(self, core: int, kind: str) -> None:  # noqa: D401
        """Called once per retired instruction, before specific callbacks."""

    def on_load(self, core: int, addr: int) -> None:
        """A word load from ``addr`` retired."""

    def on_store(self, core: int, addr: int, value: int, old: int) -> None:
        """A word store retired: ``addr`` changed ``old`` -> ``value``."""

    def on_ckpt(self, core: int, reg: int, value: int, addr: int) -> None:
        """A register-checkpointing store retired (register ``reg``)."""

    def on_boundary(self, core: int, region_id: int, continuation: Any) -> None:
        """A region boundary retired; ``continuation`` is the resume point."""

    def on_fence(self, core: int) -> None:
        """A full memory fence retired."""

    def on_atomic(self, core: int, addr: int, value: int, old: int) -> None:
        """An atomic RMW retired (also reported as a store for persistence)."""

    def on_halt(self, core: int) -> None:
        """The hart halted (end of its program)."""

    def on_io(self, core: int, port: int, value: int) -> None:
        """An I/O write left the persistence domain (Section 3.3)."""


class CollectingObserver(Observer):
    """Records every event as a tuple; for tests and small demos only."""

    def __init__(self) -> None:
        self.events: List[Tuple[Any, ...]] = []

    def on_retire(self, core, kind):
        self.events.append((EV_RETIRE, core, kind))

    def on_load(self, core, addr):
        self.events.append((EV_LOAD, core, addr))

    def on_store(self, core, addr, value, old):
        self.events.append((EV_STORE, core, addr, value, old))

    def on_ckpt(self, core, reg, value, addr):
        self.events.append((EV_CKPT, core, reg, value, addr))

    def on_boundary(self, core, region_id, continuation):
        self.events.append((EV_BOUNDARY, core, region_id, continuation))

    def on_fence(self, core):
        self.events.append((EV_FENCE, core))

    def on_atomic(self, core, addr, value, old):
        self.events.append((EV_ATOMIC, core, addr, value, old))

    def on_halt(self, core):
        self.events.append((EV_HALT, core))

    def on_io(self, core, port, value):
        self.events.append((EV_IO, core, port, value))

    def of_kind(self, kind: str) -> List[Tuple[Any, ...]]:
        return [e for e in self.events if e[0] == kind]


class CountingObserver(Observer):
    """Cheap aggregate counters; used by the compiler-stats harness."""

    def __init__(self) -> None:
        self.retired = 0
        self.loads = 0
        self.stores = 0
        self.ckpts = 0
        self.boundaries = 0
        self.fences = 0
        self.atomics = 0
        self.io_writes = 0

    def on_retire(self, core, kind):
        self.retired += 1

    def on_load(self, core, addr):
        self.loads += 1

    def on_store(self, core, addr, value, old):
        self.stores += 1

    def on_ckpt(self, core, reg, value, addr):
        self.ckpts += 1

    def on_boundary(self, core, region_id, continuation):
        self.boundaries += 1

    def on_fence(self, core):
        self.fences += 1

    def on_atomic(self, core, addr, value, old):
        self.atomics += 1

    def on_io(self, core, port, value):
        self.io_writes += 1


class TickCountingObserver(Observer):
    """Counts every delivered callback — one tick per event.

    This is the crash-point universe: :class:`repro.arch.crash.CrashInjector`
    ticks once per delegated callback, so a crash-free run under this
    observer yields exactly the set of valid ``CrashPlan.at_event``
    indices.  (Re-exported as ``repro.fault.oracle.EventCounter``.)
    """

    def __init__(self) -> None:
        self.events = 0

    def on_retire(self, core, kind):
        self.events += 1

    def on_load(self, core, addr):
        self.events += 1

    def on_store(self, core, addr, value, old):
        self.events += 1

    def on_ckpt(self, core, reg, value, addr):
        self.events += 1

    def on_boundary(self, core, region_id, continuation):
        self.events += 1

    def on_fence(self, core):
        self.events += 1

    def on_atomic(self, core, addr, value, old):
        self.events += 1

    def on_halt(self, core):
        self.events += 1

    def on_io(self, core, port, value):
        self.events += 1


class TeeObserver(Observer):
    """Fan one event stream out to several observers, in order.

    Each callback is delivered to every attached observer before the
    machine proceeds; observers listed first see the event first.  The
    persistency checker rides along the timing system this way —
    ``TeeObserver(checker, system)`` lets the checker record the
    architectural event *before* the system's persistence engine reacts
    to it (so proxy-pipeline hook callbacks always find the checker's
    model already up to date).
    """

    def __init__(self, *observers: Observer) -> None:
        self.observers = tuple(observers)

    def on_retire(self, core, kind):
        for o in self.observers:
            o.on_retire(core, kind)

    def on_load(self, core, addr):
        for o in self.observers:
            o.on_load(core, addr)

    def on_store(self, core, addr, value, old):
        for o in self.observers:
            o.on_store(core, addr, value, old)

    def on_ckpt(self, core, reg, value, addr):
        for o in self.observers:
            o.on_ckpt(core, reg, value, addr)

    def on_boundary(self, core, region_id, continuation):
        for o in self.observers:
            o.on_boundary(core, region_id, continuation)

    def on_fence(self, core):
        for o in self.observers:
            o.on_fence(core)

    def on_atomic(self, core, addr, value, old):
        for o in self.observers:
            o.on_atomic(core, addr, value, old)

    def on_halt(self, core):
        for o in self.observers:
            o.on_halt(core)

    def on_io(self, core, port, value):
        for o in self.observers:
            o.on_io(core, port, value)
