"""Functional machine: architecturally-correct execution of the IR.

The machine executes one or more *harts* (hardware threads, one per core)
over a shared word-granular memory, delivering an event stream to an
:class:`~repro.isa.trace.Observer`.  The timing simulator and persistence
engine in :mod:`repro.arch` are observers; tests use the collecting
observer.

The machine is the reference for architectural correctness: whatever the
memory/persistence model does, recovered-and-resumed execution must agree
with an uninterrupted run of this machine.
"""

from repro.isa.trace import (
    Observer,
    CollectingObserver,
    CountingObserver,
    EV_RETIRE,
    EV_LOAD,
    EV_STORE,
    EV_CKPT,
    EV_BOUNDARY,
    EV_FENCE,
    EV_ATOMIC,
    EV_HALT,
)
from repro.isa.machine import Machine, Hart, Continuation, Frame, MachineError

__all__ = [
    "Observer",
    "CollectingObserver",
    "CountingObserver",
    "Machine",
    "Hart",
    "Continuation",
    "Frame",
    "MachineError",
    "EV_RETIRE",
    "EV_LOAD",
    "EV_STORE",
    "EV_CKPT",
    "EV_BOUNDARY",
    "EV_FENCE",
    "EV_ATOMIC",
    "EV_HALT",
]
