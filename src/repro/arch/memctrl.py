"""Memory hierarchy: per-core L1s, shared L2, DRAM cache, NVM.

Models the vertically-integrated hybrid memory of Optane's memory mode
(Section 3): NVM is main memory, the off-chip DRAM cache is hardware
managed and direct mapped, and the integrated memory controller fronts
both.  Dirty evictions cascade L1 -> L2 -> DRAM cache -> NVM; the final
hop is the "regular path" NVM update of Section 5.3 and is reported to the
persistence engine for redo-valid invalidation.

A minimal invalidation-based coherence shim keeps multi-core writeback
*values* correct: before a core writes a line another core holds dirty,
the dirty copy is flushed to L2.  (The paper changes no coherence
machinery; neither do we — this is the stock protocol substrate.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.arch.cache import DirectMappedCache, SetAssocCache
from repro.arch.nvm import NVMain
from repro.arch.params import SimParams

#: Callback invoked when a dirty line reaches NVM: (line_addr, words).
NvmWritebackFn = Callable[[int, Dict[int, int]], None]


class MemoryHierarchy:
    """L1 (per core) + shared L2 + DRAM cache + NVM, with latencies."""

    def __init__(
        self,
        params: SimParams,
        num_cores: int,
        nvm: NVMain,
        on_nvm_writeback: Optional[NvmWritebackFn] = None,
    ) -> None:
        self.params = params
        self.nvm = nvm
        self._on_nvm_writeback = on_nvm_writeback or (lambda line, words: None)
        #: current core time, set by the system before each access so
        #: eviction callbacks can timestamp their NVM writes.
        self.now = 0.0

        self.dram = DirectMappedCache(
            "dram$",
            num_lines=max(1, params.dram_cache_lines),
            line_bytes=params.line_bytes,
            writeback=self._dram_writeback,
        )
        self.l2 = SetAssocCache(
            "l2",
            num_lines=max(params.l2_assoc, params.l2_lines),
            assoc=params.l2_assoc,
            line_bytes=params.line_bytes,
            writeback=self._l2_writeback,
        )
        self.l1: List[SetAssocCache] = [
            SetAssocCache(
                f"l1.{core}",
                num_lines=max(params.l1_assoc, params.l1_lines),
                assoc=params.l1_assoc,
                line_bytes=params.line_bytes,
                writeback=self._l1_writeback,
            )
            for core in range(num_cores)
        ]
        #: line address -> cores that may hold it in L1 (coherence shim).
        self.holders: Dict[int, Set[int]] = {}
        self.coherence_transfers = 0
        #: loads that had to read NVM (missed every cache level).
        self.nvm_fills = 0

    # -- writeback cascade ------------------------------------------------------

    def _l1_writeback(self, line: int, words: Dict[int, int]) -> None:
        self.l2.install_writeback(line, words)

    def _l2_writeback(self, line: int, words: Dict[int, int]) -> None:
        self.dram.install_writeback(line, words)

    def _dram_writeback(self, line: int, words: Dict[int, int]) -> None:
        self._on_nvm_writeback(line, words)

    # -- coherence shim ------------------------------------------------------------

    def _ensure_exclusive(self, core: int, line: int) -> float:
        """Invalidate other cores' copies before a write; returns extra cycles."""
        holders = self.holders.get(line)
        extra = 0.0
        if holders:
            for other in list(holders):
                if other == core:
                    continue
                words = self.l1[other].evict_line(line)
                if words:  # dirty copy flushed through L2
                    self.l2.install_writeback(line, words)
                if words is not None:
                    self.coherence_transfers += 1
                    extra += self.params.l2_hit_cycles
                holders.discard(other)
        self.holders.setdefault(line, set()).add(core)
        return extra

    def _note_shared(self, core: int, line: int) -> float:
        """Downgrade another core's dirty copy before a read; returns cycles."""
        holders = self.holders.get(line)
        extra = 0.0
        if holders:
            for other in list(holders):
                if other == core:
                    continue
                # Flush a (possibly dirty) remote copy so L2 has the data;
                # remote keeps losing its copy (simple invalidate-on-read
                # for dirty lines only).
                cache = self.l1[other]
                if cache.contains(line):
                    words = cache.evict_line(line)
                    if words:
                        self.l2.install_writeback(line, words)
                        self.coherence_transfers += 1
                        extra += self.params.l2_hit_cycles
                        holders.discard(other)
                    elif words is not None:
                        # clean copy may stay shared
                        cache.install_writeback(line, {})
                else:
                    holders.discard(other)
        self.holders.setdefault(line, set()).add(core)
        return extra

    # -- dirty migration ---------------------------------------------------------

    def _migrate_dirty_up(self, core: int, line: int) -> Dict[int, int]:
        """Pull the line's dirty words out of L2/DRAM into the L1 copy.

        Keeps dirty data exclusive to the highest level holding the line:
        a stale dirty copy left below would later be written back to NVM
        *after* newer stores created proxy entries, and the Section 5.3.2
        redo invalidation would then wrongly kill the newer redo data
        (observed as lost committed updates in crash tests).
        """
        words = self.dram.extract_dirty(line)
        words.update(self.l2.extract_dirty(line))  # L2 newer than DRAM
        return words

    # -- accesses ----------------------------------------------------------------

    def load(self, core: int, addr: int, architectural: int) -> Tuple[float, str]:
        """Perform a load; returns (latency cycles, level hit).

        ``architectural`` is the machine's value, used only for stale-read
        accounting by the caller when the load fills from NVM.
        """
        p = self.params
        l1 = self.l1[core]
        line = l1.line_addr(addr)
        latency = self._note_shared(core, line)
        if l1.touch(addr):
            latency += p.l1_hit_cycles
            level = "l1"
        else:
            if self.l2.touch(addr):
                latency += p.l1_hit_cycles + p.l2_hit_cycles
                level = "l2"
            elif self.dram.touch(addr):
                latency += p.l1_hit_cycles + p.l2_hit_cycles + p.dram_hit_cycles
                level = "dram"
            else:
                latency += (
                    p.l1_hit_cycles
                    + p.l2_hit_cycles
                    + p.dram_hit_cycles
                    + p.nvm_read_cycles
                )
                self.nvm_fills += 1
                level = "nvm"
            migrated = self._migrate_dirty_up(core, line)
            if migrated:
                l1.install_writeback(line, migrated)
        # Exposed cost: the OoO window hides most of the raw latency.
        return max(1.0, latency * p.mem_exposure), level

    def store(self, core: int, addr: int, value: int) -> Tuple[float, bool]:
        """Perform a store; returns (latency cycles, l1 hit?).

        Write-allocate: a miss fetches the line (cost charged) because the
        Capri front-end needs the old line contents for the undo entry — in
        the baseline the same fill happens but is largely hidden; we charge
        both equally so the *relative* overhead isolates Capri mechanisms.
        """
        p = self.params
        l1 = self.l1[core]
        line = l1.line_addr(addr)
        latency = self._ensure_exclusive(core, line)
        hit = l1.write(addr, value)
        if hit:
            return max(0.0, latency * p.mem_exposure), True
        # Fill from the level that has the line (timing only).
        if self.l2.touch(addr):
            latency += p.l2_hit_cycles
        elif self.dram.touch(addr):
            latency += p.l2_hit_cycles + p.dram_hit_cycles
        else:
            latency += p.l2_hit_cycles + p.dram_hit_cycles + p.nvm_read_cycles
            self.nvm_fills += 1
        migrated = self._migrate_dirty_up(core, line)
        if migrated:
            migrated.pop(addr, None)  # never overwrite the word just stored
            if migrated:
                l1.install_writeback(line, migrated)
        return max(0.0, latency * p.mem_exposure), False

    def flush_all(self) -> None:
        """Flush the whole hierarchy to NVM (test helper, not Capri)."""
        for l1 in self.l1:
            l1.flush_all()
        self.l2.flush_all()
        self.dram.flush_all()
