"""Full-system wiring: the Capri architecture as a machine observer.

:class:`CapriSystem` consumes the functional machine's event stream and
simulates timing (per-core cycle accounting + memory hierarchy) and
persistence (two-phase atomic stores through the proxy buffers).  With
``persistence=False`` the same class is the *volatile baseline*: identical
cores and caches, no persistence engine — the paper's normalisation target
("all results are normalized to the unmodified programs").

Use :func:`run_workload` for the common compile-spawn-run-measure flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.core import ATOMIC_EXTRA_CYCLES, FENCE_CYCLES, CoreTimer
from repro.arch.memctrl import MemoryHierarchy
from repro.arch.nvm import NVMain
from repro.arch.params import PersistMode, SimParams
from repro.arch.persistence import PersistenceEngine
from repro.ir.module import Module
from repro.isa.machine import Machine
from repro.isa.trace import Observer


@dataclass
class SystemMetrics:
    """Everything a benchmark run reports."""

    cycles: float = 0.0  # max over cores, after final drain
    #: Execution time proper: max core cycle, excluding the final
    #: persistence drain tail (which amortises to nothing on the paper's
    #: multi-billion-instruction runs; on our scaled runs it would
    #: otherwise dominate).  Figures normalise on this.
    exec_cycles: float = 0.0
    core_cycles: List[float] = field(default_factory=list)
    retired: int = 0
    loads: int = 0
    stores: int = 0
    ckpt_stores: int = 0
    boundaries: int = 0
    # memory hierarchy
    l1_hits: int = 0
    l2_hits: int = 0
    dram_hits: int = 0
    nvm_fills: int = 0
    # persistence
    nvm_writes_total: int = 0
    nvm_writes_writeback: int = 0
    nvm_writes_redo: int = 0
    nvm_writes_ckpt: int = 0
    nvm_writes_skipped: int = 0
    proxy_entries: int = 0
    proxy_merged: int = 0
    boundary_entries: int = 0
    boundaries_skipped: int = 0
    fe_stall_cycles: float = 0.0
    sync_stall_cycles: float = 0.0
    invalidations: int = 0
    stale_reads: int = 0


class CapriSystem(Observer):
    """Timing + persistence simulation driven by machine events."""

    def __init__(
        self,
        params: SimParams,
        num_cores: int = 1,
        threshold: int = 256,
        persistence: bool = True,
        mutations=None,
    ) -> None:
        self.params = params
        self.num_cores = num_cores
        self.threshold = threshold
        self.nvm = NVMain(params)
        self.persist: Optional[PersistenceEngine] = None
        if persistence:
            self.persist = PersistenceEngine(
                params, self.nvm, num_cores, threshold, mutations=mutations
            )
            on_wb = self._nvm_writeback
        else:
            on_wb = lambda line, words: self.nvm.writeback_words(self._now, words)
        self.mem = MemoryHierarchy(params, num_cores, self.nvm, on_wb)
        self.cores = [CoreTimer(params) for _ in range(num_cores)]
        self.machine: Optional[Machine] = None
        #: architectural value of the next load, supplied by a trace
        #: replayer (:mod:`repro.trace.replay`) when no machine is
        #: attached — the only machine state the simulation consumes.
        self._replay_arch_value = 0
        self._now = 0.0
        # counters
        self._loads = 0
        self._stores = 0
        self._ckpts = 0
        self._boundaries = 0
        self._l1_hits = 0
        self._l2_hits = 0
        self._dram_hits = 0

    # -- setup ----------------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        """Bind the functional machine (architectural values for stale-read
        accounting) and seed the durable image with its initial data."""
        self.machine = machine
        self.nvm.image.update(machine.module.initial_data)

    def _core(self, core: int) -> CoreTimer:
        while core >= len(self.cores):
            self.cores.append(CoreTimer(self.params))
        return self.cores[core]

    def _nvm_writeback(self, line: int, words: Dict[int, int]) -> None:
        assert self.persist is not None
        self.persist.on_nvm_writeback(self._now, line, words)

    # -- machine observer callbacks ------------------------------------------------

    def on_retire(self, core: int, kind: str) -> None:
        self._core(core).retire()

    def on_load(self, core: int, addr: int) -> None:
        self._loads += 1
        timer = self._core(core)
        self._now = timer.cycle
        arch_value = (
            self.machine.memory.get(addr, 0)
            if self.machine is not None
            else self._replay_arch_value
        )
        latency, level = self.mem.load(core, addr, arch_value)
        if level == "l1":
            self._l1_hits += 1
        elif level == "l2":
            self._l2_hits += 1
        elif level == "dram":
            self._dram_hits += 1
        elif level == "nvm" and self.persist is not None:
            self.persist.check_nvm_read(timer.cycle, addr, arch_value)
        timer.add_latency(latency)

    def on_store(self, core: int, addr: int, value: int, old: int) -> None:
        self._stores += 1
        timer = self._core(core)
        self._now = timer.cycle
        latency, _hit = self.mem.store(core, addr, value)
        timer.add_latency(latency)
        if self.persist is not None:
            done = self.persist.on_store(core, timer.cycle, addr, value, old)
            timer.stall_until(done)

    def on_ckpt(self, core: int, reg: int, value: int, addr: int) -> None:
        self._ckpts += 1
        timer = self._core(core)
        timer.add_latency(self.params.ckpt_store_cycles)
        self._now = timer.cycle
        if self.persist is not None:
            done = self.persist.on_ckpt(core, timer.cycle, addr, value)
            timer.stall_until(done)

    def on_boundary(self, core: int, region_id: int, continuation: Any) -> None:
        self._boundaries += 1
        timer = self._core(core)
        timer.add_latency(self.params.boundary_cycles)
        self._now = timer.cycle
        if self.persist is not None:
            done = self.persist.on_boundary(
                core, timer.cycle, region_id, continuation
            )
            timer.stall_until(done)

    def on_fence(self, core: int) -> None:
        self._core(core).add_latency(FENCE_CYCLES)

    def on_atomic(self, core: int, addr: int, value: int, old: int) -> None:
        self._stores += 1
        timer = self._core(core)
        self._now = timer.cycle
        latency, _hit = self.mem.store(core, addr, value)
        timer.add_latency(latency + ATOMIC_EXTRA_CYCLES)
        if self.persist is not None:
            done = self.persist.on_store(core, timer.cycle, addr, value, old)
            timer.stall_until(done)

    def on_io(self, core: int, port: int, value: int) -> None:
        timer = self._core(core)
        self._now = timer.cycle
        if self.persist is not None:
            # I/O persist barrier (Section 3.3): everything committed must
            # be durable before an effect leaves the persistence domain.
            done = self.persist.pipeline(core).drain_committed_until(
                timer.cycle
            )
            timer.stall_until(done)
        timer.add_latency(self.params.io_latency_cycles)

    def on_halt(self, core: int) -> None:
        pass

    # -- results --------------------------------------------------------------------

    def finish(self) -> SystemMetrics:
        """Drain pending persistence work and aggregate metrics."""
        drained = 0.0
        if self.persist is not None:
            drained = self.persist.drain_all()
        core_cycles = [c.cycle for c in self.cores]
        exec_cycles = max(core_cycles) if core_cycles else 0.0
        cycles = max([*core_cycles, drained]) if core_cycles else drained
        m = SystemMetrics(
            cycles=cycles,
            exec_cycles=exec_cycles,
            core_cycles=core_cycles,
            retired=sum(c.retired for c in self.cores),
            loads=self._loads,
            stores=self._stores,
            ckpt_stores=self._ckpts,
            boundaries=self._boundaries,
            l1_hits=self._l1_hits,
            l2_hits=self._l2_hits,
            dram_hits=self._dram_hits,
            nvm_fills=self.mem.nvm_fills,
            nvm_writes_total=self.nvm.total_writes,
            nvm_writes_writeback=self.nvm.writes_writeback,
            nvm_writes_redo=self.nvm.writes_redo,
            nvm_writes_ckpt=self.nvm.writes_ckpt,
            nvm_writes_skipped=self.nvm.writes_skipped,
        )
        if self.persist is not None:
            m.proxy_entries = self.persist.entries_created
            m.proxy_merged = self.persist.entries_merged
            m.boundary_entries = self.persist.boundary_entries
            m.boundaries_skipped = self.persist.boundaries_skipped
            m.fe_stall_cycles = self.persist.fe_stall_cycles
            m.sync_stall_cycles = self.persist.sync_stall_cycles
            m.invalidations = self.persist.invalidations
            m.stale_reads = self.persist.stale_reads
        return m


def build_system(
    module: Module,
    spawns: Sequence[Tuple[str, Sequence[int]]],
    params: Optional[SimParams] = None,
    threshold: int = 256,
    persistence: bool = True,
    quantum: int = 32,
    mutations=None,
) -> Tuple[Machine, "CapriSystem"]:
    """Construct the (machine, system) pair for a workload, unstarted.

    The single construction path shared by normal runs
    (:func:`run_workload`) and crash runs
    (:func:`repro.arch.crash.run_until_crash`) — so the two cannot drift
    in how cores are counted, harts spawned, or the durable image seeded.
    ``mutations`` plants protocol bugs for checker-sensitivity tests
    (:mod:`repro.check.mutants`); leave ``None`` for the faithful
    protocol.
    """
    from repro.deps import touch

    touch("arch")  # usage-probe dependency recording
    params = params or SimParams.scaled()
    machine = Machine(module, quantum=quantum)
    for func_name, args in spawns:
        machine.spawn(func_name, args)
    system = CapriSystem(
        params,
        num_cores=max(1, len(spawns)),
        threshold=threshold,
        persistence=persistence,
        mutations=mutations,
    )
    system.attach(machine)
    return machine, system


def run_workload(
    module: "Module | Any",
    spawns: Optional[Sequence[Tuple[str, Sequence[int]]]] = None,
    params: Optional[SimParams] = None,
    threshold: int = 256,
    persistence: bool = True,
    quantum: int = 32,
    max_steps: int = 50_000_000,
    check: bool = False,
) -> Tuple[SystemMetrics, Machine]:
    """Execute ``module`` under the simulated system; returns metrics+machine.

    ``spawns`` lists (function name, args) per hart/core.  As a
    convenience shim for the :mod:`repro.api` redesign, ``module`` may
    instead be a :class:`repro.api.RunSpec`, in which case every other
    argument is taken from the spec (build, compile, simulate in one
    call) and must be left at its default.

    With ``check=True`` the online persistency checker
    (:mod:`repro.check`) rides along and raises
    :class:`repro.check.PersistencyViolationError` if any persistent-
    domain transition violates the region-persistency model.  Requires
    ``persistence=True``.
    """
    if not isinstance(module, Module):
        from repro.api import RunSpec, execute_spec

        if isinstance(module, RunSpec):
            result = execute_spec(module, keep_machine=True)
            return result.metrics, result.machine
        raise TypeError(
            f"run_workload expects a Module or RunSpec, got {type(module).__name__}"
        )
    if spawns is None:
        raise TypeError("run_workload requires spawns when given a Module")
    machine, system = build_system(
        module,
        spawns,
        params=params,
        threshold=threshold,
        persistence=persistence,
        quantum=quantum,
    )
    if check:
        from repro.check.checker import PersistencyChecker
        from repro.isa.trace import TeeObserver

        checker = PersistencyChecker.attach(system)
        machine.run(TeeObserver(checker, system), max_steps=max_steps)
        metrics = system.finish()
        checker.finalize(system)
        checker.report.raise_if_violated()
        return metrics, machine
    machine.run(system, max_steps=max_steps)
    return system.finish(), machine
