"""The multi-core persistence engine (Sections 5.1–5.3).

Owns one :class:`~repro.arch.proxy.CoreProxyPipeline` per core plus the
shared NVM, and implements the cross-core interactions:

* **regular-path writebacks** — when a dirty line is evicted from the
  DRAM cache into NVM, the engine applies the words to the durable image
  and (with stale-read prevention enabled) scans *every* core's proxy
  buffers, unsetting the redo valid-bit of matching entries so a delayed
  phase-2 drain can never overwrite newer data (Section 5.3.2),
* **stale-read detection** — loads that miss every cache read NVM; the
  engine compares the durable word against the architectural value and
  counts mismatches.  With prevention on this must be zero; with
  prevention off the Figure 6 scenarios become observable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arch.nvm import NVMain
from repro.arch.params import SimParams
from repro.arch.proxy import CoreProxyPipeline
from repro.ir.values import WORD_BYTES


class PersistenceEngine:
    """Two-phase atomic stores with undo+redo logging across all cores."""

    def __init__(
        self,
        params: SimParams,
        nvm: NVMain,
        num_cores: int,
        threshold: int,
    ) -> None:
        self.params = params
        self.nvm = nvm
        self.threshold = threshold
        self.pipelines: List[CoreProxyPipeline] = [
            CoreProxyPipeline(core, params, nvm, threshold)
            for core in range(num_cores)
        ]
        # -- statistics --------------------------------------------------
        self.invalidations = 0
        self.stale_reads = 0
        self.stale_reads_prevented = 0

    def pipeline(self, core: int) -> CoreProxyPipeline:
        while core >= len(self.pipelines):
            self.pipelines.append(
                CoreProxyPipeline(len(self.pipelines), self.params, self.nvm, self.threshold)
            )
        return self.pipelines[core]

    # -- store/checkpoint/boundary pass-throughs ----------------------------

    def on_store(self, core: int, now: float, addr: int, value: int, old: int) -> float:
        return self.pipeline(core).record_store(now, addr, value, old)

    def on_ckpt(self, core: int, now: float, slot_addr: int, value: int) -> float:
        return self.pipeline(core).record_ckpt(now, slot_addr, value)

    def on_boundary(self, core: int, now: float, region_id: int, continuation) -> float:
        return self.pipeline(core).record_boundary(now, region_id, continuation)

    # -- regular-path writeback (Section 5.3) ---------------------------------

    def on_nvm_writeback(self, now: float, line_addr: int, words: Dict[int, int]) -> None:
        """A dirty line reached NVM through the cache hierarchy."""
        for pipe in self.pipelines:
            pipe.advance(now)
        self.nvm.writeback_words(now, words)
        if self.params.stale_read_prevention:
            for addr in words:
                for pipe in self.pipelines:
                    n = pipe.invalidate_matching(addr)
                    self.invalidations += n
                    self.stale_reads_prevented += n

    # -- stale read detection ----------------------------------------------------

    def check_nvm_read(self, now: float, addr: int, architectural: int) -> int:
        """A load missed every cache and reads NVM; returns the durable word
        and counts a stale read if it mismatches the architectural value."""
        for pipe in self.pipelines:
            pipe.advance(now)
        value = self.nvm.read_word(addr)
        if value != architectural:
            self.stale_reads += 1
        return value

    # -- lifecycle ----------------------------------------------------------------

    def advance_all(self, now: float) -> None:
        for pipe in self.pipelines:
            pipe.advance(now)

    def drain_all(self) -> float:
        """Finish all pending persistence work; returns the last event time."""
        t = 0.0
        for pipe in self.pipelines:
            t = max(t, pipe.drain_everything())
        return t

    # -- aggregate statistics ----------------------------------------------------

    @property
    def fe_stall_cycles(self) -> float:
        return sum(p.fe_stall_cycles for p in self.pipelines)

    @property
    def sync_stall_cycles(self) -> float:
        return sum(p.sync_stall_cycles for p in self.pipelines)

    @property
    def entries_created(self) -> int:
        return sum(p.entries_created for p in self.pipelines)

    @property
    def entries_merged(self) -> int:
        return sum(p.entries_merged for p in self.pipelines)

    @property
    def boundary_entries(self) -> int:
        return sum(p.boundary_entries for p in self.pipelines)

    @property
    def boundaries_skipped(self) -> int:
        return sum(p.boundaries_skipped for p in self.pipelines)
