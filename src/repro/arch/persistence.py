"""The multi-core persistence engine (Sections 5.1–5.3).

Owns one :class:`~repro.arch.proxy.CoreProxyPipeline` per core plus the
shared NVM, and implements the cross-core interactions:

* **regular-path writebacks** — when a dirty line is evicted from the
  DRAM cache into NVM, the engine applies the words to the durable image
  and (with stale-read prevention enabled) scans *every* core's proxy
  buffers, unsetting the redo valid-bit of matching entries so a delayed
  phase-2 drain can never overwrite newer data (Section 5.3.2),
* **stale-read detection** — loads that miss every cache read NVM; the
  engine compares the durable word against the architectural value and
  counts mismatches.  With prevention on this must be zero; with
  prevention off the Figure 6 scenarios become observable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional

from repro.arch.nvm import NVMain
from repro.arch.params import SimParams
from repro.arch.proxy import CoreProxyPipeline
from repro.ir.values import WORD_BYTES


@dataclass(frozen=True)
class ProtocolMutations:
    """Debug knobs that *break* the persistence protocol on purpose.

    Each flag plants one classic undo/redo-ordering bug in the proxy
    pipeline (or the recovery protocol); all default to off and nothing
    in the simulator sets them outside :mod:`repro.check.mutants`, which
    uses them to prove the persistency checker detects every class of
    violation it claims to (sensitivity, not just silence).

    Pipeline-side knobs (gated in :mod:`repro.arch.proxy` /
    :class:`PersistenceEngine`):

    * ``skip_undo_log`` — data entries record the *redo* value in the
      undo field too; rollback of an interrupted region is impossible.
    * ``merge_across_regions`` — front-end merging ignores the region
      check of Section 5.2.1, retroactively editing a committed region.
    * ``drop_boundary_entry`` — boundaries advance the region sequence
      but never emit a delimiter entry; committed regions never drain.
    * ``reorder_phase2`` — phase-2 drain services a later region's data
      entry ahead of the boundary at the back-end head.
    * ``drain_past_boundary`` — phase-2 drains data entries even when no
      boundary entry has arrived (uncommitted data reaches NVM).
    * ``skip_pc_checkpoint`` — boundary drain omits the durable PC
      checkpoint (DESIGN.md reproduction finding #1 un-fixed).
    * ``skip_ckpt_flush`` — boundary drain omits the staged register
      checkpoints; recovery would reload stale registers.
    * ``redo_writes_undo`` — phase-2 writes the undo word where the redo
      word belongs.
    * ``drop_invalidation`` — regular-path writebacks skip the
      Section 5.3.2 valid-bit scan; delayed drains overwrite newer data.
    * ``invalidate_everything`` — the valid-bit scan unsets *every*
      entry's bit, not just matching addresses; valid redo data is lost.

    Recovery-side knobs (gated in :func:`repro.arch.recovery.recover`):

    * ``recovery_skip_redo`` — phase A skips applying committed redo
      words.
    * ``recovery_stale_pc`` — recovery resumes from the durable PC
      checkpoint even when newer boundary entries survive in the
      buffers.
    * ``recovery_early_clear`` — recovery retires the proxy buffers and
      WPQ journal *before* applying their redo/undo instead of at the
      recovery-complete commit step; invisible to a single-crash run
      but fatal to re-entry (the multi-crash campaign's teeth test).
    """

    skip_undo_log: bool = False
    merge_across_regions: bool = False
    drop_boundary_entry: bool = False
    reorder_phase2: bool = False
    drain_past_boundary: bool = False
    skip_pc_checkpoint: bool = False
    skip_ckpt_flush: bool = False
    redo_writes_undo: bool = False
    drop_invalidation: bool = False
    invalidate_everything: bool = False
    recovery_skip_redo: bool = False
    recovery_stale_pc: bool = False
    recovery_early_clear: bool = False

    @classmethod
    def single(cls, name: str) -> "ProtocolMutations":
        """The mutation set with exactly one knob on."""
        if name not in {f.name for f in fields(cls)}:
            raise ValueError(f"unknown protocol mutation {name!r}")
        return cls(**{name: True})

    @classmethod
    def names(cls) -> List[str]:
        return [f.name for f in fields(cls)]

    @property
    def active(self) -> List[str]:
        return [f.name for f in fields(self) if getattr(self, f.name)]


class PersistenceEngine:
    """Two-phase atomic stores with undo+redo logging across all cores."""

    def __init__(
        self,
        params: SimParams,
        nvm: NVMain,
        num_cores: int,
        threshold: int,
        mutations: Optional[ProtocolMutations] = None,
    ) -> None:
        self.params = params
        self.nvm = nvm
        self.threshold = threshold
        self.mutations = mutations
        #: Optional persistency-checker hook sink (duck-typed; see
        #: :class:`repro.check.checker.PersistencyChecker`).  Assign via
        #: :meth:`set_watcher` so lazily grown pipelines inherit it.
        self.watcher = None
        self.pipelines: List[CoreProxyPipeline] = [
            CoreProxyPipeline(core, params, nvm, threshold, mutations=mutations)
            for core in range(num_cores)
        ]
        # -- statistics --------------------------------------------------
        self.invalidations = 0
        self.stale_reads = 0
        self.stale_reads_prevented = 0

    def pipeline(self, core: int) -> CoreProxyPipeline:
        while core >= len(self.pipelines):
            pipe = CoreProxyPipeline(
                len(self.pipelines),
                self.params,
                self.nvm,
                self.threshold,
                mutations=self.mutations,
            )
            pipe.watcher = self.watcher
            self.pipelines.append(pipe)
        return self.pipelines[core]

    def set_watcher(self, watcher) -> None:
        """Attach a proxy-pipeline hook sink to every (current and
        future) pipeline."""
        self.watcher = watcher
        for pipe in self.pipelines:
            pipe.watcher = watcher

    # -- store/checkpoint/boundary pass-throughs ----------------------------

    def on_store(self, core: int, now: float, addr: int, value: int, old: int) -> float:
        return self.pipeline(core).record_store(now, addr, value, old)

    def on_ckpt(self, core: int, now: float, slot_addr: int, value: int) -> float:
        return self.pipeline(core).record_ckpt(now, slot_addr, value)

    def on_boundary(self, core: int, now: float, region_id: int, continuation) -> float:
        return self.pipeline(core).record_boundary(now, region_id, continuation)

    # -- regular-path writeback (Section 5.3) ---------------------------------

    def on_nvm_writeback(self, now: float, line_addr: int, words: Dict[int, int]) -> None:
        """A dirty line reached NVM through the cache hierarchy."""
        for pipe in self.pipelines:
            pipe.advance(now)
        if self.watcher is not None:
            for addr, value in words.items():
                self.watcher.on_writeback(addr, value)
        self.nvm.writeback_words(now, words)
        m = self.mutations
        if m is not None and m.invalidate_everything:
            for pipe in self.pipelines:
                n = pipe.invalidate_all()
                self.invalidations += n
                self.stale_reads_prevented += n
            return
        if self.params.stale_read_prevention and not (
            m is not None and m.drop_invalidation
        ):
            for addr in words:
                for pipe in self.pipelines:
                    n = pipe.invalidate_matching(addr)
                    self.invalidations += n
                    self.stale_reads_prevented += n

    # -- stale read detection ----------------------------------------------------

    def check_nvm_read(self, now: float, addr: int, architectural: int) -> int:
        """A load missed every cache and reads NVM; returns the durable word
        and counts a stale read if it mismatches the architectural value."""
        for pipe in self.pipelines:
            pipe.advance(now)
        value = self.nvm.read_word(addr)
        if value != architectural:
            self.stale_reads += 1
        return value

    # -- lifecycle ----------------------------------------------------------------

    def advance_all(self, now: float) -> None:
        for pipe in self.pipelines:
            pipe.advance(now)

    def drain_all(self) -> float:
        """Finish all pending persistence work; returns the last event time."""
        t = 0.0
        for pipe in self.pipelines:
            t = max(t, pipe.drain_everything())
        return t

    # -- aggregate statistics ----------------------------------------------------

    @property
    def fe_stall_cycles(self) -> float:
        return sum(p.fe_stall_cycles for p in self.pipelines)

    @property
    def sync_stall_cycles(self) -> float:
        return sum(p.sync_stall_cycles for p in self.pipelines)

    @property
    def entries_created(self) -> int:
        return sum(p.entries_created for p in self.pipelines)

    @property
    def entries_merged(self) -> int:
        return sum(p.entries_merged for p in self.pipelines)

    @property
    def boundary_entries(self) -> int:
        return sum(p.boundary_entries for p in self.pipelines)

    @property
    def boundaries_skipped(self) -> int:
        return sum(p.boundaries_skipped for p in self.pipelines)
