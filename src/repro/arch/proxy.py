"""Proxy buffers and the per-core two-phase store pipeline (Section 5.2).

Entry layout follows Figure 5, at word rather than cache-line granularity
(our stores are word-sized; see DESIGN.md):

* data entry — address, undo word (before), redo word (after), and the
  back-end's redo valid-bit,
* boundary entry — the region delimiter.  Besides the paper's type bit it
  carries our recovery continuation and the staged register-checkpoint
  values of the region it commits (the front-end's "dedicated register
  file storage" of Section 5.2.1 is non-volatile, so attaching its
  snapshot to the boundary entry models exactly what recovery may use).

Pipeline stages per core:

1. **Phase 1** — a store allocates a front-end entry (merging with an
   existing same-address entry of the same region); the core stalls only
   when the front-end is full (Section 5.2.1).
2. **Proxy path** — entries stream to the back-end over a dedicated link
   (bandwidth + latency), blocked when the back-end is full.
3. **Phase 2** — once a region's boundary entry reaches the back-end, the
   region's redo data drains to NVM through the shared write port, in
   region order (Section 5.2.2); entries with an unset redo valid-bit are
   skipped (Section 5.3.2).

Everything is timestamp-driven and advanced lazily: ``advance(now)``
performs all pipeline events due by ``now`` in chronological order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.arch.nvm import NVMain
from repro.arch.params import SimParams

KIND_DATA = 0
KIND_BOUNDARY = 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_WORD_MASK = (1 << 64) - 1


def _fnv_mix(h: int, value) -> int:
    """Fold one value (int, str, None, or tuple) into an FNV-1a hash.

    Deliberately avoids Python's builtin ``hash`` (salted per process) so
    checksums are reproducible across runs — fault-injection campaigns
    promise determinism under a fixed seed.
    """
    if value is None:
        data = b"\x00"
    elif isinstance(value, bool):
        data = b"\x01" if value else b"\x02"
    elif isinstance(value, int):
        data = value.to_bytes(16, "little", signed=True)
    elif isinstance(value, str):
        data = value.encode()
    elif isinstance(value, tuple):
        for v in value:
            h = _fnv_mix(h, v)
        return h
    else:  # pragma: no cover - defensive
        data = repr(value).encode()
    for b in data:
        h = ((h ^ b) * _FNV_PRIME) & _WORD_MASK
    return h


def word_checksum(addr: int, value: int) -> int:
    """Integrity word for one NVM cell (the per-word ECC/CRC a real part
    stores alongside the data array)."""
    return _fnv_mix(_fnv_mix(_FNV_OFFSET, addr), value)


def _continuation_key(continuation) -> tuple:
    """A stable identity for a continuation's durable payload."""
    if continuation is None:
        return (None,)
    if hasattr(continuation, "func_name"):
        return (
            continuation.func_name,
            continuation.label,
            continuation.index,
            len(continuation.callstack),
        )
    # Engine-level tests use opaque stand-ins; fold their repr.
    return (str(continuation),)


def entry_checksum(entry: "ProxyEntry") -> int:
    """Checksum over an entry's *durable payload* (Figure 5 fields).

    Timing bookkeeping (``create_time``/``arrive_time``) is excluded: it
    is simulator state, not part of what hardware writes to the buffer.
    Every legitimate mutation of an entry (merge, valid-bit scan) goes
    through :meth:`ProxyEntry.refresh_checksum`; a fault that flips bits
    behind the checksum's back is therefore detectable at recovery.
    """
    h = _FNV_OFFSET
    h = _fnv_mix(h, entry.kind)
    h = _fnv_mix(h, entry.addr)
    h = _fnv_mix(h, entry.undo)
    h = _fnv_mix(h, entry.redo)
    h = _fnv_mix(h, entry.redo_valid)
    h = _fnv_mix(h, entry.region_seq)
    h = _fnv_mix(h, entry.region_id)
    h = _fnv_mix(h, _continuation_key(entry.continuation))
    for slot_addr in sorted(entry.ckpts):
        h = _fnv_mix(h, (slot_addr, entry.ckpts[slot_addr]))
    return h


class ProxyEntry:
    """One front-/back-end proxy buffer entry (Figure 5)."""

    __slots__ = (
        "kind",
        "addr",
        "undo",
        "redo",
        "redo_valid",
        "region_seq",
        "create_time",
        "arrive_time",
        "region_id",
        "continuation",
        "ckpts",
        "checksum",
    )

    def __init__(
        self,
        kind: int,
        region_seq: int,
        create_time: float,
        addr: int = 0,
        undo: int = 0,
        redo: int = 0,
        region_id: int = 0,
        continuation: Any = None,
        ckpts: Optional[Dict[int, int]] = None,
    ) -> None:
        self.kind = kind
        self.addr = addr
        self.undo = undo
        self.redo = redo
        self.redo_valid = True
        self.region_seq = region_seq
        self.create_time = create_time
        self.arrive_time = create_time  # set on back-end arrival
        self.region_id = region_id
        self.continuation = continuation
        self.ckpts = ckpts or {}
        self.checksum = entry_checksum(self)

    @property
    def is_boundary(self) -> bool:
        return self.kind == KIND_BOUNDARY

    @property
    def intact(self) -> bool:
        """Does the stored checksum match the payload?  False after a
        torn write / bit flip that bypassed :meth:`refresh_checksum`."""
        return self.checksum == entry_checksum(self)

    def refresh_checksum(self) -> None:
        """Recompute integrity after a legitimate hardware mutation
        (front-end merge, Section 5.3.2 valid-bit scan)."""
        self.checksum = entry_checksum(self)

    def clone(self) -> "ProxyEntry":
        """Copy with no shared mutable state (crash capture must not
        alias the live pipeline — see ``capture_crash_state``).

        ``checksum`` is copied verbatim, *not* recomputed: a snapshot of
        a torn entry must stay torn.
        """
        dup = ProxyEntry.__new__(ProxyEntry)
        for slot in ProxyEntry.__slots__:
            value = getattr(self, slot)
            if isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            elif isinstance(value, set):
                value = set(value)
            setattr(dup, slot, value)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_boundary:
            return f"<boundary seq={self.region_seq} region={self.region_id}>"
        return (
            f"<data seq={self.region_seq} addr={self.addr:#x} "
            f"undo={self.undo} redo={self.redo} valid={self.redo_valid}>"
        )


class ProxyOverflowError(Exception):
    """A region produced more proxy entries than the back-end can hold —
    the compiler/architecture threshold contract was violated."""


class CoreProxyPipeline:
    """One core's front-end buffer, proxy path, and back-end buffer.

    ``watcher`` is an optional duck-typed hook sink (the persistency
    checker): the pipeline reports what it *actually did* — entries
    created/merged, boundaries emitted, redo words drained or skipped,
    boundary drains with the checkpoint/PC words really written — so a
    planted protocol mutation cannot lie to the checker.  ``mutations``
    (a :class:`repro.arch.persistence.ProtocolMutations`) gates those
    planted bugs; ``None`` means the faithful protocol.
    """

    def __init__(
        self,
        core_id: int,
        params: SimParams,
        nvm: NVMain,
        threshold: int,
        mutations=None,
    ) -> None:
        self.core_id = core_id
        self.params = params
        self.nvm = nvm
        self.mutations = mutations
        self.watcher = None
        self.fe_cap = params.frontend_entries
        self.be_cap = params.backend_capacity(threshold)

        self.fe: Deque[ProxyEntry] = deque()
        #: current-region front-end entries by address (for merging).
        self._fe_merge: Dict[int, ProxyEntry] = {}
        self.be: Deque[ProxyEntry] = deque()
        self._boundaries_in_be = 0

        #: dedicated non-volatile register-file storage (Section 5.2.1):
        #: checkpoint slot address -> value, accumulated since the last
        #: *emitted* boundary entry.
        self.staging: Dict[int, int] = {}

        self.region_seq = 0
        self._entries_since_boundary = 0
        self.xfer_free = 0.0
        #: Monotonic pipeline event clock: an event blocked behind another
        #: (a transfer waiting for a drain to free a back-end slot) cannot
        #: be timestamped before it.
        self._event_clock = 0.0

        # -- statistics ------------------------------------------------------
        self.entries_created = 0
        self.entries_merged = 0
        self.boundary_entries = 0
        self.boundaries_skipped = 0
        self.fe_stall_cycles = 0.0
        self.sync_stall_cycles = 0.0
        #: durable time of the most recently drained boundary.
        self.last_region_durable = 0.0

    # ------------------------------------------------------------------ events

    def _next_event(self) -> Optional[Tuple[float, str]]:
        """Earliest pending pipeline event: ('drain'|'xfer', time).

        Times are floored to the monotonic event clock: an event enabled
        by a predecessor (a transfer that needed a drain to free a slot)
        cannot be stamped before it.
        """
        best: Optional[Tuple[float, str]] = None
        drainable = self._boundaries_in_be > 0 or (
            self.mutations is not None and self.mutations.drain_past_boundary
        )
        if self.be and drainable:
            head = self.be[0]
            t = max(head.arrive_time, self.nvm.write_free_at)
            best = (t, "drain")
        if self.fe and len(self.be) < self.be_cap:
            # An entry needs one transfer interval of front-end residency
            # before it can start streaming out.
            t = max(
                self.fe[0].create_time + self.params.proxy_xfer_cycles,
                self.xfer_free,
            )
            if best is None or t < best[0]:
                best = (t, "xfer")
        if best is None:
            return None
        return (max(best[0], self._event_clock), best[1])

    def _do_drain(self, t: float) -> float:
        """Retire the back-end head entry; returns completion time."""
        self._event_clock = max(self._event_clock, t)
        m = self.mutations
        if (
            m is not None
            and m.reorder_phase2
            and len(self.be) >= 2
            and self.be[0].is_boundary
            and not self.be[1].is_boundary
        ):
            entry = self.be[1]
            del self.be[1]
        else:
            entry = self.be.popleft()
        watcher = self.watcher
        if entry.is_boundary:
            self._boundaries_in_be -= 1
            done = t
            ckpts_written: Dict[int, int] = {}
            if not (m is not None and m.skip_ckpt_flush):
                for slot_addr, value in entry.ckpts.items():
                    done = self.nvm.ckpt_write(done, slot_addr, value)
                    ckpts_written[slot_addr] = value
            # Persist the PC checkpoint: with the boundary entry retired,
            # the durable resume point must live in NVM (Section 3.1).
            pc_written = not (m is not None and m.skip_pc_checkpoint)
            if pc_written:
                self.nvm.pc_checkpoints[self.core_id] = (
                    entry.continuation,
                    entry.region_id,
                )
            self.last_region_durable = max(done, t)
            if watcher is not None:
                watcher.on_boundary_drained(
                    self.core_id,
                    entry.region_seq,
                    entry.region_id,
                    entry.continuation,
                    ckpts_written,
                    pc_written,
                )
            return done
        if entry.redo_valid:
            value = entry.undo if (m is not None and m.redo_writes_undo) else entry.redo
            if watcher is not None:
                watcher.on_redo_drained(
                    self.core_id, entry.region_seq, entry.addr, value
                )
            return self.nvm.redo_write(t, entry.addr, value)
        self.nvm.writes_skipped += 1
        if watcher is not None:
            watcher.on_redo_skipped(self.core_id, entry.region_seq, entry.addr)
        return t

    def _do_xfer(self, t: float) -> None:
        self._event_clock = max(self._event_clock, t)
        entry = self.fe.popleft()
        entry.arrive_time = t + self.params.proxy_path_cycles
        self.xfer_free = t + self.params.proxy_xfer_cycles
        merged = self._fe_merge.get(entry.addr)
        if merged is entry:
            del self._fe_merge[entry.addr]
        self.be.append(entry)
        if entry.is_boundary:
            self._boundaries_in_be += 1

    def advance(self, now: float) -> None:
        """Perform all pipeline events due by ``now``, in time order."""
        while True:
            ev = self._next_event()
            if ev is None or ev[0] > now:
                return
            t, kind = ev
            if kind == "drain":
                self._do_drain(t)
            else:
                self._do_xfer(t)

    def _advance_until(self, cond: Callable[[], bool]) -> float:
        """Run pipeline events (any timestamp) until ``cond()``; returns the
        time of the last event performed."""
        t = 0.0
        while not cond():
            ev = self._next_event()
            if ev is None:
                raise ProxyOverflowError(
                    f"core {self.core_id}: proxy pipeline deadlock — a region "
                    "overflowed the back-end proxy buffer "
                    f"(be={len(self.be)}/{self.be_cap}, fe={len(self.fe)}/{self.fe_cap})"
                )
            t, kind = ev
            if kind == "drain":
                t = max(t, self._do_drain(t))
            else:
                self._do_xfer(t)
        return t

    # --------------------------------------------------------------- operations

    def record_store(self, now: float, addr: int, value: int, old: int) -> float:
        """Phase-1 entry creation for a store; returns the (possibly
        stalled) completion time for the core."""
        self.advance(now)
        m = self.mutations
        merged = self._fe_merge.get(addr)
        if merged is None and m is not None and m.merge_across_regions:
            # The planted bug: merge into *any* buffered entry for the
            # address, ignoring region ownership entirely — including
            # entries of already-committed regions sitting in the
            # back-end awaiting drain (newest match wins, as a
            # content-addressed lookup would).
            for entry in reversed(list(self.be) + list(self.fe)):
                if not entry.is_boundary and entry.addr == addr:
                    merged = entry
                    break
        if merged is not None and (
            merged.region_seq == self.region_seq
            or (m is not None and m.merge_across_regions)
        ):
            merged.redo = value
            merged.refresh_checksum()
            self.entries_merged += 1
            if self.watcher is not None:
                self.watcher.on_merge(
                    self.core_id, merged.region_seq, addr, value
                )
            return now
        if len(self.fe) >= self.fe_cap:
            t = self._advance_until(lambda: len(self.fe) < self.fe_cap)
            if t > now:
                self.fe_stall_cycles += t - now
                now = t
        undo = value if (m is not None and m.skip_undo_log) else old
        entry = ProxyEntry(
            KIND_DATA, self.region_seq, now, addr=addr, undo=undo, redo=value
        )
        self.fe.append(entry)
        self._fe_merge[addr] = entry
        self._entries_since_boundary += 1
        self.entries_created += 1
        if self.watcher is not None:
            self.watcher.on_entry(
                self.core_id, entry.region_seq, addr, entry.undo, entry.redo
            )
        return now

    def record_ckpt(self, now: float, slot_addr: int, value: int) -> float:
        """A register-checkpoint store: update the dedicated NV storage."""
        self.advance(now)
        self.staging[slot_addr] = value
        return now

    def record_boundary(
        self, now: float, region_id: int, continuation: Any
    ) -> float:
        """Region boundary: emit the delimiter entry (unless the region is
        empty — the traffic optimisation of Section 5.2.1) and start a new
        region.  Returns the (possibly stalled) completion time."""
        self.advance(now)
        m = self.mutations
        emit = (
            self._entries_since_boundary > 0
            or bool(self.staging)
            or region_id == -1
        )
        if not emit:
            self.boundaries_skipped += 1
            return now
        if m is not None and m.drop_boundary_entry:
            # Planted bug: the region sequence advances as if the
            # delimiter were emitted, but no entry ever reaches the
            # buffers — the committed region can never drain.
            self.staging = {}
            self.region_seq += 1
            self._entries_since_boundary = 0
            self._fe_merge.clear()
            return now
        if len(self.fe) >= self.fe_cap:
            t = self._advance_until(lambda: len(self.fe) < self.fe_cap)
            if t > now:
                self.fe_stall_cycles += t - now
                now = t
        entry = ProxyEntry(
            KIND_BOUNDARY,
            self.region_seq,
            now,
            region_id=region_id,
            continuation=continuation,
            ckpts=self.staging,
        )
        self.fe.append(entry)
        self.boundary_entries += 1
        self.staging = {}
        self.region_seq += 1
        self._entries_since_boundary = 0
        if not (m is not None and m.merge_across_regions):
            self._fe_merge.clear()  # never merge across regions (Section 5.2.1)
        if self.params.persist_mode.value == "sync":
            # Naive synchronous persistence: the core blocks until the
            # whole region (data + boundary) has crossed the proxy path
            # into the memory controller's persistent domain.  (Full NVM
            # drain is not required for durability — the back-end buffer
            # is battery backed — but the per-boundary round trip is what
            # makes the naive design "up to 2x" slower, Section 1.4.)
            seq = entry.region_seq
            t = self._advance_until(
                lambda: not any(e.region_seq <= seq for e in self.fe)
            )
            arrive = max(
                (e.arrive_time for e in self.be if e.region_seq <= seq),
                default=t,
            )
            t = max(t, arrive)
            if t > now:
                self.sync_stall_cycles += t - now
                now = t
        return now

    def drain_committed_until(self, now: float) -> float:
        """Make every *committed* region durable; returns completion time.

        Used as the I/O persist barrier (Section 3.3): before an effect
        leaves the persistence domain, all state it may depend on must be
        durable — otherwise a crash could roll the system back behind an
        output the external world already saw.  The current (uncommitted)
        region's entries stay buffered.
        """
        seq = self.region_seq  # entries with region_seq < seq are committed

        def committed_gone() -> bool:
            return not any(
                e.region_seq < seq for e in self.fe
            ) and not any(e.region_seq < seq for e in self.be)

        if committed_gone():
            return now
        t = self._advance_until(committed_gone)
        return max(now, t, self.last_region_durable)

    # --------------------------------------------------------------- queries

    def invalidate_matching(self, addr: int) -> int:
        """Unset the redo valid-bit of every entry for ``addr`` (both the
        back-end scan and the in-flight monitoring of Section 5.3.2 — the
        simulator sees all in-flight entries directly)."""
        count = 0
        for entry in self.be:
            if not entry.is_boundary and entry.addr == addr and entry.redo_valid:
                entry.redo_valid = False
                entry.refresh_checksum()
                count += 1
        for entry in self.fe:
            if not entry.is_boundary and entry.addr == addr and entry.redo_valid:
                entry.redo_valid = False
                entry.refresh_checksum()
                count += 1
        return count

    def invalidate_all(self) -> int:
        """Unset every data entry's redo valid-bit regardless of address —
        only the ``invalidate_everything`` planted mutation calls this;
        correct hardware never would."""
        count = 0
        for entry in list(self.be) + list(self.fe):
            if not entry.is_boundary and entry.redo_valid:
                entry.redo_valid = False
                entry.refresh_checksum()
                count += 1
        return count

    def drain_everything(self) -> float:
        """Complete all pending pipeline work (end-of-run); returns time.

        A trailing uncommitted region's entries stay put (no boundary ever
        arrives for them) — exactly the crash-time content recovery sees.
        """
        def settled() -> bool:
            ev = self._next_event()
            return ev is None

        t = 0.0
        while True:
            ev = self._next_event()
            if ev is None:
                return t
            tt, kind = ev
            if kind == "drain":
                t = max(t, self._do_drain(tt))
            else:
                self._do_xfer(tt)
                t = max(t, tt)

    def entries_in_order(self) -> List[ProxyEntry]:
        """All surviving entries oldest-first (back-end then front-end) —
        the order the recovery threads scan after a power failure."""
        return list(self.be) + list(self.fe)
