"""Simulator configuration (paper Table 1).

All latencies are kept in *cycles* at the core clock (2 GHz: 1 cycle =
0.5 ns, so a nanosecond figure from Table 1 doubles).  Two presets exist:

* :meth:`SimParams.paper` — the Table 1 configuration verbatim,
* :meth:`SimParams.scaled` — the same ratios with capacities shrunk to
  match our laptop-scale synthetic workloads (standard practice when the
  working set is scaled down; see DESIGN.md).  The *relative* numbers the
  figures report are driven by latency ratios and the proxy-buffer
  contract, which are identical in both presets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class PersistMode(enum.Enum):
    """How region persistence interacts with execution."""

    #: Two-phase atomic stores drain in the background (Section 5.1.2).
    ASYNC = "async"
    #: Naive synchronous persistence: the core stalls at every region
    #: boundary until the region is fully durable (the paper's "naive
    #: approach may slow down the benchmark up to 2x").
    SYNC = "sync"


@dataclass(frozen=True)
class SimParams:
    """Full simulator configuration; defaults follow Table 1."""

    # -- clock ---------------------------------------------------------------
    clock_ghz: float = 2.0

    # -- core ------------------------------------------------------------------
    #: Effective cycles per retired non-memory instruction (8-way OoO).
    cpi_base: float = 0.5
    #: Fraction of memory-access latency exposed to the core.  The paper's
    #: 8-way out-of-order pipeline with 128/72-entry load/store queues
    #: hides most hit latency behind independent work; a trace-driven
    #: model must fold that in or memory costs swamp the instruction
    #: stream (see DESIGN.md on fidelity).
    mem_exposure: float = 0.35
    #: Extra cycles per register-checkpointing store beyond the pipeline
    #: slot: it occupies the store path and writes the front-end proxy's
    #: dedicated register-file storage ("checkpointing stores incur
    #: non-negligible pressure", Section 1.3).
    ckpt_store_cycles: float = 1.0
    #: Extra cycles per region-boundary instruction: the boundary entry
    #: write plus the in-order commit bookkeeping at the front-end.
    boundary_cycles: float = 1.0

    # -- L1 data cache -----------------------------------------------------------
    l1_size_bytes: int = 32 * 1024
    l1_assoc: int = 8
    l1_hit_ns: float = 2.0

    # -- shared L2 ------------------------------------------------------------
    l2_size_bytes: int = 16 * 1024 * 1024
    l2_assoc: int = 16
    l2_hit_ns: float = 20.0

    # -- off-chip DRAM cache (the "memory mode" DRAM) ----------------------------
    dram_cache_size_bytes: int = 8 * 1024**3
    dram_hit_ns: float = 50.0

    # -- NVM main memory -----------------------------------------------------
    nvm_read_ns: float = 150.0
    nvm_write_ns: float = 300.0
    #: Write-pending-queue entries (persistent domain).
    wpq_entries: int = 16
    #: Sustained NVM write initiation interval: the WPQ, bank-level
    #: parallelism and channel interleaving pipeline writes, so throughput
    #: is write latency divided by the effective parallelism.  Our proxy
    #: entries are word-granular where the paper's are 64-byte lines, so a
    #: "write" here is 1/8th of a line write; the default folds that 8x in
    #: (16-deep WPQ pipelining x 8 words per line write, minus overheads).
    nvm_write_parallelism: int = 256

    # -- proxy architecture ------------------------------------------------------
    #: Front-end proxy buffer entries (Section 6.1: 32 entries / 4KB).
    frontend_entries: int = 32
    #: One-way proxy-path latency (Table 1: 20 ns).
    proxy_path_ns: float = 20.0
    #: Proxy-path initiation interval per entry (wide dedicated link).
    proxy_xfer_ns: float = 1.0
    #: Back-end entries per core; ``None`` means "equal to the compiler's
    #: region store threshold", the co-design contract of Section 5.2.2.
    backend_entries: int | None = None

    # -- I/O devices -----------------------------------------------------------
    #: Latency of one external I/O write (device register / queue doorbell).
    io_latency_ns: float = 200.0

    # -- behaviour toggles -----------------------------------------------------
    persist_mode: PersistMode = PersistMode.ASYNC
    #: Stale-read prevention via redo valid-bit invalidation (Section 5.3.2).
    stale_read_prevention: bool = True

    # -- geometry ------------------------------------------------------------
    line_bytes: int = 64

    # -- derived cycle quantities ----------------------------------------------

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.clock_ghz

    @property
    def l1_hit_cycles(self) -> float:
        return self.ns_to_cycles(self.l1_hit_ns)

    @property
    def l2_hit_cycles(self) -> float:
        return self.ns_to_cycles(self.l2_hit_ns)

    @property
    def dram_hit_cycles(self) -> float:
        return self.ns_to_cycles(self.dram_hit_ns)

    @property
    def nvm_read_cycles(self) -> float:
        return self.ns_to_cycles(self.nvm_read_ns)

    @property
    def nvm_write_cycles(self) -> float:
        return self.ns_to_cycles(self.nvm_write_ns)

    @property
    def nvm_write_interval_cycles(self) -> float:
        """Sustained cycles between NVM write issues (port throughput)."""
        return self.nvm_write_cycles / self.nvm_write_parallelism

    @property
    def proxy_path_cycles(self) -> float:
        return self.ns_to_cycles(self.proxy_path_ns)

    @property
    def proxy_xfer_cycles(self) -> float:
        return self.ns_to_cycles(self.proxy_xfer_ns)

    @property
    def io_latency_cycles(self) -> float:
        return self.ns_to_cycles(self.io_latency_ns)

    @property
    def l1_lines(self) -> int:
        return self.l1_size_bytes // self.line_bytes

    @property
    def l2_lines(self) -> int:
        return self.l2_size_bytes // self.line_bytes

    @property
    def dram_cache_lines(self) -> int:
        return self.dram_cache_size_bytes // self.line_bytes

    def backend_capacity(self, threshold: int) -> int:
        """Back-end proxy entries: the compiler threshold unless overridden.

        One extra slot is reserved for the region-boundary delimiter entry
        so a full region plus its marker always fits (Section 5.2.2).
        """
        base = self.backend_entries if self.backend_entries is not None else threshold
        return base + 1

    # -- presets ----------------------------------------------------------------

    @staticmethod
    def paper() -> "SimParams":
        """The Table 1 configuration."""
        return SimParams()

    @staticmethod
    def scaled() -> "SimParams":
        """Capacities shrunk ~512x for laptop-scale synthetic workloads.

        Latencies and all persistence parameters are unchanged; only cache
        capacities shrink so that the scaled working sets exercise every
        level of the hierarchy, including DRAM-cache evictions into NVM
        (the regular-path writebacks of Section 5.3).
        """
        return SimParams(
            l1_size_bytes=4 * 1024,
            l2_size_bytes=32 * 1024,
            dram_cache_size_bytes=256 * 1024,
        )

    def with_(self, **kwargs) -> "SimParams":
        """Functional update, e.g. ``params.with_(persist_mode=SYNC)``."""
        return replace(self, **kwargs)
