"""Value-carrying cache models.

The functional machine computes architectural values, so the caches here
exist for two purposes only: *timing* (hit/miss classification) and
*writeback content* (which dirty words reach the next level, and
ultimately NVM — the regular persist path of Section 5.3).  A line
therefore tracks presence, dirtiness, and its dirty words; clean data is
never stored.

Two classes:

* :class:`SetAssocCache` — LRU set-associative cache (L1, L2),
* :class:`DirectMappedCache` — the hardware-managed off-chip DRAM cache of
  Optane's memory mode (direct-mapped per the paper's methodology).

Both deliver evicted dirty lines to a ``writeback`` callback as
``(line_addr, {word_addr: value})``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

WritebackFn = Callable[[int, Dict[int, int]], None]


class LineState:
    """Presence + dirty words of one cached line."""

    __slots__ = ("dirty_words",)

    def __init__(self) -> None:
        self.dirty_words: Dict[int, int] = {}

    @property
    def dirty(self) -> bool:
        return bool(self.dirty_words)


class SetAssocCache:
    """LRU set-associative write-back, write-allocate cache."""

    def __init__(
        self,
        name: str,
        num_lines: int,
        assoc: int,
        line_bytes: int = 64,
        writeback: Optional[WritebackFn] = None,
    ) -> None:
        if num_lines % assoc != 0:
            raise ValueError(f"{name}: lines ({num_lines}) not divisible by assoc")
        self.name = name
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        self.line_bytes = line_bytes
        self.writeback = writeback or (lambda addr, words: None)
        # set index -> OrderedDict[line_addr, LineState] (LRU order: oldest first)
        self.sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _set_of(self, line: int) -> OrderedDict:
        index = (line // self.line_bytes) % self.num_sets
        s = self.sets.get(index)
        if s is None:
            s = OrderedDict()
            self.sets[index] = s
        return s

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return line in self._set_of(line)

    def touch(self, addr: int) -> bool:
        """Access for a load: returns hit?; allocates on miss (LRU update)."""
        line = self.line_addr(addr)
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        self._allocate(s, line)
        return False

    def write(self, addr: int, value: int) -> bool:
        """Access for a store: returns hit?; write-allocates on miss."""
        line = self.line_addr(addr)
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            hit = True
        else:
            self.misses += 1
            self._allocate(s, line)
            hit = False
        s[line].dirty_words[addr] = value
        return hit

    def install_writeback(self, line: int, words: Dict[int, int]) -> None:
        """Accept a dirty writeback from the level above (allocate-on-WB)."""
        s = self._set_of(line)
        if line not in s:
            self._allocate(s, line)
        else:
            s.move_to_end(line)
        s[line].dirty_words.update(words)

    def _allocate(self, s: OrderedDict, line: int) -> None:
        while len(s) >= self.assoc:
            victim, state = s.popitem(last=False)
            if state.dirty:
                self.writebacks += 1
                self.writeback(victim, state.dirty_words)
        s[line] = LineState()

    def evict_line(self, addr: int) -> Optional[Dict[int, int]]:
        """Forcibly evict (for coherence); returns dirty words if any."""
        line = self.line_addr(addr)
        s = self._set_of(line)
        state = s.pop(line, None)
        if state is None:
            return None
        if state.dirty:
            return state.dirty_words
        return {}

    def extract_dirty(self, line: int) -> Dict[int, int]:
        """Take (and clear) the line's dirty words; the line stays, clean.

        Used for upward dirty migration: when an upper level allocates a
        line, stale dirty copies must not linger below it, or their later
        eviction would write old data to NVM *after* newer stores logged
        proxy entries (breaking the Section 5.3.2 invalidation's
        assumption that a writeback always carries the newest data).
        """
        s = self._set_of(line)
        state = s.get(line)
        if state is None or not state.dirty_words:
            return {}
        words = state.dirty_words
        state.dirty_words = {}
        return words

    def flush_all(self) -> None:
        """Write back every dirty line (used by tests)."""
        for s in self.sets.values():
            for line, state in list(s.items()):
                if state.dirty:
                    self.writebacks += 1
                    self.writeback(line, state.dirty_words)
                    state.dirty_words = {}


class DirectMappedCache:
    """Direct-mapped write-back cache (the off-chip DRAM cache)."""

    def __init__(
        self,
        name: str,
        num_lines: int,
        line_bytes: int = 64,
        writeback: Optional[WritebackFn] = None,
    ) -> None:
        self.name = name
        self.num_lines = num_lines
        self.line_bytes = line_bytes
        self.writeback = writeback or (lambda addr, words: None)
        # slot index -> (line_addr, LineState)
        self.slots: Dict[int, Tuple[int, LineState]] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _slot_of(self, line: int) -> int:
        return (line // self.line_bytes) % self.num_lines

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        entry = self.slots.get(self._slot_of(line))
        return entry is not None and entry[0] == line

    def touch(self, addr: int) -> bool:
        line = self.line_addr(addr)
        slot = self._slot_of(line)
        entry = self.slots.get(slot)
        if entry is not None and entry[0] == line:
            self.hits += 1
            return True
        self.misses += 1
        self._evict(slot)
        self.slots[slot] = (line, LineState())
        return False

    def install_writeback(self, line: int, words: Dict[int, int]) -> None:
        slot = self._slot_of(line)
        entry = self.slots.get(slot)
        if entry is None or entry[0] != line:
            self._evict(slot)
            state = LineState()
            self.slots[slot] = (line, state)
        else:
            state = entry[1]
        state.dirty_words.update(words)

    def _evict(self, slot: int) -> None:
        entry = self.slots.pop(slot, None)
        if entry is not None and entry[1].dirty:
            self.writebacks += 1
            self.writeback(entry[0], entry[1].dirty_words)

    def extract_dirty(self, line: int) -> Dict[int, int]:
        """Take (and clear) the line's dirty words (see SetAssocCache)."""
        entry = self.slots.get(self._slot_of(line))
        if entry is None or entry[0] != line or not entry[1].dirty_words:
            return {}
        words = entry[1].dirty_words
        entry[1].dirty_words = {}
        return words

    def flush_all(self) -> None:
        for slot in list(self.slots.keys()):
            self._evict(slot)
