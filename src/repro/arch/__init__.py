"""The Capri architecture: trace-driven timing and persistence simulation.

This package implements Section 5 of the paper on top of the functional
machine's event stream:

* :mod:`repro.arch.params` — the Table 1 simulator configuration,
* :mod:`repro.arch.cache` — value-carrying set-associative caches with a
  lightweight MESI-style coherence shim,
* :mod:`repro.arch.nvm` — the NVM main-memory image with a bandwidth-
  limited, WPQ-fronted write port,
* :mod:`repro.arch.memctrl` — integrated memory controller with the
  direct-mapped off-chip DRAM cache,
* :mod:`repro.arch.proxy` — front-/back-end proxy buffers and entries
  (Figure 5),
* :mod:`repro.arch.persistence` — the two-phase atomic store engine with
  undo+redo logging and stale-read prevention (Sections 5.1–5.3),
* :mod:`repro.arch.core` — per-core cost-based timing,
* :mod:`repro.arch.system` — full-system wiring (Capri and the volatile
  baseline) as machine observers,
* :mod:`repro.arch.crash` — power-failure injection and non-volatile
  state capture,
* :mod:`repro.arch.recovery` — the Section 5.4 recovery protocol, with
  integrity verification and strict/lenient fault handling
  (docs/INTERNALS.md §5).
"""

from repro.arch.params import SimParams, PersistMode
from repro.arch.system import CapriSystem, SystemMetrics, build_system, run_workload
from repro.arch.crash import (
    CrashPlan,
    CrashState,
    CrashInjector,
    PowerFailure,
    run_until_crash,
    run_until_crash_with_machine,
)
from repro.arch.recovery import (
    CheckpointMismatchError,
    OrphanedBoundaryError,
    RecoveredState,
    RecoveryError,
    RecoveryReport,
    TornEntryError,
    WpqCorruptionError,
    recover,
    resume_and_finish,
)

__all__ = [
    "SimParams",
    "PersistMode",
    "CapriSystem",
    "SystemMetrics",
    "build_system",
    "run_workload",
    "CrashPlan",
    "CrashState",
    "CrashInjector",
    "PowerFailure",
    "run_until_crash",
    "run_until_crash_with_machine",
    "RecoveryError",
    "TornEntryError",
    "CheckpointMismatchError",
    "OrphanedBoundaryError",
    "WpqCorruptionError",
    "RecoveryReport",
    "RecoveredState",
    "recover",
    "resume_and_finish",
]
