"""Per-core cost-based timing model.

The paper simulates an 8-way out-of-order ARMv8 core in gem5; at our
declared fidelity (trace-driven, band repro=3) each core is a cycle
accumulator: every retired instruction charges an effective CPI, memory
operations add hierarchy latency, and Capri's only *extra* costs are the
instrumentation instructions themselves plus front-end-proxy back-pressure
— matching the paper's claim that loads and the regular data path are
untouched (Section 5.1.1).
"""

from __future__ import annotations

from repro.arch.params import SimParams

#: Extra charge for a fence (store-buffer drain) in cycles.
FENCE_CYCLES = 20.0
#: Extra charge for an atomic RMW beyond the store path (L1 round trip).
ATOMIC_EXTRA_CYCLES = 8.0


class CoreTimer:
    """Cycle accumulator for one core."""

    __slots__ = ("params", "cycle", "retired", "stall_cycles")

    def __init__(self, params: SimParams) -> None:
        self.params = params
        self.cycle = 0.0
        self.retired = 0
        self.stall_cycles = 0.0

    def retire(self) -> None:
        """One pipeline slot for any retired instruction."""
        self.retired += 1
        self.cycle += self.params.cpi_base

    def add_latency(self, cycles: float) -> None:
        self.cycle += cycles

    def stall_until(self, t: float) -> None:
        """Block the core until absolute time ``t`` (front-end pressure,
        sync-mode boundary waits)."""
        if t > self.cycle:
            self.stall_cycles += t - self.cycle
            self.cycle = t
